//! # cassandra-trace
//!
//! The software half of Cassandra (§4 of the paper): branch-trace collection,
//! run-length-encoded *vanilla traces*, the DNA-sequence view of a trace, the
//! iterative *k*-mers compression of Algorithm 1, the automatic trace
//! generation procedure of Algorithm 2 (two-input differencing and hint
//! embedding), and the Table-1 statistics.
//!
//! The entry point for most users is [`genproc::generate_traces`], which
//! takes a program (plus an optional second build with different inputs) and
//! produces a [`genproc::TraceBundle`]: per-branch compressed traces and the
//! per-branch hint information that the `cassandra-btu` crate consumes.
//!
//! ```
//! use cassandra_isa::builder::ProgramBuilder;
//! use cassandra_isa::reg::{A0, ZERO};
//! use cassandra_trace::genproc::generate_traces;
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let mut b = ProgramBuilder::new("loop");
//! b.begin_crypto();
//! b.li(A0, 10);
//! b.label("l");
//! b.addi(A0, A0, -1);
//! b.bne(A0, ZERO, "l");
//! b.end_crypto();
//! b.halt();
//! let program = b.build()?;
//!
//! let bundle = generate_traces(&program, None, 100_000)?;
//! assert_eq!(bundle.analyzed_branches(), 1);
//! # Ok(())
//! # }
//! ```

pub mod collect;
pub mod dna;
pub mod fingerprint;
pub mod genproc;
pub mod hints;
pub mod kmers;
pub mod stats;
pub mod vanilla;

pub use collect::{collect_raw_traces, RawTraces};
pub use fingerprint::{bundle_fingerprint, program_fingerprint};
pub use genproc::{generate_traces, TraceBundle};
pub use hints::{BranchHint, BranchHints};
pub use kmers::{KmersTrace, PatternSet};
pub use vanilla::{VanillaElement, VanillaTrace};
