//! Branch-analysis statistics (the paper's Table 1).
//!
//! For each program the table reports, over all multi-target static branches
//! (single-target branches are excluded, as in the paper): the average and
//! maximum vanilla-trace size, the average and maximum k-mers trace size
//! (trace + pattern set), and the resulting compression rates.

use crate::genproc::TraceBundle;
use serde::{Deserialize, Serialize};

/// One row of the Table-1 style branch analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchAnalysisRow {
    /// Program name.
    pub program: String,
    /// Number of multi-target branches analyzed.
    pub multi_target_branches: usize,
    /// Number of single-target branches (excluded from the size statistics).
    pub single_target_branches: usize,
    /// Average vanilla trace size.
    pub vanilla_avg: f64,
    /// Maximum vanilla trace size.
    pub vanilla_max: usize,
    /// Average k-mers representation size (trace + pattern set).
    pub kmers_avg: f64,
    /// Maximum k-mers representation size.
    pub kmers_max: usize,
    /// Average compression rate (vanilla size / k-mers size, per branch).
    pub compression_avg: f64,
    /// Maximum compression rate.
    pub compression_max: f64,
}

impl BranchAnalysisRow {
    /// Computes the row for one analyzed program.
    pub fn from_bundle(bundle: &TraceBundle) -> Self {
        let mut vanilla_sizes: Vec<usize> = Vec::new();
        let mut kmers_sizes: Vec<usize> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        for data in bundle.branches.values() {
            let v = data.vanilla.len();
            let k = data.kmers.total_size().max(1);
            vanilla_sizes.push(v);
            kmers_sizes.push(k);
            rates.push(v as f64 / k as f64);
        }
        let avg = |xs: &[usize]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<usize>() as f64 / xs.len() as f64
            }
        };
        let avg_f = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        BranchAnalysisRow {
            program: bundle.program_name.clone(),
            multi_target_branches: bundle.branches.len(),
            single_target_branches: bundle.hints.single_target_count(),
            vanilla_avg: avg(&vanilla_sizes),
            vanilla_max: vanilla_sizes.iter().copied().max().unwrap_or(0),
            kmers_avg: avg(&kmers_sizes),
            kmers_max: kmers_sizes.iter().copied().max().unwrap_or(0),
            compression_avg: avg_f(&rates),
            compression_max: rates.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// Aggregates several rows into an "All" summary row (averages of averages,
/// maxima of maxima — matching how the paper reports the final row).
pub fn summary_row(rows: &[BranchAnalysisRow]) -> BranchAnalysisRow {
    let n = rows.len().max(1) as f64;
    BranchAnalysisRow {
        program: "All".to_string(),
        multi_target_branches: rows.iter().map(|r| r.multi_target_branches).sum(),
        single_target_branches: rows.iter().map(|r| r.single_target_branches).sum(),
        vanilla_avg: rows.iter().map(|r| r.vanilla_avg).sum::<f64>() / n,
        vanilla_max: rows.iter().map(|r| r.vanilla_max).max().unwrap_or(0),
        kmers_avg: rows.iter().map(|r| r.kmers_avg).sum::<f64>() / n,
        kmers_max: rows.iter().map(|r| r.kmers_max).max().unwrap_or(0),
        compression_avg: rows.iter().map(|r| r.compression_avg).sum::<f64>() / n,
        compression_max: rows.iter().map(|r| r.compression_max).fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genproc::generate_traces;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1, ZERO};

    fn looping_program(outer: u64, inner: u64) -> cassandra_isa::program::Program {
        let mut b = ProgramBuilder::new("stats-loops");
        b.begin_crypto();
        b.li(A0, outer);
        b.label("outer");
        b.li(A1, inner);
        b.label("inner");
        b.addi(A1, A1, -1);
        b.bne(A1, ZERO, "inner");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "outer");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn row_reflects_compression() {
        let p = looping_program(10, 20);
        let bundle = generate_traces(&p, None, 1_000_000).unwrap();
        let row = BranchAnalysisRow::from_bundle(&bundle);
        assert_eq!(row.multi_target_branches, 2);
        assert!(
            row.vanilla_avg >= row.kmers_avg,
            "compression should not inflate"
        );
        assert!(row.compression_avg >= 1.0);
        assert!(row.vanilla_max >= row.vanilla_avg as usize);
    }

    #[test]
    fn summary_aggregates() {
        let p1 = looping_program(4, 6);
        let p2 = looping_program(8, 3);
        let r1 = BranchAnalysisRow::from_bundle(&generate_traces(&p1, None, 100_000).unwrap());
        let r2 = BranchAnalysisRow::from_bundle(&generate_traces(&p2, None, 100_000).unwrap());
        let all = summary_row(&[r1.clone(), r2.clone()]);
        assert_eq!(all.program, "All");
        assert_eq!(
            all.multi_target_branches,
            r1.multi_target_branches + r2.multi_target_branches
        );
        assert!(all.vanilla_max >= r1.vanilla_max.max(r2.vanilla_max));
    }

    #[test]
    fn empty_bundle_gives_zero_row() {
        let bundle = TraceBundle::default();
        let row = BranchAnalysisRow::from_bundle(&bundle);
        assert_eq!(row.multi_target_branches, 0);
        assert_eq!(row.vanilla_avg, 0.0);
        assert_eq!(row.kmers_max, 0);
    }
}
