//! The k-mers branch compression of the paper's Algorithm 1 (step 4 of
//! Figure 1).
//!
//! Starting from the DNA-sequence view of a vanilla trace, the algorithm
//! repeatedly finds the k-mer (substring of length `2..=max_k`) with the
//! highest coverage, assigns it a fresh letter, and replaces its occurrences,
//! until the sequence stops shrinking. The result is the compressed *k-mers
//! trace* `K` (run-length encoded here, matching the paper's `p0×2 · p1×1`
//! notation) and the *pattern set* `P`.

use crate::dna::{DnaSequence, SymbolId, SymbolTable};
use crate::vanilla::{VanillaElement, VanillaTrace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Configuration of the compression algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmersConfig {
    /// Maximum k-mer length considered per iteration (`max_k` in Algorithm 1).
    pub max_k: usize,
    /// Maximum flattened pattern size (in vanilla elements); patterns larger
    /// than this would not fit a Pattern Table entry and are not created.
    pub max_pattern_elements: usize,
}

impl Default for KmersConfig {
    fn default() -> Self {
        KmersConfig {
            max_k: 8,
            max_pattern_elements: 16,
        }
    }
}

/// One run of the compressed trace: a pattern symbol and how many times it
/// repeats consecutively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRun {
    /// The pattern (or base) symbol.
    pub symbol: SymbolId,
    /// Consecutive repetitions.
    pub repeat: u64,
}

/// The pattern set `P`: flattened definitions of the symbols used by a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSet {
    /// Symbol → flattened vanilla elements.
    pub patterns: BTreeMap<SymbolId, Vec<VanillaElement>>,
}

impl PatternSet {
    /// Total number of vanilla elements across all patterns (the paper's
    /// "pattern set size").
    pub fn element_count(&self) -> usize {
        self.patterns.values().map(Vec::len).sum()
    }

    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// The compressed representation of one branch's trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmersTrace {
    /// The run-length-encoded compressed trace `K`.
    pub runs: Vec<TraceRun>,
    /// The pattern set `P`.
    pub patterns: PatternSet,
}

impl KmersTrace {
    /// Number of elements in the compressed trace `K`.
    pub fn trace_size(&self) -> usize {
        self.runs.len()
    }

    /// Total size as reported in Table 1: trace size plus pattern-set size.
    pub fn total_size(&self) -> usize {
        self.trace_size() + self.patterns.element_count()
    }

    /// Expands back to the full sequence of branch targets (lossless check).
    pub fn expand(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for run in &self.runs {
            let elems = &self.patterns.patterns[&run.symbol];
            for _ in 0..run.repeat {
                for e in elems {
                    out.extend(std::iter::repeat_n(e.target, e.count as usize));
                }
            }
        }
        out
    }
}

/// Compresses a vanilla trace with Algorithm 1 and returns the k-mers trace.
pub fn compress(vanilla: &VanillaTrace, config: &KmersConfig) -> KmersTrace {
    let dna = DnaSequence::from_vanilla(vanilla);
    let mut table = dna.table;
    let mut seq = dna.seq;

    // Algorithm 1 main loop: keep replacing the highest-coverage repeated
    // k-mer until the sequence stops shrinking.
    let mut current_len = usize::MAX;
    while seq.len() < current_len && seq.len() >= 2 {
        current_len = seq.len();
        let Some(best) = best_kmer(&seq, &table, config) else {
            break;
        };
        let pattern = table.add_pattern(best.clone());
        seq = replace_non_overlapping(&seq, &best, pattern);
    }

    // Run-length encode the final sequence and build the flattened pattern set.
    let mut runs: Vec<TraceRun> = Vec::new();
    for &s in &seq {
        match runs.last_mut() {
            Some(last) if last.symbol == s => last.repeat += 1,
            _ => runs.push(TraceRun {
                symbol: s,
                repeat: 1,
            }),
        }
    }
    let mut patterns = PatternSet::default();
    for run in &runs {
        patterns
            .patterns
            .entry(run.symbol)
            .or_insert_with(|| table.flatten(run.symbol));
    }
    KmersTrace { runs, patterns }
}

/// Finds the k-mer with the highest coverage (`k * freq / len`), considering
/// only k-mers that occur more than once and whose flattened size respects
/// the configured bound. Frequencies are counted over *non-overlapping*
/// occurrences so the coverage estimate matches what the left-to-right
/// replacement can actually remove. Ties are broken deterministically
/// (higher coverage, then shorter k, then lexicographic order).
fn best_kmer(seq: &[SymbolId], table: &SymbolTable, config: &KmersConfig) -> Option<Vec<SymbolId>> {
    let len = seq.len();
    let mut best: Option<(f64, Vec<SymbolId>)> = None;
    for k in 2..=config.max_k.min(len) {
        // Group window positions by k-mer, then count greedily without overlap.
        let mut positions: HashMap<&[SymbolId], Vec<usize>> = HashMap::new();
        for (i, window) in seq.windows(k).enumerate() {
            positions.entry(window).or_default().push(i);
        }
        let freqs: HashMap<&[SymbolId], usize> = positions
            .into_iter()
            .map(|(kmer, pos)| {
                let mut count = 0usize;
                let mut next_free = 0usize;
                for p in pos {
                    if p >= next_free {
                        count += 1;
                        next_free = p + k;
                    }
                }
                (kmer, count)
            })
            .collect();
        for (kmer, freq) in freqs {
            if freq < 2 {
                continue;
            }
            // Runs of a single symbol are already captured by the run-length
            // encoding of the final trace (the trace counter field), so
            // turning them into patterns would only grow the pattern set.
            if kmer.windows(2).all(|w| w[0] == w[1]) {
                continue;
            }
            let flat: usize = kmer.iter().map(|&s| table.flat_len(s)).sum();
            if flat > config.max_pattern_elements {
                continue;
            }
            let coverage = (k * freq) as f64 / len as f64;
            let candidate = (coverage, kmer.to_vec());
            let better = match &best {
                None => true,
                Some((c, existing)) => {
                    coverage > *c + f64::EPSILON
                        || ((coverage - *c).abs() <= f64::EPSILON
                            && (kmer.len() < existing.len()
                                || (kmer.len() == existing.len() && kmer < existing.as_slice())))
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best.map(|(_, kmer)| kmer)
}

/// Replaces non-overlapping occurrences of `kmer` in `seq` with `replacement`,
/// scanning left to right.
fn replace_non_overlapping(
    seq: &[SymbolId],
    kmer: &[SymbolId],
    replacement: SymbolId,
) -> Vec<SymbolId> {
    let mut out = Vec::with_capacity(seq.len());
    let k = kmer.len();
    let mut i = 0;
    while i < seq.len() {
        if i + k <= seq.len() && &seq[i..i + k] == kmer {
            out.push(replacement);
            i += k;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ve(target: usize, count: u64) -> VanillaElement {
        VanillaElement { target, count }
    }

    fn expand_vanilla(elements: &[VanillaElement]) -> Vec<usize> {
        elements
            .iter()
            .flat_map(|e| std::iter::repeat_n(e.target, e.count as usize))
            .collect()
    }

    #[test]
    fn paper_example_br1() {
        // Vanilla: PC0×2 · PC1×5 · PC0×2 · PC1×5 · PC2×3  (ACACG)
        // Expected k-mers trace: p0×2 · p1×1 with p0 = PC0×2·PC1×5, p1 = PC2×3.
        let vanilla = VanillaTrace {
            elements: vec![ve(0, 2), ve(1, 5), ve(0, 2), ve(1, 5), ve(2, 3)],
        };
        let k = compress(&vanilla, &KmersConfig::default());
        assert_eq!(k.trace_size(), 2);
        assert_eq!(k.runs[0].repeat, 2);
        assert_eq!(k.runs[1].repeat, 1);
        assert_eq!(
            k.patterns.patterns[&k.runs[0].symbol],
            vec![ve(0, 2), ve(1, 5)]
        );
        assert_eq!(k.patterns.patterns[&k.runs[1].symbol], vec![ve(2, 3)]);
        assert_eq!(k.expand(), expand_vanilla(&vanilla.elements));
    }

    #[test]
    fn simple_loop_is_already_minimal() {
        // PC1×4 · PC0×1 cannot shrink below 2 runs.
        let vanilla = VanillaTrace {
            elements: vec![ve(1, 4), ve(0, 1)],
        };
        let k = compress(&vanilla, &KmersConfig::default());
        assert_eq!(k.trace_size(), 2);
        assert_eq!(k.total_size(), 4);
        assert_eq!(k.expand(), expand_vanilla(&vanilla.elements));
    }

    #[test]
    fn long_repeating_structure_compresses_well() {
        // 64 repetitions of the block (PC1×3 · PC2×1 · PC3×5): the trace
        // should collapse to a single run repeated 64 times.
        let mut elements = Vec::new();
        for _ in 0..64 {
            elements.push(ve(1, 3));
            elements.push(ve(2, 1));
            elements.push(ve(3, 5));
        }
        let vanilla = VanillaTrace { elements };
        let k = compress(&vanilla, &KmersConfig::default());
        assert!(
            k.trace_size() <= 2,
            "expected near-total collapse, got {}",
            k.trace_size()
        );
        assert!(k.total_size() <= 20, "got {}", k.total_size());
        assert_eq!(k.expand(), expand_vanilla(&vanilla.elements));
    }

    #[test]
    fn compression_never_inflates_beyond_vanilla() {
        let cases = vec![
            vec![ve(1, 1)],
            vec![ve(1, 2), ve(2, 2), ve(1, 2), ve(3, 1)],
            (0..40)
                .map(|i| ve(i % 5, (i % 3 + 1) as u64))
                .collect::<Vec<_>>(),
        ];
        for elements in cases {
            let vanilla = VanillaTrace { elements };
            let k = compress(&vanilla, &KmersConfig::default());
            assert!(k.trace_size() <= vanilla.len().max(1));
            assert_eq!(k.expand(), expand_vanilla(&vanilla.elements));
        }
    }

    #[test]
    fn pattern_size_bound_is_respected() {
        let mut elements = Vec::new();
        for _ in 0..8 {
            for t in 0..20 {
                elements.push(ve(t, 1));
            }
        }
        let vanilla = VanillaTrace { elements };
        let config = KmersConfig {
            max_k: 8,
            max_pattern_elements: 4,
        };
        let k = compress(&vanilla, &config);
        for elems in k.patterns.patterns.values() {
            assert!(elems.len() <= 4);
        }
        assert_eq!(k.expand(), expand_vanilla(&vanilla.elements));
    }

    #[test]
    fn empty_trace_compresses_to_empty() {
        let k = compress(&VanillaTrace::default(), &KmersConfig::default());
        assert_eq!(k.trace_size(), 0);
        assert_eq!(k.total_size(), 0);
        assert!(k.expand().is_empty());
    }
}
