//! Vanilla traces: run-length encoding of raw branch traces (step 2 of the
//! paper's Figure 1).

use crate::collect::RawTrace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One element of a vanilla trace: a branch target and the number of
/// consecutive repetitions (`PC × count` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VanillaElement {
    /// The branch target (next PC).
    pub target: usize,
    /// How many consecutive times this target was observed.
    pub count: u64,
}

impl fmt::Display for VanillaElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PC{}×{}", self.target, self.count)
    }
}

/// The run-length-encoded trace of one static branch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VanillaTrace {
    /// The RLE elements in order.
    pub elements: Vec<VanillaElement>,
}

impl VanillaTrace {
    /// Builds a vanilla trace from a raw trace by run-length encoding.
    pub fn from_raw(raw: &RawTrace) -> Self {
        Self::from_targets(&raw.targets)
    }

    /// Builds a vanilla trace from a plain target sequence.
    pub fn from_targets(targets: &[usize]) -> Self {
        let mut elements: Vec<VanillaElement> = Vec::new();
        for &t in targets {
            match elements.last_mut() {
                Some(last) if last.target == t => last.count += 1,
                _ => elements.push(VanillaElement {
                    target: t,
                    count: 1,
                }),
            }
        }
        VanillaTrace { elements }
    }

    /// Number of RLE elements (the paper's "vanilla trace size").
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the branch never executed.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Total number of dynamic branch executions represented.
    pub fn dynamic_count(&self) -> u64 {
        self.elements.iter().map(|e| e.count).sum()
    }

    /// The set of distinct targets in the trace.
    pub fn distinct_targets(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.elements.iter().map(|e| e.target).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// True if every dynamic execution went to the same single target.
    pub fn is_single_target(&self) -> bool {
        self.distinct_targets().len() <= 1
    }

    /// Expands back to the raw target sequence (used by tests to check the
    /// encoding is lossless).
    pub fn expand(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for e in &self.elements {
            out.extend(std::iter::repeat_n(e.target, e.count as usize));
        }
        out
    }
}

impl fmt::Display for VanillaTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.elements.iter().map(|e| e.to_string()).collect();
        write!(f, "{}", parts.join(" · "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_of_loop_trace() {
        // The paper's example: PC1 PC1 PC1 PC1 PC0 → PC1×4 · PC0×1
        let v = VanillaTrace::from_targets(&[1, 1, 1, 1, 0]);
        assert_eq!(
            v.elements,
            vec![
                VanillaElement {
                    target: 1,
                    count: 4
                },
                VanillaElement {
                    target: 0,
                    count: 1
                }
            ]
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v.dynamic_count(), 5);
        assert_eq!(v.to_string(), "PC1×4 · PC0×1");
    }

    #[test]
    fn expansion_is_lossless() {
        let targets = vec![3, 3, 7, 7, 7, 3, 9, 9, 9, 9];
        let v = VanillaTrace::from_targets(&targets);
        assert_eq!(v.expand(), targets);
    }

    #[test]
    fn single_target_detection() {
        assert!(VanillaTrace::from_targets(&[5, 5, 5]).is_single_target());
        assert!(!VanillaTrace::from_targets(&[5, 6]).is_single_target());
        assert!(VanillaTrace::from_targets(&[]).is_single_target());
    }

    #[test]
    fn distinct_targets_sorted() {
        let v = VanillaTrace::from_targets(&[9, 2, 9, 4, 2]);
        assert_eq!(v.distinct_targets(), vec![2, 4, 9]);
    }
}
