//! DNA-sequence view of vanilla traces (step 3 of the paper's Figure 1).
//!
//! The paper maps every distinct vanilla-trace element (`PC × count`) to a
//! letter of a custom alphabet, producing a "DNA sequence" that the k-mers
//! compression of Algorithm 1 operates on. New letters are allocated for the
//! patterns discovered during compression (`unused_letters` in the paper);
//! here the alphabet is unbounded and letters are plain integer symbol ids.

use crate::vanilla::{VanillaElement, VanillaTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A letter of the trace alphabet.
pub type SymbolId = u32;

/// What a symbol stands for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymbolDef {
    /// A base letter: one vanilla-trace element.
    Base(VanillaElement),
    /// A pattern letter introduced by the compression: a sequence of
    /// previously existing symbols.
    Pattern(Vec<SymbolId>),
}

/// The symbol table shared by a branch's DNA sequence and its patterns.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    defs: Vec<SymbolDef>,
    #[serde(skip)]
    base_index: HashMap<VanillaElement, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of symbols defined.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no symbols are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Interns a base element, returning its symbol.
    pub fn intern_base(&mut self, element: VanillaElement) -> SymbolId {
        if let Some(&id) = self.base_index.get(&element) {
            return id;
        }
        let id = self.defs.len() as SymbolId;
        self.defs.push(SymbolDef::Base(element));
        self.base_index.insert(element, id);
        id
    }

    /// Adds a pattern symbol for a sequence of existing symbols.
    pub fn add_pattern(&mut self, symbols: Vec<SymbolId>) -> SymbolId {
        debug_assert!(symbols.iter().all(|&s| (s as usize) < self.defs.len()));
        let id = self.defs.len() as SymbolId;
        self.defs.push(SymbolDef::Pattern(symbols));
        id
    }

    /// The definition of a symbol.
    pub fn def(&self, id: SymbolId) -> &SymbolDef {
        &self.defs[id as usize]
    }

    /// Expands a symbol to its flat sequence of base vanilla elements.
    pub fn flatten(&self, id: SymbolId) -> Vec<VanillaElement> {
        match self.def(id) {
            SymbolDef::Base(e) => vec![*e],
            SymbolDef::Pattern(children) => {
                children.iter().flat_map(|&c| self.flatten(c)).collect()
            }
        }
    }

    /// The flattened length (in base elements) of a symbol.
    pub fn flat_len(&self, id: SymbolId) -> usize {
        match self.def(id) {
            SymbolDef::Base(_) => 1,
            SymbolDef::Pattern(children) => children.iter().map(|&c| self.flat_len(c)).sum(),
        }
    }
}

/// A branch trace as a sequence of symbols plus its symbol table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnaSequence {
    /// The sequence of letters.
    pub seq: Vec<SymbolId>,
    /// The alphabet.
    pub table: SymbolTable,
}

impl DnaSequence {
    /// Builds the DNA sequence of a vanilla trace, interning one letter per
    /// distinct `PC × count` element (as in the paper's BR1 example, where
    /// `PC0×2 · PC1×5 · PC0×2 · PC1×5 · PC2×3` becomes `ACACG`).
    pub fn from_vanilla(trace: &VanillaTrace) -> Self {
        let mut table = SymbolTable::new();
        let seq = trace
            .elements
            .iter()
            .map(|e| table.intern_base(*e))
            .collect();
        DnaSequence { seq, table }
    }

    /// Sequence length in letters.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Expands the whole sequence back to vanilla elements.
    pub fn flatten(&self) -> Vec<VanillaElement> {
        self.seq
            .iter()
            .flat_map(|&s| self.table.flatten(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ve(target: usize, count: u64) -> VanillaElement {
        VanillaElement { target, count }
    }

    #[test]
    fn paper_example_acacg() {
        // PC0×2 · PC1×5 · PC0×2 · PC1×5 · PC2×3  →  A C A C G (3 letters)
        let v = VanillaTrace {
            elements: vec![ve(0, 2), ve(1, 5), ve(0, 2), ve(1, 5), ve(2, 3)],
        };
        let dna = DnaSequence::from_vanilla(&v);
        assert_eq!(dna.len(), 5);
        assert_eq!(dna.table.len(), 3, "three distinct letters");
        assert_eq!(dna.seq[0], dna.seq[2]);
        assert_eq!(dna.seq[1], dna.seq[3]);
        assert_ne!(dna.seq[0], dna.seq[4]);
        assert_eq!(dna.flatten(), v.elements);
    }

    #[test]
    fn patterns_flatten_recursively() {
        let mut table = SymbolTable::new();
        let a = table.intern_base(ve(0, 2));
        let c = table.intern_base(ve(1, 5));
        let p = table.add_pattern(vec![a, c]);
        let q = table.add_pattern(vec![p, p, a]);
        assert_eq!(table.flat_len(q), 5);
        assert_eq!(
            table.flatten(q),
            vec![ve(0, 2), ve(1, 5), ve(0, 2), ve(1, 5), ve(0, 2)]
        );
    }

    #[test]
    fn interning_is_idempotent() {
        let mut table = SymbolTable::new();
        let a1 = table.intern_base(ve(7, 3));
        let a2 = table.intern_base(ve(7, 3));
        assert_eq!(a1, a2);
        assert_eq!(table.len(), 1);
    }
}
