//! The automatic trace generation procedure of the paper's Algorithm 2
//! (steps A–E) plus its timing breakdown (§7.5).
//!
//! The procedure detects static branches, collects raw traces, builds vanilla
//! traces and the DNA view, runs the k-mers compression, diffs the result
//! against a second profiling input to find input-dependent branches, and
//! finally produces the per-branch hint information that is "embedded in the
//! binary" (here: carried alongside the program in a [`TraceBundle`]).

use crate::collect::collect_raw_traces;
use crate::hints::{BranchHint, BranchHints};
use crate::kmers::{compress, KmersConfig, KmersTrace};
use crate::vanilla::VanillaTrace;
use cassandra_isa::error::IsaError;
use cassandra_isa::instr::BranchKind;
use cassandra_isa::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Number of Trace Cache elements per entry; traces at most this long get the
/// short-trace mark (§5.2).
pub const SHORT_TRACE_ELEMENTS: usize = 16;

/// The analyzed trace data of one multi-target crypto branch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchTraceData {
    /// Branch PC.
    pub pc: usize,
    /// Branch classification.
    pub kind: BranchKind,
    /// The vanilla (RLE) trace.
    pub vanilla: VanillaTrace,
    /// The compressed k-mers trace.
    pub kmers: KmersTrace,
}

/// Wall-clock timing of the trace-generation steps (the paper's §7.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenTiming {
    /// Step A: static branch detection.
    pub detect: Duration,
    /// Step B: raw trace collection (both profiling runs).
    pub collect: Duration,
    /// Step C: vanilla trace construction.
    pub vanilla: Duration,
    /// Steps D–E: DNA encoding and k-mers compression.
    pub kmers: Duration,
}

impl GenTiming {
    /// Total trace-generation time.
    pub fn total(&self) -> Duration {
        self.detect + self.collect + self.vanilla + self.kmers
    }
}

/// The output of Algorithm 2: per-branch compressed traces plus hints.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Name of the analyzed program.
    pub program_name: String,
    /// Compressed traces for multi-target crypto branches with stable traces.
    pub branches: BTreeMap<usize, BranchTraceData>,
    /// Hints for every static crypto branch that appeared during profiling.
    pub hints: BranchHints,
    /// Timing breakdown of the generation steps.
    pub timing: GenTiming,
}

impl TraceBundle {
    /// Number of crypto branches that were analyzed (appeared in profiling).
    pub fn analyzed_branches(&self) -> usize {
        self.hints.len()
    }

    /// The compressed trace of a branch, if one was stored.
    pub fn trace_for(&self, pc: usize) -> Option<&BranchTraceData> {
        self.branches.get(&pc)
    }

    /// The hint of a branch, if it was analyzed.
    pub fn hint_for(&self, pc: usize) -> Option<BranchHint> {
        self.hints.hint(pc)
    }

    /// A 64-bit hash of this bundle's replay-relevant content (see
    /// [`crate::fingerprint::bundle_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::bundle_fingerprint(self)
    }
}

/// Runs Algorithm 2 on `program`.
///
/// `second_input` is an optional second build of the same program with
/// different inputs (same text, different data); branches whose compressed
/// traces differ between the two runs are marked input dependent. When it is
/// `None` the single profiling run is used alone (all traces are treated as
/// stable), which matches the common case of fully static control flow.
///
/// # Errors
///
/// Propagates executor errors from the profiling runs.
pub fn generate_traces(
    program: &Program,
    second_input: Option<&Program>,
    max_steps: u64,
) -> Result<TraceBundle, IsaError> {
    generate_traces_with_config(program, second_input, max_steps, &KmersConfig::default())
}

/// [`generate_traces`] with an explicit compression configuration.
///
/// # Errors
///
/// Propagates executor errors from the profiling runs.
pub fn generate_traces_with_config(
    program: &Program,
    second_input: Option<&Program>,
    max_steps: u64,
    config: &KmersConfig,
) -> Result<TraceBundle, IsaError> {
    let mut timing = GenTiming::default();

    // Step A: detect static branches.
    let t0 = Instant::now();
    let crypto_branches = program.crypto_branches();
    timing.detect = t0.elapsed();

    // Step B: collect raw traces (for both profiling inputs).
    let t0 = Instant::now();
    let raw1 = collect_raw_traces(program, max_steps)?;
    let raw2 = match second_input {
        Some(p2) => Some(collect_raw_traces(p2, max_steps)?),
        None => None,
    };
    timing.collect = t0.elapsed();

    let mut bundle = TraceBundle {
        program_name: program.name.clone(),
        ..TraceBundle::default()
    };

    for branch in &crypto_branches {
        let Some(raw) = raw1.get(&branch.pc) else {
            bundle
                .hints
                .hints
                .insert(branch.pc, BranchHint::NotExecuted);
            continue;
        };

        // Step C: vanilla traces.
        let t0 = Instant::now();
        let vanilla = VanillaTrace::from_raw(raw);
        timing.vanilla += t0.elapsed();

        if vanilla.is_single_target() {
            let target = vanilla.distinct_targets().first().copied().unwrap_or(0);
            bundle
                .hints
                .hints
                .insert(branch.pc, BranchHint::SingleTarget { target });
            continue;
        }

        // Steps D-E: DNA encoding + k-mers compression.
        let t0 = Instant::now();
        let kmers = compress(&vanilla, config);
        let stable = match &raw2 {
            None => true,
            Some(r2) => match r2.get(&branch.pc) {
                // The branch must exist in the second run and compress to the
                // same trace; otherwise it is input dependent.
                Some(raw_b) => {
                    let vanilla_b = VanillaTrace::from_raw(raw_b);
                    compress(&vanilla_b, config) == kmers
                }
                None => false,
            },
        };
        timing.kmers += t0.elapsed();

        if !stable {
            bundle
                .hints
                .hints
                .insert(branch.pc, BranchHint::InputDependent);
            continue;
        }

        let short_trace = kmers.total_size() <= SHORT_TRACE_ELEMENTS;
        bundle
            .hints
            .hints
            .insert(branch.pc, BranchHint::MultiTarget { short_trace });
        bundle.branches.insert(
            branch.pc,
            BranchTraceData {
                pc: branch.pc,
                kind: branch.kind,
                vanilla,
                kmers,
            },
        );
    }

    bundle.timing = timing;
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1, ZERO};

    fn nested_loop_program(outer: u64, inner: u64) -> Program {
        let mut b = ProgramBuilder::new("nested");
        b.begin_crypto();
        b.li(A0, outer);
        b.label("outer");
        b.li(A1, inner);
        b.label("inner");
        b.addi(A1, A1, -1);
        b.bne(A1, ZERO, "inner");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "outer");
        b.call("leaf");
        b.end_crypto();
        b.halt();
        b.func("leaf");
        b.ret();
        b.build().unwrap()
    }

    #[test]
    fn loop_branches_get_multi_target_traces() {
        let p = nested_loop_program(5, 7);
        let bundle = generate_traces(&p, None, 100_000).unwrap();
        // Crypto branches: inner bne (multi-target), outer bne (multi-target),
        // call (single target). The leaf's `ret` sits outside the crypto
        // region and is therefore not analyzed.
        assert_eq!(bundle.hints.multi_target_count(), 2);
        assert_eq!(bundle.hints.single_target_count(), 1);
        assert_eq!(bundle.hints.stalled_count(), 0);
        for data in bundle.branches.values() {
            assert!(data.kmers.total_size() <= 16, "loop traces are tiny");
            assert_eq!(
                data.kmers.expand(),
                data.vanilla.expand(),
                "compression is lossless"
            );
        }
    }

    #[test]
    fn stable_traces_across_identical_inputs() {
        let p1 = nested_loop_program(5, 7);
        let p2 = nested_loop_program(5, 7);
        let bundle = generate_traces(&p1, Some(&p2), 100_000).unwrap();
        assert_eq!(bundle.hints.stalled_count(), 0);
    }

    #[test]
    fn input_dependent_branches_are_detected() {
        // The inner loop count differs between the two profiling inputs, so
        // the inner branch (and the outer one whose trace also changes) must
        // be marked input dependent.
        let p1 = nested_loop_program(5, 7);
        let p2 = nested_loop_program(5, 9);
        let bundle = generate_traces(&p1, Some(&p2), 100_000).unwrap();
        assert!(bundle.hints.stalled_count() >= 1);
        assert!(bundle.branches.len() < 2);
    }

    #[test]
    fn non_crypto_branches_are_ignored() {
        let mut b = ProgramBuilder::new("mixed");
        b.li(A0, 3);
        b.label("l");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "l");
        b.begin_crypto();
        b.li(A1, 2);
        b.label("c");
        b.addi(A1, A1, -1);
        b.bne(A1, ZERO, "c");
        b.end_crypto();
        b.halt();
        let p = b.build().unwrap();
        let bundle = generate_traces(&p, None, 10_000).unwrap();
        assert_eq!(
            bundle.analyzed_branches(),
            1,
            "only the crypto branch is analyzed"
        );
    }

    #[test]
    fn timing_is_recorded() {
        let p = nested_loop_program(3, 3);
        let bundle = generate_traces(&p, None, 100_000).unwrap();
        assert!(bundle.timing.total() > Duration::ZERO);
    }

    #[test]
    fn kernel_suite_traces_are_compact() {
        // The headline claim of Table 1: compressed traces are tiny compared
        // to vanilla traces for real kernels.
        let workload = cassandra_kernels::suite::chacha20_workload(256);
        let bundle =
            generate_traces(&workload.kernel.program, None, workload.kernel.step_limit).unwrap();
        assert!(bundle.analyzed_branches() > 0);
        for data in bundle.branches.values() {
            assert!(
                data.kmers.total_size() <= 64,
                "branch {} compresses to {} elements",
                data.pc,
                data.kmers.total_size()
            );
            assert_eq!(data.kmers.expand(), data.vanilla.expand());
        }
    }
}
