//! Per-branch hint information embedded in the binary (§5.2 of the paper).
//!
//! For every static crypto branch the binary carries a small hint: a
//! *single-target* mark (the branch always jumps to one place — no BTU
//! resources needed), a *short-trace* mark (the compressed trace fits one
//! Trace Cache entry), the virtual-address offset of the trace data pages,
//! or the information that the branch's trace is input dependent (the
//! frontend stalls until such a branch resolves).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hint bits the paper budgets per static branch (single-target mark, 12-bit
/// address offset, short-trace mark).
pub const HINT_BITS_PER_BRANCH: usize = 14;

/// The hint attached to one static crypto branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchHint {
    /// The branch always jumps to `target`; no trace is stored.
    SingleTarget {
        /// The unique target PC.
        target: usize,
    },
    /// The branch has a compressed trace stored in the trace data pages.
    MultiTarget {
        /// True if the whole trace fits one Trace Cache entry and can simply
        /// be rotated (the paper's short-trace mark).
        short_trace: bool,
    },
    /// The branch's trace differs between profiling inputs (e.g. stream
    /// loops); fetch stalls until it resolves.
    InputDependent,
    /// The branch never executed during profiling; treated like
    /// input-dependent (fetch stalls until it resolves).
    NotExecuted,
}

impl BranchHint {
    /// True if the processor must stall fetch at this branch until it
    /// resolves (no replayable trace available).
    pub fn requires_stall(&self) -> bool {
        matches!(self, BranchHint::InputDependent | BranchHint::NotExecuted)
    }
}

/// Hints for all static crypto branches of a program, keyed by branch PC.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchHints {
    /// Branch PC → hint.
    pub hints: BTreeMap<usize, BranchHint>,
}

impl BranchHints {
    /// Creates an empty hint table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hint for a branch, if it was analyzed.
    pub fn hint(&self, pc: usize) -> Option<BranchHint> {
        self.hints.get(&pc).copied()
    }

    /// Number of annotated branches.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// True if no branches are annotated.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }

    /// Number of single-target branches.
    pub fn single_target_count(&self) -> usize {
        self.hints
            .values()
            .filter(|h| matches!(h, BranchHint::SingleTarget { .. }))
            .count()
    }

    /// Number of multi-target branches with replayable traces.
    pub fn multi_target_count(&self) -> usize {
        self.hints
            .values()
            .filter(|h| matches!(h, BranchHint::MultiTarget { .. }))
            .count()
    }

    /// Number of branches whose traces could not be used (input dependent or
    /// never executed).
    pub fn stalled_count(&self) -> usize {
        self.hints.values().filter(|h| h.requires_stall()).count()
    }

    /// Total hint storage in bits (the paper budgets 14 bits per branch).
    pub fn storage_bits(&self) -> usize {
        self.len() * HINT_BITS_PER_BRANCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_by_kind() {
        let mut hints = BranchHints::new();
        hints
            .hints
            .insert(4, BranchHint::SingleTarget { target: 10 });
        hints
            .hints
            .insert(9, BranchHint::MultiTarget { short_trace: true });
        hints
            .hints
            .insert(13, BranchHint::MultiTarget { short_trace: false });
        hints.hints.insert(20, BranchHint::InputDependent);
        hints.hints.insert(25, BranchHint::NotExecuted);
        assert_eq!(hints.len(), 5);
        assert_eq!(hints.single_target_count(), 1);
        assert_eq!(hints.multi_target_count(), 2);
        assert_eq!(hints.stalled_count(), 2);
        assert_eq!(hints.storage_bits(), 5 * HINT_BITS_PER_BRANCH);
    }

    #[test]
    fn stall_requirements() {
        assert!(BranchHint::InputDependent.requires_stall());
        assert!(BranchHint::NotExecuted.requires_stall());
        assert!(!BranchHint::SingleTarget { target: 0 }.requires_stall());
        assert!(!BranchHint::MultiTarget { short_trace: false }.requires_stall());
    }

    #[test]
    fn lookup_missing_branch() {
        let hints = BranchHints::new();
        assert!(hints.is_empty());
        assert_eq!(hints.hint(42), None);
    }
}
