//! Raw branch-trace collection (step 1 of the paper's Figure 1).
//!
//! The paper uses Intel Pin / gem5 to log, for every static branch, the
//! sequence of its dynamic targets ("we log the next PC for not-taken
//! cases"). Here the same information is captured by instrumenting the
//! functional executor with an [`Observer`].

use cassandra_isa::error::IsaError;
use cassandra_isa::exec::Executor;
use cassandra_isa::instr::BranchKind;
use cassandra_isa::observe::{BranchOutcome, Observer};
use cassandra_isa::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The raw trace of one static branch: every dynamic target in execution
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawTrace {
    /// Branch classification.
    pub kind: Option<BranchKind>,
    /// Whether the branch is inside a crypto PC range.
    pub is_crypto: bool,
    /// The sequence of next-PC values observed at this branch.
    pub targets: Vec<usize>,
}

impl RawTrace {
    /// Number of dynamic executions recorded.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if the branch never executed.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Raw traces for all executed static branches, keyed by branch PC.
pub type RawTraces = BTreeMap<usize, RawTrace>;

/// Observer that appends every branch outcome to the per-branch raw trace.
#[derive(Debug, Clone, Default)]
pub struct BranchTraceCollector {
    /// Collected traces.
    pub traces: RawTraces,
}

impl BranchTraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for BranchTraceCollector {
    fn on_branch(&mut self, outcome: &BranchOutcome) {
        let entry = self.traces.entry(outcome.pc).or_default();
        entry.kind = Some(outcome.kind);
        entry.is_crypto = outcome.is_crypto;
        entry.targets.push(outcome.target);
    }
}

/// Runs `program` to completion and returns the raw trace of every executed
/// static branch (step B of Algorithm 2).
///
/// # Errors
///
/// Propagates executor errors (step budget exceeded, invalid program).
pub fn collect_raw_traces(program: &Program, max_steps: u64) -> Result<RawTraces, IsaError> {
    let mut exec = Executor::new(program);
    let mut collector = BranchTraceCollector::new();
    exec.run_with_observer(max_steps, &mut collector)?;
    Ok(collector.traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, ZERO};

    fn loop_program(count: u64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.li(A0, count);
        b.label("l");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "l");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn loop_branch_records_taken_then_fallthrough() {
        let p = loop_program(4);
        let traces = collect_raw_traces(&p, 1000).unwrap();
        assert_eq!(traces.len(), 1);
        let t = traces.values().next().unwrap();
        assert_eq!(t.kind, Some(BranchKind::CondDirect));
        assert_eq!(t.len(), 4);
        // Three taken (target = loop head), one not taken (target = next pc).
        assert_eq!(t.targets[..3], [1, 1, 1]);
        assert_eq!(t.targets[3], 3);
    }

    #[test]
    fn calls_and_returns_are_recorded() {
        let mut b = ProgramBuilder::new("cr");
        b.call("f");
        b.call("f");
        b.halt();
        b.func("f");
        b.ret();
        let p = b.build().unwrap();
        let traces = collect_raw_traces(&p, 1000).unwrap();
        // One call site... two static calls plus one return.
        let kinds: Vec<_> = traces.values().map(|t| t.kind.unwrap()).collect();
        assert!(kinds.contains(&BranchKind::Call));
        assert!(kinds.contains(&BranchKind::Return));
        // The return has two dynamic targets (the two call sites' return PCs).
        let ret = traces
            .values()
            .find(|t| t.kind == Some(BranchKind::Return))
            .unwrap();
        assert_eq!(ret.targets, vec![1, 2]);
    }

    #[test]
    fn unexecuted_branches_are_absent() {
        let mut b = ProgramBuilder::new("dead");
        b.j("end");
        b.label("never");
        b.bne(A0, ZERO, "never");
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        let traces = collect_raw_traces(&p, 1000).unwrap();
        // Only the executed jump appears.
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces.values().next().unwrap().kind,
            Some(BranchKind::UncondDirect)
        );
    }
}
