//! Stable content fingerprints for programs and analysis bundles.
//!
//! The evaluation session API in `cassandra-core` memoizes Algorithm-2
//! analyses per program: two workloads built from the same kernel with the
//! same inputs share one [`TraceBundle`]. The cache key is the
//! [`program_fingerprint`] — a 64-bit hash of the complete program content
//! (text, labels, data image and security annotations), so any input or code
//! change produces a different key.
//!
//! [`bundle_fingerprint`] hashes the *semantic* content of an analysis
//! result (the hints and the expanded per-branch traces, not the internal
//! compression structure), so two bundles compare equal exactly when the BTU
//! would replay identical sequences from them.

use crate::genproc::TraceBundle;
use cassandra_isa::program::Program;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A 64-bit content hash of a complete program.
///
/// Stable within one process run (and in practice across runs of the same
/// toolchain: `DefaultHasher::new()` is unkeyed); intended for in-memory
/// cache keys, not for persistent storage.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hasher = DefaultHasher::new();
    program.hash(&mut hasher);
    hasher.finish()
}

/// A 64-bit hash of an analysis bundle's replay-relevant content: the
/// program name, every branch hint, and the expanded target sequence of
/// every stored trace.
pub fn bundle_fingerprint(bundle: &TraceBundle) -> u64 {
    let mut hasher = DefaultHasher::new();
    bundle.program_name.hash(&mut hasher);
    for (pc, hint) in &bundle.hints.hints {
        pc.hash(&mut hasher);
        hint.hash(&mut hasher);
    }
    for (pc, data) in &bundle.branches {
        pc.hash(&mut hasher);
        data.kmers.expand().hash(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genproc::generate_traces;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, ZERO};

    fn counting_loop(name: &str, n: u64) -> Program {
        let mut b = ProgramBuilder::new(name);
        b.begin_crypto();
        b.li(A0, n);
        b.label("l");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "l");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn identical_programs_share_a_fingerprint() {
        let a = counting_loop("loop", 10);
        let b = counting_loop("loop", 10);
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn different_inputs_change_the_fingerprint() {
        let a = counting_loop("loop", 10);
        let b = counting_loop("loop", 11);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        let c = counting_loop("renamed", 10);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&c));
    }

    #[test]
    fn bundle_fingerprint_tracks_trace_content() {
        let p10 = counting_loop("loop", 10);
        let p11 = counting_loop("loop", 11);
        let b10a = generate_traces(&p10, None, 100_000).unwrap();
        let b10b = generate_traces(&p10, None, 100_000).unwrap();
        let b11 = generate_traces(&p11, None, 100_000).unwrap();
        assert_eq!(bundle_fingerprint(&b10a), bundle_fingerprint(&b10b));
        assert_ne!(bundle_fingerprint(&b10a), bundle_fingerprint(&b11));
    }
}
