//! Stable content fingerprints for programs and analysis bundles.
//!
//! The evaluation session API in `cassandra-core` memoizes Algorithm-2
//! analyses per program: two workloads built from the same kernel with the
//! same inputs share one [`TraceBundle`]. The cache key is the
//! [`program_fingerprint`] — a 64-bit hash of the complete program content
//! (text, labels, data image and security annotations), so any input or code
//! change produces a different key.
//!
//! [`bundle_fingerprint`] hashes the *semantic* content of an analysis
//! result (the hints and the expanded per-branch traces, not the internal
//! compression structure), so two bundles compare equal exactly when the BTU
//! would replay identical sequences from them.

use crate::genproc::TraceBundle;
use cassandra_isa::program::Program;
use std::hash::{Hash, Hasher};

/// A multiply-xor (Fx-style) hasher: a few arithmetic ops per word instead
/// of SipHash rounds. The fingerprints key *in-process* caches only — no
/// DoS-resistance or cross-process stability is required — and the lookup
/// sits on the per-cell sweep path, where re-hashing a multi-thousand-
/// instruction program with `DefaultHasher` was measurable against the
/// simulation itself.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Odd multiplier with well-mixed bits (2^64 / φ).
    const K: u64 = 0x9E37_79B9_7F4A_7C15;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so `"ab"` and `"ab\0"` differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A 64-bit content hash of a complete program.
///
/// Stable within one process run; intended for in-memory cache keys, not
/// for persistent storage.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hasher = FxHasher::default();
    program.hash(&mut hasher);
    hasher.finish()
}

/// A 64-bit hash of an analysis bundle's replay-relevant content: the
/// program name, every branch hint, and the expanded target sequence of
/// every stored trace.
pub fn bundle_fingerprint(bundle: &TraceBundle) -> u64 {
    let mut hasher = FxHasher::default();
    bundle.program_name.hash(&mut hasher);
    for (pc, hint) in &bundle.hints.hints {
        pc.hash(&mut hasher);
        hint.hash(&mut hasher);
    }
    for (pc, data) in &bundle.branches {
        pc.hash(&mut hasher);
        data.kmers.expand().hash(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genproc::generate_traces;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, ZERO};

    fn counting_loop(name: &str, n: u64) -> Program {
        let mut b = ProgramBuilder::new(name);
        b.begin_crypto();
        b.li(A0, n);
        b.label("l");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "l");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn identical_programs_share_a_fingerprint() {
        let a = counting_loop("loop", 10);
        let b = counting_loop("loop", 10);
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn different_inputs_change_the_fingerprint() {
        let a = counting_loop("loop", 10);
        let b = counting_loop("loop", 11);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        let c = counting_loop("renamed", 10);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&c));
    }

    #[test]
    fn bundle_fingerprint_tracks_trace_content() {
        let p10 = counting_loop("loop", 10);
        let p11 = counting_loop("loop", 11);
        let b10a = generate_traces(&p10, None, 100_000).unwrap();
        let b10b = generate_traces(&p10, None, 100_000).unwrap();
        let b11 = generate_traces(&p11, None, 100_000).unwrap();
        assert_eq!(bundle_fingerprint(&b10a), bundle_fingerprint(&b10b));
        assert_ne!(bundle_fingerprint(&b10a), bundle_fingerprint(&b11));
    }
}
