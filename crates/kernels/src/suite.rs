//! The evaluation workload suite.
//!
//! Mirrors the program list of the paper's Table 1 / Figure 7: BearSSL test
//! programs, OpenSSL primitives and post-quantum reference implementations.
//! Each paper workload is mapped onto one of the ISA kernels with parameters
//! chosen so that its *control-flow shape* (loop nest, call pattern, trace
//! sizes relative to the other workloads) matches the original program while
//! staying small enough for cycle-level simulation. The exact mapping is
//! documented per constructor and summarised in DESIGN.md.

use crate::kernel::{aes128, chacha20, feistel, kyber, modexp, poly1305, sha256, sphincs, x25519};
use crate::reference::wots::WotsParams;
use crate::workload::{Workload, WorkloadGroup};

fn demo_key32() -> [u8; 32] {
    let mut k = [0u8; 32];
    for (i, byte) in k.iter_mut().enumerate() {
        *byte = (i as u8).wrapping_mul(7).wrapping_add(3);
    }
    k
}

fn demo_key16() -> [u8; 16] {
    let mut k = [0u8; 16];
    for (i, byte) in k.iter_mut().enumerate() {
        *byte = (i as u8).wrapping_mul(11).wrapping_add(1);
    }
    k
}

fn demo_message(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 37 + 11) % 251) as u8).collect()
}

/// BearSSL `ChaCha20_ct`-shaped workload: ChaCha20 over `len` bytes.
pub fn chacha20_workload(len: usize) -> Workload {
    let nonce = [9u8; 12];
    let kernel = chacha20::build(&demo_key32(), 1, &nonce, &demo_message(len));
    Workload::new("ChaCha20_ct", WorkloadGroup::BearSsl, kernel)
}

/// OpenSSL `chacha20`-shaped workload (larger stream).
pub fn openssl_chacha20_workload(len: usize) -> Workload {
    let nonce = [3u8; 12];
    let kernel = chacha20::build(&demo_key32(), 7, &nonce, &demo_message(len));
    Workload::new("chacha20", WorkloadGroup::OpenSsl, kernel)
}

/// BearSSL `SHA-256`-shaped workload.
pub fn sha256_workload(len: usize) -> Workload {
    let kernel = sha256::build(&demo_message(len));
    Workload::new("SHA-256", WorkloadGroup::BearSsl, kernel)
}

/// OpenSSL `sha256`-shaped workload.
pub fn openssl_sha256_workload(len: usize) -> Workload {
    let kernel = sha256::build(&demo_message(len));
    Workload::new("sha256", WorkloadGroup::OpenSsl, kernel)
}

/// BearSSL `MultiHash`-shaped workload: a longer multi-block hash.
pub fn multihash_workload(len: usize) -> Workload {
    let kernel = sha256::build(&demo_message(len));
    Workload::new("MultiHash", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `SHAKE`-shaped workload (mapped onto the SHA-256 kernel; the
/// sponge loop structure is the same fixed-trip-count block loop).
pub fn shake_workload(len: usize) -> Workload {
    let kernel = sha256::build(&demo_message(len));
    Workload::new("SHAKE", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `TLS PRF`-shaped workload (iterated HMAC-style hashing, mapped
/// onto a long multi-block SHA-256 run).
pub fn tls_prf_workload(len: usize) -> Workload {
    let kernel = sha256::build(&demo_message(len));
    Workload::new("TLS PRF", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `AES_CTR`-shaped workload.
pub fn aes_ctr_workload(len: usize) -> Workload {
    let kernel = aes128::build(&demo_key16(), 0x1234_5678, &demo_message(len));
    Workload::new("AES_CTR", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `CBC_ct`-shaped workload (AES block loop; chaining does not change
/// the branch structure, so the CTR kernel with a different length stands in).
pub fn cbc_ct_workload(len: usize) -> Workload {
    let kernel = aes128::build(&demo_key16(), 0xfeed_beef, &demo_message(len));
    Workload::new("CBC_ct", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `DES_ct`-shaped workload (16-round Feistel loop over blocks).
pub fn des_workload(nblocks: usize) -> Workload {
    let blocks: Vec<u64> = (0..nblocks as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9))
        .collect();
    let kernel = feistel::build(0x0123_4567_89ab_cdef, &blocks);
    Workload::new("DES_ct", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `Poly1305_ctmul`-shaped workload.
pub fn poly1305_workload(len: usize) -> Workload {
    let kernel = poly1305::build(&demo_key32(), &demo_message(len));
    Workload::new("Poly1305_ctmul", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `ModPow_i31`-shaped workload: 256-bit constant-time exponentiation.
pub fn modpow_workload() -> Workload {
    let exp = [
        0x0123_4567_89ab_cdef,
        0xfeed_face_0bad_beef,
        0x1357,
        0x8000_0000_0000_0001,
    ];
    let kernel = modexp::build((1 << 61) - 1, 65_537, &exp, 256);
    Workload::new("ModPow_i31", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `RSA_i62`-shaped workload: 512-bit-exponent ladder (RSA-2048
/// stand-in; the ladder length is the public parameter that matters).
pub fn rsa_workload() -> Workload {
    let exp = [
        0xdead_beef_cafe_f00d,
        0x0123_4567_89ab_cdef,
        0xffff_0000_ffff_0000,
        0x7fff_ffff_ffff_ffff,
        0x1111_2222_3333_4444,
        0x5555_6666_7777_8888,
        0x9999_aaaa_bbbb_cccc,
        0x0f0f_0f0f_0f0f_0f0f,
    ];
    let kernel = modexp::build((1 << 61) - 1, 3, &exp, 512);
    Workload::new("RSA_i62", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `EC_c25519_i31`-shaped workload: Montgomery-ladder scalar mult.
pub fn ec_c25519_workload() -> Workload {
    let scalar = [
        0xa546_e36b_f052_7c9d,
        0x3b16_154b_8246_5edd,
        0x62ab_5f7f_6e1f_bf90,
        0x4b44_9c48_38a8_bb08,
    ];
    let kernel = x25519::build(9, &scalar);
    Workload::new("EC_c25519_i31", WorkloadGroup::BearSsl, kernel)
}

/// BearSSL `ECDSA_i31`-shaped workload: a second ladder invocation with a
/// different scalar (ECDSA signing is dominated by the same scalar mult).
pub fn ecdsa_workload() -> Workload {
    let scalar = [
        0x0102_0304_0506_0708,
        0x1112_1314_1516_1718,
        0x2122_2324_2526_2728,
        0x3132_3334_3536_3738,
    ];
    let kernel = x25519::build(1234, &scalar);
    Workload::new("ECDSA_i31", WorkloadGroup::BearSsl, kernel)
}

/// OpenSSL `curve25519`-shaped workload.
pub fn openssl_curve25519_workload() -> Workload {
    let scalar = [
        0x4b66_e9d4_d1b4_673c,
        0x5a22_8c8e_3391_43de,
        0x6c4f_0f0e_0d0c_0b0a,
        0x0908_0706_0504_0302,
    ];
    let kernel = x25519::build(9, &scalar);
    Workload::new("curve25519", WorkloadGroup::OpenSsl, kernel)
}

/// `kyber512`-shaped workload.
pub fn kyber512_workload() -> Workload {
    Workload::new("kyber512", WorkloadGroup::Pqc, kyber::build(2, 99))
}

/// `kyber768`-shaped workload.
pub fn kyber768_workload() -> Workload {
    Workload::new("kyber768", WorkloadGroup::Pqc, kyber::build(3, 99))
}

/// `sphincs-shake-128s`-shaped workload (largest tree of the three variants).
pub fn sphincs_shake_workload() -> Workload {
    let params = WotsParams {
        chains: 8,
        chain_len: 7,
        tree_height: 4,
    };
    Workload::new(
        "sphincs-shake-128s",
        WorkloadGroup::Pqc,
        sphincs::build(&[11, 22, 33, 44], &params),
    )
}

/// `sphincs-haraka-128s`-shaped workload.
pub fn sphincs_haraka_workload() -> Workload {
    let params = WotsParams {
        chains: 8,
        chain_len: 7,
        tree_height: 3,
    };
    Workload::new(
        "sphincs-haraka-128s",
        WorkloadGroup::Pqc,
        sphincs::build(&[55, 66, 77, 88], &params),
    )
}

/// `sphincs-sha2-128s`-shaped workload.
pub fn sphincs_sha2_workload() -> Workload {
    let params = WotsParams {
        chains: 6,
        chain_len: 5,
        tree_height: 3,
    };
    Workload::new(
        "sphincs-sha2-128s",
        WorkloadGroup::Pqc,
        sphincs::build(&[12, 34, 56, 78], &params),
    )
}

/// The full evaluation suite used for Table 1 and Figure 7, in the paper's
/// ordering (PQC, OpenSSL, BearSSL).
pub fn full_suite() -> Vec<Workload> {
    vec![
        // PQC
        kyber512_workload(),
        kyber768_workload(),
        sphincs_haraka_workload(),
        sphincs_sha2_workload(),
        sphincs_shake_workload(),
        // OpenSSL
        openssl_chacha20_workload(512),
        openssl_curve25519_workload(),
        openssl_sha256_workload(512),
        // BearSSL
        aes_ctr_workload(128),
        cbc_ct_workload(96),
        chacha20_workload(256),
        des_workload(32),
        ec_c25519_workload(),
        ecdsa_workload(),
        modpow_workload(),
        multihash_workload(384),
        poly1305_workload(256),
        rsa_workload(),
        sha256_workload(192),
        shake_workload(256),
        tls_prf_workload(320),
    ]
}

/// The full-suite workloads belonging to one library group, in suite order.
pub fn group_suite(group: WorkloadGroup) -> Vec<Workload> {
    let mut suite = full_suite();
    suite.retain(|w| w.group == group);
    suite
}

/// Partitions a workload list by group, preserving the input order inside
/// each group and returning the groups in the paper's reporting order.
pub fn by_group(workloads: &[Workload]) -> Vec<(WorkloadGroup, Vec<Workload>)> {
    WorkloadGroup::ALL
        .into_iter()
        .filter_map(|g| {
            let members: Vec<Workload> =
                workloads.iter().filter(|w| w.group == g).cloned().collect();
            if members.is_empty() {
                None
            } else {
                Some((g, members))
            }
        })
        .collect()
}

/// A reduced suite (one workload per kernel family) used by fast-running
/// tests and examples.
pub fn quick_suite() -> Vec<Workload> {
    vec![
        chacha20_workload(128),
        sha256_workload(128),
        poly1305_workload(64),
        des_workload(8),
        modpow_workload(),
        ec_c25519_workload(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_21_workloads_in_three_groups() {
        let suite = full_suite();
        assert_eq!(suite.len(), 21);
        let pqc = suite
            .iter()
            .filter(|w| w.group == WorkloadGroup::Pqc)
            .count();
        let openssl = suite
            .iter()
            .filter(|w| w.group == WorkloadGroup::OpenSsl)
            .count();
        let bearssl = suite
            .iter()
            .filter(|w| w.group == WorkloadGroup::BearSsl)
            .count();
        assert_eq!(pqc, 5);
        assert_eq!(openssl, 3);
        assert_eq!(bearssl, 13);
    }

    #[test]
    fn group_suite_partitions_the_full_suite() {
        let total: usize = WorkloadGroup::ALL
            .into_iter()
            .map(|g| group_suite(g).len())
            .sum();
        assert_eq!(total, full_suite().len());
        assert!(group_suite(WorkloadGroup::Synthetic).is_empty());
    }

    #[test]
    fn by_group_preserves_order_and_membership() {
        let partitioned = by_group(&full_suite());
        assert_eq!(partitioned.len(), 3, "PQC, OpenSSL, BearSSL");
        assert_eq!(partitioned[0].0, WorkloadGroup::Pqc);
        for (group, members) in &partitioned {
            assert!(members.iter().all(|w| w.group == *group));
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let suite = full_suite();
        let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn quick_suite_workloads_run_functionally() {
        for w in quick_suite() {
            let out = w.kernel.run_functional().expect("workload runs");
            assert!(!out.is_empty(), "{} produced no output", w.name);
        }
    }

    #[test]
    fn every_suite_workload_has_crypto_branches() {
        for w in full_suite() {
            assert!(
                !w.kernel.program.crypto_branches().is_empty(),
                "{} has no crypto branches",
                w.name
            );
        }
    }
}
