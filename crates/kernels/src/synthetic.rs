//! SpectreGuard-style synthetic benchmarks (§7.3 of the paper).
//!
//! Each synthetic workload is a mix of a (s)andboxed, non-crypto phase — a
//! data-dependent loop over a public array, exercising the branch predictor —
//! and a (c)rypto phase protected by Cassandra. The fraction of work spent in
//! each phase is the experiment's knob (90s/10c … all-crypto).
//!
//! Two crypto variants mirror the paper's choice of primitives:
//!
//! * [`CryptoVariant::ChaChaLike`] keeps all secret state in registers and
//!   static buffers (public stack), like HACL* chacha20;
//! * [`CryptoVariant::CurveLike`] spills secret intermediates to the stack,
//!   which is therefore annotated as a secret region, like curve25519-donna —
//!   the case where ProSpeCT pays a large penalty.

use crate::kernel::KernelProgram;
use crate::workload::{Workload, WorkloadGroup};
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::program::STACK_TOP;
use cassandra_isa::reg::{A0, A1, A2, S0, S1, S2, S3, S4, S5, T0, T1, T2, T3, ZERO};

/// Which crypto primitive shape the crypto phase mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoVariant {
    /// Register/static-buffer ARX core, public stack (HACL* chacha20-like).
    ChaChaLike,
    /// Ladder core with secret stack spills (curve25519-donna-like).
    CurveLike,
}

impl CryptoVariant {
    /// Short name used in figure labels.
    pub fn label(self) -> &'static str {
        match self {
            CryptoVariant::ChaChaLike => "chacha20",
            CryptoVariant::CurveLike => "curve25519",
        }
    }
}

/// A sandbox/crypto mix point, e.g. 90 % sandbox / 10 % crypto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MixPoint {
    /// Percentage of work in the sandboxed (non-crypto) phase.
    pub sandbox_pct: u32,
    /// Percentage of work in the crypto phase.
    pub crypto_pct: u32,
}

impl MixPoint {
    /// The five mix points evaluated in the paper's Figure 8.
    pub fn figure8_points() -> Vec<MixPoint> {
        vec![
            MixPoint {
                sandbox_pct: 90,
                crypto_pct: 10,
            },
            MixPoint {
                sandbox_pct: 75,
                crypto_pct: 25,
            },
            MixPoint {
                sandbox_pct: 50,
                crypto_pct: 50,
            },
            MixPoint {
                sandbox_pct: 25,
                crypto_pct: 75,
            },
            MixPoint {
                sandbox_pct: 0,
                crypto_pct: 100,
            },
        ]
    }

    /// Label in the paper's "90s/10c" style ("all-crypto" for 0/100).
    pub fn label(&self) -> String {
        if self.sandbox_pct == 0 {
            "all-crypto".to_string()
        } else {
            format!("{}s/{}c", self.sandbox_pct, self.crypto_pct)
        }
    }
}

/// Builds a synthetic mixed workload.
///
/// `scale` controls the total amount of work (loop iterations); the default
/// used by [`figure8_suite`] keeps a single simulation in the tens of
/// thousands of instructions.
pub fn build_mix(variant: CryptoVariant, mix: MixPoint, scale: u32) -> KernelProgram {
    assert_eq!(
        mix.sandbox_pct + mix.crypto_pct,
        100,
        "fractions must sum to 100"
    );
    let sandbox_iters = u64::from(mix.sandbox_pct * scale);
    let crypto_iters = u64::from(mix.crypto_pct * scale);

    let name = format!("synthetic-{}-{}", variant.label(), mix.label());
    let mut b = ProgramBuilder::new(name);

    // ---- data ----
    // Public array processed by the sandbox phase (values drive data-dependent
    // branches, which is what makes the sandbox phase predictor-heavy).
    let array: Vec<u64> = (0..256u64)
        .map(|i| i.wrapping_mul(0x5851_f42d) >> 3)
        .collect();
    let array_addr = b.alloc_u64s("public_array", &array);
    // Secret key material for the crypto phase.
    let key: Vec<u64> = (0..16u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef)
        .collect();
    let key_addr = b.alloc_secret_u64s("secret_key", &key);
    let out_addr = b.alloc_zeros("output", 16);
    if variant == CryptoVariant::CurveLike {
        // The curve-like phase spills secrets to the stack: annotate the top
        // stack page as secret (ProSpeCT-style annotation of the stack).
        b.mark_secret_region(STACK_TOP - 4096..STACK_TOP);
    }

    // ---- sandbox phase (non-crypto) ----
    b.li(S0, sandbox_iters);
    b.li(S1, 0); // accumulator
    b.beq(S0, ZERO, "sandbox_done");
    b.li(S2, 0); // iteration counter
    b.label("sandbox_loop");
    // idx = iter % 256 ; v = array[idx]
    b.andi(T0, S2, 255);
    b.slli(T0, T0, 3);
    b.li(T1, array_addr);
    b.add(T1, T1, T0);
    b.ld(T2, T1, 0);
    // Data-dependent branch: only accumulate "large" values.
    b.li(T3, 0x1000_0000);
    b.bltu(T2, T3, "sandbox_skip");
    b.add(S1, S1, T2);
    b.label("sandbox_skip");
    // A second data-dependent branch with a different bias.
    b.andi(T3, T2, 7);
    b.bne(T3, ZERO, "sandbox_no_extra");
    b.addi(S1, S1, 13);
    b.label("sandbox_no_extra");
    b.addi(S2, S2, 1);
    b.bne(S2, S0, "sandbox_loop");
    b.label("sandbox_done");

    // ---- crypto phase ----
    b.begin_crypto();
    b.li(S3, crypto_iters);
    b.beq(S3, ZERO, "crypto_done");
    b.li(S4, 0); // iteration counter

    // Load four secret words into registers.
    b.li(T0, key_addr);
    b.ld(A0, T0, 0);
    b.ld(A1, T0, 8);
    b.ld(A2, T0, 16);
    b.ld(S5, T0, 24);
    match variant {
        CryptoVariant::ChaChaLike => {
            // ARX rounds entirely in registers (public stack untouched).
            b.label("crypto_loop");
            b.add(A0, A0, A1);
            b.xor(S5, S5, A0);
            b.rotli(S5, S5, 32);
            b.add(A2, A2, S5);
            b.xor(A1, A1, A2);
            b.rotli(A1, A1, 24);
            b.add(A0, A0, A1);
            b.xor(S5, S5, A0);
            b.rotli(S5, S5, 16);
            b.add(A2, A2, S5);
            b.xor(A1, A1, A2);
            b.rotli(A1, A1, 63);
            b.addi(S4, S4, 1);
            b.bne(S4, S3, "crypto_loop");
        }
        CryptoVariant::CurveLike => {
            // Ladder-like rounds that spill intermediates to the (secret)
            // stack, as curve25519-donna does for its field-element locals.
            // Crucially, the loop counter is also kept on the stack (as a
            // compiler does under register pressure), so even the loop
            // branch's operands are tainted once the stack is annotated as a
            // secret region — the situation the paper identifies as
            // expensive for ProSpeCT.
            b.addi(cassandra_isa::reg::SP, cassandra_isa::reg::SP, -64);
            b.sd(S4, cassandra_isa::reg::SP, 32);
            b.label("crypto_loop");
            // Spill the working values.
            b.sd(A0, cassandra_isa::reg::SP, 0);
            b.sd(A1, cassandra_isa::reg::SP, 8);
            b.sd(A2, cassandra_isa::reg::SP, 16);
            b.sd(S5, cassandra_isa::reg::SP, 24);
            // scalar-bit-driven masked swap
            b.andi(T0, S5, 1);
            b.sub(T0, ZERO, T0);
            b.xor(T1, A0, A1);
            b.and(T1, T1, T0);
            b.xor(A0, A0, T1);
            b.xor(A1, A1, T1);
            // field-like multiply whose result is spilled; the recurrence on
            // the working values themselves stays short, as in an unrolled
            // ladder step where most operations are independent.
            b.mul(T2, A0, A2);
            b.sd(T2, cassandra_isa::reg::SP, 40);
            b.addi(A0, A0, 1);
            b.add(A2, A2, A1);
            // Reload spilled values (secret loads from the stack).
            b.ld(T2, cassandra_isa::reg::SP, 8);
            b.xor(A1, A1, T2);
            b.ld(T2, cassandra_isa::reg::SP, 24);
            b.add(S5, S5, T2);
            b.rotli(S5, S5, 17);
            // The loop counter lives on the (secret) stack: reload, bump,
            // spill, then branch on the reloaded — hence tainted — value.
            b.ld(S4, cassandra_isa::reg::SP, 32);
            b.addi(S4, S4, 1);
            b.sd(S4, cassandra_isa::reg::SP, 32);
            b.bne(S4, S3, "crypto_loop");
            b.addi(cassandra_isa::reg::SP, cassandra_isa::reg::SP, 64);
        }
    }
    // Declassify the result before leaving the crypto region (Listing 1).
    b.declassify(A0, A0);
    b.label("crypto_done");
    b.end_crypto();

    // Combine both phases' results into the output.
    b.li(T0, out_addr);
    b.sd(S1, T0, 0);
    b.sd(A0, T0, 8);
    b.halt();

    let program = b.build().expect("synthetic mix assembles");
    KernelProgram::new(program, out_addr, 16)
}

/// Builds the full Figure-8 suite for one crypto variant: the five mix points
/// at the default scale.
pub fn figure8_suite(variant: CryptoVariant) -> Vec<(MixPoint, Workload)> {
    MixPoint::figure8_points()
        .into_iter()
        .map(|mix| {
            let kernel = build_mix(variant, mix, 20);
            let name = format!("{}-{}", variant.label(), mix.label());
            (mix, Workload::new(name, WorkloadGroup::Synthetic, kernel))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_points_cover_figure8() {
        let points = MixPoint::figure8_points();
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].label(), "90s/10c");
        assert_eq!(points[4].label(), "all-crypto");
    }

    #[test]
    fn mixes_run_functionally() {
        for variant in [CryptoVariant::ChaChaLike, CryptoVariant::CurveLike] {
            for mix in MixPoint::figure8_points() {
                let k = build_mix(variant, mix, 2);
                let out = k.run_functional().expect("mix runs");
                assert_eq!(out.len(), 16);
            }
        }
    }

    #[test]
    fn curve_variant_marks_the_stack_secret() {
        let mix = MixPoint {
            sandbox_pct: 50,
            crypto_pct: 50,
        };
        let chacha = build_mix(CryptoVariant::ChaChaLike, mix, 1);
        let curve = build_mix(CryptoVariant::CurveLike, mix, 1);
        assert!(!chacha.program.is_secret_addr(STACK_TOP - 8));
        assert!(curve.program.is_secret_addr(STACK_TOP - 8));
    }

    #[test]
    fn crypto_branches_only_in_crypto_phase() {
        let mix = MixPoint {
            sandbox_pct: 50,
            crypto_pct: 50,
        };
        let k = build_mix(CryptoVariant::ChaChaLike, mix, 1);
        let branches = k.program.static_branches();
        assert!(branches.iter().any(|br| br.is_crypto));
        assert!(branches.iter().any(|br| !br.is_crypto));
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn rejects_bad_fractions() {
        build_mix(
            CryptoVariant::ChaChaLike,
            MixPoint {
                sandbox_pct: 50,
                crypto_pct: 60,
            },
            1,
        );
    }
}
