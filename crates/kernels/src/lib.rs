//! # cassandra-kernels
//!
//! Constant-time cryptographic kernels written against the `cassandra-isa`
//! instruction set, together with pure-Rust reference implementations used to
//! validate them, the benchmark workload suite mirroring the paper's
//! evaluation (BearSSL, OpenSSL, post-quantum crypto), SpectreGuard-style
//! synthetic sandbox/crypto mixes, and the Spectre gadget programs used by
//! the security analysis.
//!
//! Every kernel exposes a `build(..)` function returning a
//! [`KernelProgram`]: the ISA [`Program`](cassandra_isa::Program) plus enough
//! metadata to locate its outputs in memory, so tests can check functional
//! correctness against the matching [`reference`](mod@reference)
//! implementation.
//!
//! ## Substitutions
//!
//! The paper evaluates real BearSSL/OpenSSL/PQC binaries. Those cannot run on
//! our ISA, so each kernel reimplements the algorithm (or a faithfully scaled
//! variant — see the module documentation of each kernel) with the same
//! control-flow structure: fixed-count loops, calls/returns, and no
//! secret-dependent branches. DESIGN.md lists every substitution.
//!
//! ## Example
//!
//! ```
//! use cassandra_kernels::suite;
//!
//! let workload = suite::chacha20_workload(128);
//! let out = workload.kernel.run_functional().expect("kernel runs");
//! assert_eq!(out.len(), 128);
//! ```

pub mod gadgets;
pub mod kernel;
pub mod reference;
pub mod suite;
pub mod synthetic;
pub mod workload;

pub use kernel::KernelProgram;
pub use workload::{Workload, WorkloadGroup};
