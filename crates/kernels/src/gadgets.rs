//! Spectre gadget programs used by the security analysis (Figures 5/6 and
//! Table 2 of the paper).
//!
//! Each program contains a branch that is *never taken architecturally* but
//! whose taken target contains a leak gadget. On a speculative processor the
//! first encounter of the branch is mispredicted, so the gadget executes
//! transiently; under Cassandra the branch direction comes from the recorded
//! sequential trace (crypto branches) or is stalled by the integrity check
//! (non-crypto branches targeting crypto code), so the gadget never runs.
//!
//! "Leaking" a value means loading from `probe_base + (value & 1) * 64`: the
//! accessed cache line reveals one bit of the value, the standard cache-side
//!-channel transmitter used in Spectre proofs of concept.

use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::program::Program;
use cassandra_isa::reg::{A0, A1, A2, A3, A4, T0, T1, ZERO};
use serde::{Deserialize, Serialize};

/// Where the mispredicted branch lives (the paper's BR1 / BR2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchSite {
    /// BR1: the branch is part of the crypto code.
    Crypto,
    /// BR2: the branch is part of the non-crypto code.
    NonCrypto,
}

/// Which leak gadget sits on the transient path (the paper's R1/M1/R2/M2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeakGadget {
    /// R1: leak a register that holds a non-speculatively loaded secret
    /// (crypto gadget).
    CryptoRegister,
    /// M1: load from a secret crypto memory region and leak the value
    /// (crypto gadget).
    CryptoMemory,
    /// R2: leak a register holding declassified/public data (non-crypto
    /// gadget).
    NonCryptoRegister,
    /// M2: load from non-crypto memory out of bounds and leak it (non-crypto
    /// gadget, software-isolation territory).
    NonCryptoMemory,
}

/// A gadget program plus the metadata the security checker needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GadgetProgram {
    /// The program.
    pub program: Program,
    /// PC of the never-taken branch whose transient path hosts the gadget.
    pub branch_pc: usize,
    /// Base address of the probe array (the cache transmitter).
    pub probe_addr: u64,
    /// The scenario this program encodes.
    pub branch_site: BranchSite,
    /// The gadget on the transient path.
    pub gadget: LeakGadget,
}

/// Builds one of the eight control-flow scenarios of the paper's Table 2.
///
/// The returned program architecturally executes only benign code; the leak
/// gadget is reachable exclusively through a misprediction of the marked
/// branch. `secret` is the confidential value whose dependence on the
/// attacker-visible trace the security checker tests.
pub fn scenario(branch_site: BranchSite, gadget: LeakGadget, secret: u64) -> GadgetProgram {
    let name = format!("gadget-{branch_site:?}-{gadget:?}");
    let mut b = ProgramBuilder::new(name);

    // ---- data ----
    let secret_addr = b.alloc_secret_u64s("secret_value", &[secret]);
    let secret_mem_addr = b.alloc_secret_u64s("secret_region", &[secret ^ 0x5a5a, 0x77, 0x88]);
    let public_addr = b.alloc_u64s("public_value", &[0x42]);
    let probe_addr = b.alloc_zeros("probe_array", 128);
    let out_addr = b.alloc_u64s("out", &[0]);

    // ---- crypto prologue: load the secret non-speculatively and declassify
    // a public value (mirrors Listing 1 / Figure 5).
    b.begin_crypto();
    b.li(T0, secret_addr);
    b.ld(A0, T0, 0); // A0 = secret (r1 in the paper's Figure 5)
    b.li(T0, public_addr);
    b.ld(A1, T0, 0);
    b.declassify(A1, A1); // A1 = declassified public value (r4)

    // A small constant-time loop so the crypto region has replayable branches.
    b.li(A2, 4);
    b.label("ct_loop");
    b.addi(A2, A2, -1);
    b.bne(A2, ZERO, "ct_loop");

    // The mispredictable branch. For BR1 it stays inside the crypto region;
    // for BR2 the crypto region is closed first.
    if branch_site == BranchSite::NonCrypto {
        b.end_crypto();
    }
    b.li(T0, 1);
    let branch_pc = b.here();
    b.beq(T0, ZERO, "transient_path"); // never taken architecturally
    if branch_site == BranchSite::Crypto {
        b.end_crypto();
    }

    // Architectural (sequential) path: leak only the declassified value.
    b.andi(T1, A1, 1);
    b.slli(T1, T1, 6);
    b.li(A3, probe_addr);
    b.add(A3, A3, T1);
    b.ld(A4, A3, 0);
    b.li(T0, out_addr);
    b.sd(A1, T0, 0);
    b.j("end");

    // Transient path: the leak gadget. Crypto gadgets (R1/M1) are placed in
    // their own crypto range; non-crypto gadgets (R2/M2) are untagged code.
    b.label("transient_path");
    let gadget_is_crypto = matches!(
        gadget,
        LeakGadget::CryptoRegister | LeakGadget::CryptoMemory
    );
    if gadget_is_crypto {
        b.begin_crypto();
    }
    match gadget {
        LeakGadget::CryptoRegister | LeakGadget::NonCryptoRegister => {
            // Leak A0 (secret) or A1 (public) through the probe array.
            let reg = if gadget == LeakGadget::CryptoRegister {
                A0
            } else {
                A1
            };
            b.andi(T1, reg, 1);
            b.slli(T1, T1, 6);
            b.li(A3, probe_addr);
            b.add(A3, A3, T1);
            b.ld(A4, A3, 0);
        }
        LeakGadget::CryptoMemory => {
            // Load from the secret crypto region, then leak the loaded value.
            b.li(A3, secret_mem_addr);
            b.ld(A4, A3, 0);
            b.andi(T1, A4, 1);
            b.slli(T1, T1, 6);
            b.li(A3, probe_addr);
            b.add(A3, A3, T1);
            b.ld(A4, A3, 0);
        }
        LeakGadget::NonCryptoMemory => {
            // An out-of-bounds non-crypto load (software isolation violation),
            // leaking whatever it reads — here it happens to alias the secret
            // region, as in a real Spectre-v1 attack.
            b.li(A3, secret_mem_addr);
            b.ld(A4, A3, 0);
            b.andi(T1, A4, 1);
            b.slli(T1, T1, 6);
            b.li(A3, probe_addr);
            b.add(A3, A3, T1);
            b.ld(A4, A3, 0);
        }
    }
    if gadget_is_crypto {
        b.end_crypto();
    }
    b.j("end");

    b.label("end");
    b.halt();

    let program = b.build().expect("gadget program assembles");
    GadgetProgram {
        program,
        branch_pc,
        probe_addr,
        branch_site,
        gadget,
    }
}

/// Builds the paper's Listing 1: a constant-time decryption loop whose secret
/// state is declassified only after the final round; skipping the loop
/// transiently leaks the undecrypted secret.
pub fn listing1_decrypt(secret: u64, rounds: u64) -> GadgetProgram {
    let mut b = ProgramBuilder::new("listing1-decrypt");
    let secret_addr = b.alloc_secret_u64s("m", &[secret]);
    let key_addr =
        b.alloc_secret_u64s("skey", &(0..rounds).map(|i| i * 0x1111).collect::<Vec<_>>());
    let probe_addr = b.alloc_zeros("probe_array", 128);
    let out_addr = b.alloc_u64s("out", &[0]);

    b.begin_crypto();
    b.li(T0, secret_addr);
    b.ld(A0, T0, 0); // state = m (secret)
    b.li(A2, 0); // i
    b.li(A3, rounds);
    let branch_pc = b.here();
    b.beq(A3, ZERO, "after_loop"); // loop guard: skipping it leaks early
    b.label("round_loop");
    // state = decrypt_ct(state, skey[i]) — an ARX mix standing in for a round.
    b.slli(T0, A2, 3);
    b.li(T1, key_addr);
    b.add(T1, T1, T0);
    b.ld(T1, T1, 0);
    b.xor(A0, A0, T1);
    b.rotli(A0, A0, 13);
    b.addi(A2, A2, 1);
    b.bne(A2, A3, "round_loop");
    b.label("after_loop");
    b.declassify(A1, A0); // d = declassify(state)
    b.end_crypto();
    // leak(d): allowed after declassification.
    b.andi(T1, A1, 1);
    b.slli(T1, T1, 6);
    b.li(A4, probe_addr);
    b.add(A4, A4, T1);
    b.ld(A4, A4, 0);
    b.li(T0, out_addr);
    b.sd(A1, T0, 0);
    b.halt();

    let program = b.build().expect("listing1 assembles");
    GadgetProgram {
        program,
        branch_pc,
        probe_addr,
        branch_site: BranchSite::Crypto,
        gadget: LeakGadget::CryptoRegister,
    }
}

/// All eight Table-2 scenarios, in the paper's order.
pub fn all_scenarios(secret: u64) -> Vec<GadgetProgram> {
    vec![
        scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, secret),
        scenario(BranchSite::Crypto, LeakGadget::CryptoMemory, secret),
        scenario(BranchSite::Crypto, LeakGadget::NonCryptoRegister, secret),
        scenario(BranchSite::Crypto, LeakGadget::NonCryptoMemory, secret),
        scenario(BranchSite::NonCrypto, LeakGadget::CryptoMemory, secret),
        scenario(BranchSite::NonCrypto, LeakGadget::CryptoRegister, secret),
        scenario(BranchSite::NonCrypto, LeakGadget::NonCryptoRegister, secret),
        scenario(BranchSite::NonCrypto, LeakGadget::NonCryptoMemory, secret),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::exec::{contract_trace, Executor};

    #[test]
    fn scenarios_execute_benignly() {
        for g in all_scenarios(0xdead_beef) {
            let mut e = Executor::new(&g.program);
            e.run(10_000).expect("gadget runs architecturally");
        }
    }

    #[test]
    fn branch_pc_is_a_conditional_branch() {
        for g in all_scenarios(1) {
            let instr = g.program.instr(g.branch_pc).unwrap();
            assert!(instr.is_branch(), "marked pc must be a branch");
        }
    }

    #[test]
    fn sequential_contract_trace_is_secret_independent() {
        // The architectural (sequential) execution of every scenario is
        // constant-time: its ct contract trace must not depend on the secret.
        for (a, b) in all_scenarios(0).into_iter().zip(all_scenarios(u64::MAX)) {
            let ta = contract_trace(&a.program, 100_000).unwrap();
            let tb = contract_trace(&b.program, 100_000).unwrap();
            assert_eq!(ta, tb, "scenario {:?}/{:?}", a.branch_site, a.gadget);
        }
    }

    #[test]
    fn listing1_runs_and_declassifies() {
        let g = listing1_decrypt(0x1234_5678, 8);
        let mut e = Executor::new(&g.program);
        e.run(10_000).unwrap();
        // The architectural leak is of the *decrypted* (declassified) value.
        let t0 = contract_trace(&listing1_decrypt(0, 8).program, 100_000).unwrap();
        let t1 = contract_trace(&listing1_decrypt(1, 8).program, 100_000).unwrap();
        // Control flow is identical; the final probe access differs only in
        // the declassified output (allowed by the ct policy).
        assert_eq!(t0.len(), t1.len());
    }

    #[test]
    fn branch_site_tagging_matches_scenario() {
        let c = scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, 5);
        assert!(c.program.is_crypto_pc(c.branch_pc));
        let n = scenario(BranchSite::NonCrypto, LeakGadget::CryptoRegister, 5);
        assert!(!n.program.is_crypto_pc(n.branch_pc));
    }
}
