//! Reference 16-round Feistel block cipher (DES stand-in).
//!
//! **Substitution note.** The paper's BearSSL `DES_ct` workload exercises a
//! 16-round Feistel network with per-round key mixing. Re-implementing DES's
//! bit permutations gains nothing for branch-trace analysis (they are
//! straight-line code), so this stand-in keeps exactly the structural
//! properties that matter — a 16-round Feistel loop over 64-bit blocks with a
//! key schedule loop — while using an ARX round function.

/// Number of Feistel rounds, matching DES.
pub const ROUNDS: usize = 16;

/// Derives 16 round keys from a 64-bit key using an ARX key schedule.
pub fn key_schedule(key: u64) -> [u32; ROUNDS] {
    let mut ks = [0u32; ROUNDS];
    let mut state = key ^ 0x9e37_79b9_7f4a_7c15;
    for (i, k) in ks.iter_mut().enumerate() {
        state = state
            .rotate_left(13)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add(i as u64);
        state ^= state >> 31;
        *k = (state >> 16) as u32;
    }
    ks
}

/// The round function: ARX mixing of the half block with the round key.
pub fn round_function(half: u32, round_key: u32) -> u32 {
    let mut x = half.wrapping_add(round_key);
    x = x.rotate_left(7) ^ round_key;
    x = x.wrapping_mul(0x9e37_79b9) | 1;
    x ^= x >> 15;
    x = x.rotate_left(11).wrapping_add(half);
    x
}

/// Encrypts one 64-bit block.
pub fn encrypt_block(key: u64, block: u64) -> u64 {
    let ks = key_schedule(key);
    let mut left = (block >> 32) as u32;
    let mut right = block as u32;
    for k in ks.iter().take(ROUNDS) {
        let new_right = left ^ round_function(right, *k);
        left = right;
        right = new_right;
    }
    // Final swap, as in DES.
    ((right as u64) << 32) | left as u64
}

/// Decrypts one 64-bit block.
pub fn decrypt_block(key: u64, block: u64) -> u64 {
    let ks = key_schedule(key);
    let mut right = (block >> 32) as u32;
    let mut left = block as u32;
    for k in ks.iter().take(ROUNDS).rev() {
        let new_left = right ^ round_function(left, *k);
        right = left;
        left = new_left;
    }
    ((left as u64) << 32) | right as u64
}

/// Encrypts a sequence of 64-bit blocks in ECB mode (sufficient for the
/// branch-behaviour workload).
pub fn encrypt_blocks(key: u64, blocks: &[u64]) -> Vec<u64> {
    blocks.iter().map(|b| encrypt_block(key, *b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        for i in 0..64u64 {
            let key = 0x0123_4567_89ab_cdef ^ (i * 0x1111);
            let block = i.wrapping_mul(0xdead_beef_cafe) ^ 0x55aa;
            assert_eq!(decrypt_block(key, encrypt_block(key, block)), block);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let b = 0x1234_5678_9abc_def0;
        assert_ne!(encrypt_block(1, b), encrypt_block(2, b));
    }

    #[test]
    fn key_schedule_is_deterministic_and_varied() {
        let ks = key_schedule(42);
        assert_eq!(ks, key_schedule(42));
        assert_ne!(ks[0], ks[1]);
        assert_ne!(ks, key_schedule(43));
    }

    #[test]
    fn block_diffusion() {
        let key = 0xfeed_face_dead_beef;
        let c1 = encrypt_block(key, 0);
        let c2 = encrypt_block(key, 1);
        assert_ne!(c1, c2);
        assert_ne!(c1 ^ c2, 1, "flipping one bit should diffuse");
    }
}
