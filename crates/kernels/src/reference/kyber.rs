//! Kyber-shaped lattice arithmetic: NTT-based polynomial multiplication over
//! `Z_q[X]/(X^256 - 1)` with q = 3329, plus the module-level matrix/vector
//! products that dominate Kyber512/768 key encapsulation.
//!
//! **Substitution note.** Real Kyber uses a negacyclic NTT (X^256 + 1) with a
//! pairwise basemul and Keccak-based sampling. What Cassandra's analysis sees
//! is the *loop structure*: log n butterfly levels over 256 coefficients, k×k
//! matrix-vector polynomial products (k = 2 for Kyber512, 3 for Kyber768),
//! and per-coefficient Barrett reductions — all with public trip counts. The
//! cyclic NTT used here has the same loop nest shapes and operation mix; the
//! deterministic xorshift-based sampler replaces Keccak (which is
//! straight-line code in the real implementation anyway).

/// The Kyber modulus.
pub const Q: u64 = 3329;
/// Polynomial degree.
pub const N: usize = 256;

/// A polynomial with `N` coefficients in `[0, Q)`.
pub type Poly = Vec<u64>;

/// Modular exponentiation used to find roots of unity.
fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= Q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % Q;
        }
        base = base * base % Q;
        exp >>= 1;
    }
    acc
}

/// Returns a primitive `N`-th root of unity modulo `Q`.
///
/// `Q - 1 = 3328 = 2^8 * 13`, so primitive 256th roots exist.
pub fn primitive_root() -> u64 {
    for g in 2..Q {
        let w = pow_mod(g, (Q - 1) / N as u64);
        if pow_mod(w, (N / 2) as u64) != 1 {
            return w;
        }
    }
    unreachable!("a primitive root must exist for q = 3329")
}

/// Precomputes the twiddle factors `w^0 .. w^(N-1)` for the forward NTT.
pub fn twiddles(root: u64) -> Vec<u64> {
    let mut t = Vec::with_capacity(N);
    let mut acc = 1u64;
    for _ in 0..N {
        t.push(acc);
        acc = acc * root % Q;
    }
    t
}

/// In-place iterative radix-2 NTT (decimation in time, cyclic).
pub fn ntt(poly: &mut [u64], tw: &[u64]) {
    assert_eq!(poly.len(), N);
    // Bit-reversal permutation.
    let bits = N.trailing_zeros();
    for i in 0..N {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            poly.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= N {
        let step = N / len;
        for start in (0..N).step_by(len) {
            for k in 0..len / 2 {
                let w = tw[k * step];
                let u = poly[start + k];
                let v = poly[start + k + len / 2] * w % Q;
                poly[start + k] = (u + v) % Q;
                poly[start + k + len / 2] = (u + Q - v) % Q;
            }
        }
        len *= 2;
    }
}

/// In-place inverse NTT.
pub fn intt(poly: &mut [u64], root: u64) {
    let inv_root = pow_mod(root, Q - 2);
    let tw = twiddles(inv_root);
    ntt(poly, &tw);
    let n_inv = pow_mod(N as u64, Q - 2);
    for c in poly.iter_mut() {
        *c = *c * n_inv % Q;
    }
}

/// Pointwise multiplication of two NTT-domain polynomials.
pub fn pointwise(a: &[u64], b: &[u64]) -> Poly {
    a.iter().zip(b.iter()).map(|(x, y)| x * y % Q).collect()
}

/// Schoolbook cyclic convolution, the oracle for NTT-based multiplication.
pub fn cyclic_convolution(a: &[u64], b: &[u64]) -> Poly {
    let mut out = vec![0u64; N];
    for i in 0..N {
        for j in 0..N {
            out[(i + j) % N] = (out[(i + j) % N] + a[i] * b[j]) % Q;
        }
    }
    out
}

/// Multiplies two polynomials via the NTT.
pub fn poly_mul(a: &[u64], b: &[u64]) -> Poly {
    let root = primitive_root();
    let tw = twiddles(root);
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    ntt(&mut fa, &tw);
    ntt(&mut fb, &tw);
    let mut prod = pointwise(&fa, &fb);
    intt(&mut prod, root);
    prod
}

/// Adds two polynomials coefficient-wise.
pub fn poly_add(a: &[u64], b: &[u64]) -> Poly {
    a.iter().zip(b.iter()).map(|(x, y)| (x + y) % Q).collect()
}

/// Deterministic xorshift-based polynomial sampler (Keccak stand-in).
pub fn sample_poly(seed: u64) -> Poly {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(N);
    for _ in 0..N {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push(state % Q);
    }
    out
}

/// A Kyber-shaped "matrix times vector plus error" product: given module rank
/// `k`, computes `t = A*s + e` where all polynomials are sampled from `seed`.
/// Returns the `k` result polynomials. This is the arithmetic core of key
/// generation / encapsulation.
pub fn matrix_vector_product(k: usize, seed: u64) -> Vec<Poly> {
    let mut result = Vec::with_capacity(k);
    for i in 0..k {
        let mut acc = vec![0u64; N];
        for j in 0..k {
            let a_ij = sample_poly(seed.wrapping_add((i * k + j) as u64 * 0x9e37));
            let s_j = sample_poly(seed.wrapping_add(0xdead + j as u64));
            acc = poly_add(&acc, &poly_mul(&a_ij, &s_j));
        }
        let e_i = sample_poly(seed.wrapping_add(0xbeef + i as u64));
        result.push(poly_add(&acc, &e_i));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_primitive() {
        let w = primitive_root();
        assert_eq!(pow_mod(w, N as u64), 1);
        assert_ne!(pow_mod(w, (N / 2) as u64), 1);
    }

    #[test]
    fn ntt_intt_roundtrip() {
        let root = primitive_root();
        let tw = twiddles(root);
        let original = sample_poly(7);
        let mut p = original.clone();
        ntt(&mut p, &tw);
        assert_ne!(p, original);
        intt(&mut p, root);
        assert_eq!(p, original);
    }

    #[test]
    fn ntt_multiplication_matches_schoolbook() {
        let a = sample_poly(1);
        let b = sample_poly(2);
        assert_eq!(poly_mul(&a, &b), cyclic_convolution(&a, &b));
    }

    #[test]
    fn poly_add_is_componentwise() {
        let a = sample_poly(3);
        let b = sample_poly(4);
        let c = poly_add(&a, &b);
        for i in 0..N {
            assert_eq!(c[i], (a[i] + b[i]) % Q);
        }
    }

    #[test]
    fn matrix_vector_product_shapes() {
        let t2 = matrix_vector_product(2, 99);
        let t3 = matrix_vector_product(3, 99);
        assert_eq!(t2.len(), 2);
        assert_eq!(t3.len(), 3);
        for p in t2.iter().chain(t3.iter()) {
            assert_eq!(p.len(), N);
            assert!(p.iter().all(|&c| c < Q));
        }
        assert_ne!(t2[0], t3[0], "rank changes the result");
    }

    #[test]
    fn sampler_is_deterministic() {
        assert_eq!(sample_poly(5), sample_poly(5));
        assert_ne!(sample_poly(5), sample_poly(6));
    }
}
