//! Arithmetic over the Mersenne prime field GF(2^61 - 1) and a Montgomery
//! ladder over a Montgomery-form curve defined on it.
//!
//! **Substitution note.** The paper's `EC_c25519` / `curve25519` workloads run
//! an X25519 Montgomery ladder over GF(2^255 - 19). The branch behaviour that
//! matters is a fixed 255-iteration ladder loop whose body is a block of
//! field multiplications, squarings, additions and a constant-time swap. This
//! stand-in keeps the identical ladder structure (same xDBLADD formulas, same
//! cswap) over the smaller Mersenne prime 2^61 - 1, so each field operation is
//! a handful of instructions instead of hundreds; the loop and call pattern —
//! which is what Cassandra compresses — is unchanged.

/// The field prime, 2^61 - 1.
pub const P: u64 = (1 << 61) - 1;

/// The curve's `(A + 2) / 4` constant used by the xDBLADD formula. The value
/// mirrors curve25519's 121666 (the exact constant is irrelevant to the
/// branch behaviour).
pub const A24: u64 = 121_666;

/// Reduces an arbitrary 64-bit value modulo `P`.
pub fn reduce(x: u64) -> u64 {
    let mut r = (x & P) + (x >> 61);
    if r >= P {
        r -= P;
    }
    r
}

/// Field addition.
pub fn add(a: u64, b: u64) -> u64 {
    reduce(a + b)
}

/// Field subtraction.
pub fn sub(a: u64, b: u64) -> u64 {
    reduce(a + (P - reduce(b)))
}

/// Field multiplication via the Mersenne folding 2^61 ≡ 1.
pub fn mul(a: u64, b: u64) -> u64 {
    let t = u128::from(a) * u128::from(b);
    let lo = t as u64;
    let hi = (t >> 64) as u64;
    // 2^64 ≡ 8 (mod 2^61 - 1)
    let folded = (lo & P) + (lo >> 61) + hi * 8;
    reduce(folded)
}

/// Field squaring.
pub fn square(a: u64) -> u64 {
    mul(a, a)
}

/// Field exponentiation (square and multiply, public exponent).
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = square(base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse via Fermat's little theorem.
pub fn inv(a: u64) -> u64 {
    pow(a, P - 2)
}

/// Constant-time conditional swap of two field elements, driven by `bit`.
pub fn cswap(bit: u64, a: u64, b: u64) -> (u64, u64) {
    let mask = bit.wrapping_neg();
    let t = mask & (a ^ b);
    (a ^ t, b ^ t)
}

/// One step of the Montgomery ladder (xDBLADD) on projective x-coordinates.
///
/// Given `(X2:Z2) = [n]P` and `(X3:Z3) = [n+1]P` plus the affine
/// x-coordinate `x1` of the base point, returns `([2n]P, [2n+1]P)`.
#[allow(clippy::many_single_char_names)]
pub fn ladder_step(x1: u64, x2: u64, z2: u64, x3: u64, z3: u64) -> (u64, u64, u64, u64) {
    let a = add(x2, z2);
    let aa = square(a);
    let b = sub(x2, z2);
    let bb = square(b);
    let e = sub(aa, bb);
    let c = add(x3, z3);
    let d = sub(x3, z3);
    let da = mul(d, a);
    let cb = mul(c, b);
    let x5 = square(add(da, cb));
    let z5 = mul(x1, square(sub(da, cb)));
    let x4 = mul(aa, bb);
    let z4 = mul(e, add(bb, mul(A24, e)));
    (x4, z4, x5, z5)
}

/// Montgomery-ladder scalar multiplication: returns the affine x-coordinate
/// of `[scalar]P` given the affine x-coordinate `x1` of P. `bits` is the
/// number of scalar bits processed (255 for the curve25519-shaped workload).
pub fn scalar_mult(x1: u64, scalar: &[u64], bits: usize) -> u64 {
    let x1 = reduce(x1);
    let mut x2 = 1u64;
    let mut z2 = 0u64;
    let mut x3 = x1;
    let mut z3 = 1u64;
    let mut swap = 0u64;
    for i in (0..bits).rev() {
        let bit = (scalar[i / 64] >> (i % 64)) & 1;
        swap ^= bit;
        let (nx2, nx3) = cswap(swap, x2, x3);
        let (nz2, nz3) = cswap(swap, z2, z3);
        swap = bit;
        let (a, b, c, d) = ladder_step(x1, nx2, nz2, nx3, nz3);
        x2 = a;
        z2 = b;
        x3 = c;
        z3 = d;
    }
    let (x2, _x3) = cswap(swap, x2, x3);
    let (z2, _z3) = cswap(swap, z2, z3);
    mul(x2, inv(z2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_bounds() {
        assert_eq!(reduce(P), 0);
        assert_eq!(reduce(P + 5), 5);
        // 2^64 - 1 = 8p + 7, so it reduces to 7.
        assert_eq!(reduce(u64::MAX), 7);
        assert!(reduce(u64::MAX) < P);
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = 0x0123_4567_89ab_cdef % P;
        let b = 0x0fed_cba9_8765_4321 % P;
        let c = 0x1111_2222_3333 % P;
        assert_eq!(mul(a, b), mul(b, a));
        assert_eq!(add(a, b), add(b, a));
        assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        assert_eq!(sub(a, a), 0);
        assert_eq!(mul(a, 1), a);
    }

    #[test]
    fn inverse_is_correct() {
        for a in [1u64, 2, 12345, P - 1, 0x1122_3344_5566] {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn cswap_behaviour() {
        assert_eq!(cswap(0, 3, 9), (3, 9));
        assert_eq!(cswap(1, 3, 9), (9, 3));
    }

    #[test]
    fn scalar_mult_distributes_like_a_group_action() {
        // [2]([3]P) should equal [3]([2]P) = [6]P on the x-line: scalar
        // multiplication on x-coordinates commutes.
        let x1 = 9u64;
        let two = [2u64, 0, 0, 0];
        let three = [3u64, 0, 0, 0];
        let six = [6u64, 0, 0, 0];
        let p2 = scalar_mult(x1, &two, 255);
        let p3 = scalar_mult(x1, &three, 255);
        let left = scalar_mult(p3, &two, 255);
        let right = scalar_mult(p2, &three, 255);
        let direct = scalar_mult(x1, &six, 255);
        assert_eq!(left, right);
        assert_eq!(left, direct);
    }

    #[test]
    fn scalar_one_is_identityish() {
        let x1 = 9u64;
        let one = [1u64, 0, 0, 0];
        assert_eq!(scalar_mult(x1, &one, 255), x1);
    }
}
