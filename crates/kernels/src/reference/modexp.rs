//! Reference Montgomery-ladder modular exponentiation (RSA / ModPow stand-in).
//!
//! **Substitution note.** The paper's `RSA-2048` and `ModPow_i31` workloads
//! perform constant-time modular exponentiation over multi-limb integers. The
//! branch behaviour that matters is a fixed-length square-and-multiply ladder
//! (one iteration per exponent bit) calling a constant-time modular
//! multiplication routine. This stand-in keeps that structure with a 62-bit
//! modulus and configurable exponent width (256 bits by default), using
//! single-limb Montgomery multiplication — which is exactly what each limb
//! step of a real implementation does.

/// A Montgomery context for a fixed odd modulus below 2^62.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontCtx {
    /// The odd modulus.
    pub n: u64,
    /// `-n^{-1} mod 2^64`.
    pub n_prime: u64,
    /// `R^2 mod n` where `R = 2^64`, used to enter the Montgomery domain.
    pub r2: u64,
    /// `R mod n`, the Montgomery representation of 1.
    pub r1: u64,
}

impl MontCtx {
    /// Builds a context for an odd modulus `n < 2^62`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even, zero, or not below 2^62.
    pub fn new(n: u64) -> Self {
        assert!(n % 2 == 1, "modulus must be odd");
        assert!(n > 1 && n < (1 << 62), "modulus must be in (1, 2^62)");
        // Newton iteration for the inverse of n modulo 2^64.
        let mut inv = n; // correct to 3 bits
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        let r1 = (u128::from(u64::MAX) + 1).rem_euclid(u128::from(n)) as u64;
        let r2 = ((u128::from(r1) * u128::from(r1)) % u128::from(n)) as u64;
        MontCtx { n, n_prime, r2, r1 }
    }

    /// Montgomery multiplication: returns `a * b * R^{-1} mod n`.
    pub fn mont_mul(&self, a: u64, b: u64) -> u64 {
        let t = u128::from(a) * u128::from(b);
        let t_lo = t as u64;
        let t_hi = (t >> 64) as u64;
        let m = t_lo.wrapping_mul(self.n_prime);
        let mn = u128::from(m) * u128::from(self.n);
        let mn_lo = mn as u64;
        let mn_hi = (mn >> 64) as u64;
        let (_, carry) = t_lo.overflowing_add(mn_lo);
        let u = t_hi + mn_hi + u64::from(carry);
        // Constant-time conditional subtraction.
        let (diff, borrow) = u.overflowing_sub(self.n);
        if borrow {
            u
        } else {
            diff
        }
    }

    /// Converts into the Montgomery domain.
    pub fn to_mont(&self, a: u64) -> u64 {
        self.mont_mul(a % self.n, self.r2)
    }

    /// Converts out of the Montgomery domain.
    pub fn from_mont(&self, a: u64) -> u64 {
        self.mont_mul(a, 1)
    }

    /// Plain modular multiplication through the Montgomery domain.
    pub fn mod_mul(&self, a: u64, b: u64) -> u64 {
        self.from_mont(self.mont_mul(self.to_mont(a), self.to_mont(b)))
    }
}

/// Constant-time Montgomery-ladder exponentiation: `base^exp mod n`, where the
/// exponent is given as `bits` bits of `exp` (little-endian 64-bit words),
/// scanned from the most significant bit downwards.
pub fn mod_exp(n: u64, base: u64, exp: &[u64], bits: usize) -> u64 {
    let ctx = MontCtx::new(n);
    let x = ctx.to_mont(base);
    // Ladder state: r0 = 1 (Montgomery), r1 = x.
    let mut r0 = ctx.r1;
    let mut r1 = x;
    for i in (0..bits).rev() {
        let bit = (exp[i / 64] >> (i % 64)) & 1;
        // Constant-time swap driven by the bit (the ISA kernel uses the same
        // masked swap so the two stay in lockstep).
        let mask = bit.wrapping_neg();
        let t0 = r0 ^ (mask & (r0 ^ r1));
        let t1 = r1 ^ (mask & (r0 ^ r1));
        // t0 is the "accumulator", t1 the "other": square/multiply.
        let new_other = ctx.mont_mul(t0, t1);
        let new_acc = ctx.mont_mul(t0, t0);
        // Swap back.
        r0 = new_acc ^ (mask & (new_acc ^ new_other));
        r1 = new_other ^ (mask & (new_acc ^ new_other));
    }
    ctx.from_mont(r0)
}

/// Simple square-and-multiply oracle used to validate [`mod_exp`] in tests.
pub fn mod_exp_naive(n: u64, base: u64, exp: &[u64], bits: usize) -> u64 {
    let n128 = u128::from(n);
    let mut result: u128 = 1 % n128;
    let mut b = u128::from(base % n);
    for i in 0..bits {
        let bit = (exp[i / 64] >> (i % 64)) & 1;
        if bit == 1 {
            result = result * b % n128;
        }
        b = b * b % n128;
    }
    result as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const P61: u64 = (1 << 61) - 1;

    #[test]
    fn mont_ctx_inverse_is_correct() {
        for n in [3u64, 0xffff_fffb, P61, (1 << 61) + 15] {
            let ctx = MontCtx::new(n);
            assert_eq!(
                n.wrapping_mul(ctx.n_prime),
                u64::MAX,
                "n * n' == -1 mod 2^64 for n={n}"
            );
        }
    }

    #[test]
    fn mont_mul_matches_plain_multiplication() {
        let ctx = MontCtx::new(P61);
        for (a, b) in [(1u64, 1u64), (2, 3), (P61 - 1, P61 - 1), (12345, 987654321)] {
            let expect = ((u128::from(a) * u128::from(b)) % u128::from(P61)) as u64;
            assert_eq!(ctx.mod_mul(a, b), expect);
        }
    }

    #[test]
    fn to_from_mont_roundtrip() {
        let ctx = MontCtx::new(1_000_003);
        for a in [0u64, 1, 999_999, 123_456] {
            assert_eq!(ctx.from_mont(ctx.to_mont(a)), a % ctx.n);
        }
    }

    #[test]
    fn ladder_matches_naive_exponentiation() {
        let n = P61;
        let exp = [
            0x0123_4567_89ab_cdef,
            0xfeed_face_0bad_beef,
            0x1111,
            0x8000_0000_0000_0001,
        ];
        for base in [2u64, 3, 65537, P61 - 2] {
            assert_eq!(
                mod_exp(n, base, &exp, 256),
                mod_exp_naive(n, base, &exp, 256),
                "base {base}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // P61 is prime: a^(p-1) ≡ 1 (mod p).
        let p = P61;
        let exp = [p - 1, 0, 0, 0];
        for a in [2u64, 7, 1234567] {
            assert_eq!(mod_exp(p, a, &exp, 64), 1);
        }
    }
}
