//! Reference AES-128 (FIPS 197), encryption only, CTR mode helper.
//!
//! The S-box is generated algorithmically (multiplicative inverse in
//! GF(2^8) followed by the affine transform) so that the ISA kernel and the
//! reference share no magic tables that could hide a transcription error.

/// Number of rounds for AES-128.
pub const ROUNDS: usize = 10;

/// Multiplies two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0), computed by exponentiation
/// to the 254th power.
pub fn gf_inv(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Computes the AES S-box entry for `x`.
pub fn sbox(x: u8) -> u8 {
    let inv = gf_inv(x);
    let mut out = 0u8;
    for i in 0..8u32 {
        let bit = ((inv >> i) & 1)
            ^ ((inv >> ((i + 4) % 8)) & 1)
            ^ ((inv >> ((i + 5) % 8)) & 1)
            ^ ((inv >> ((i + 6) % 8)) & 1)
            ^ ((inv >> ((i + 7) % 8)) & 1)
            ^ ((0x63 >> i) & 1);
        out |= bit << i;
    }
    out
}

/// Generates the full 256-entry S-box table.
pub fn sbox_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    for (i, e) in t.iter_mut().enumerate() {
        *e = sbox(i as u8);
    }
    t
}

/// Expands a 16-byte key into 11 round keys (176 bytes).
pub fn key_expansion(key: &[u8; 16]) -> [u8; 176] {
    let mut w = [0u8; 176];
    w[..16].copy_from_slice(key);
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut temp = [
            w[4 * (i - 1)],
            w[4 * (i - 1) + 1],
            w[4 * (i - 1) + 2],
            w[4 * (i - 1) + 3],
        ];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = sbox(*b);
            }
            temp[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
        }
        for j in 0..4 {
            w[4 * i + j] = w[4 * (i - 4) + j] ^ temp[j];
        }
    }
    w
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sbox(*b);
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // Column-major state layout: state[r + 4c].
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

/// Encrypts a single 16-byte block.
pub fn encrypt_block(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    let rk = key_expansion(key);
    let mut state = *plaintext;
    add_round_key(&mut state, &rk[..16]);
    for round in 1..ROUNDS {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &rk[16 * round..16 * round + 16]);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[160..176]);
    state
}

/// Encrypts `message` in CTR mode with a 16-byte big-endian counter block
/// starting at `iv`.
pub fn encrypt_ctr(key: &[u8; 16], iv: u128, message: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.len());
    for (i, chunk) in message.chunks(16).enumerate() {
        let counter_block = (iv.wrapping_add(i as u128)).to_be_bytes();
        let ks = encrypt_block(key, &counter_block);
        for (j, b) in chunk.iter().enumerate() {
            out.push(b ^ ks[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7c);
        assert_eq!(sbox(0x53), 0xed);
        assert_eq!(sbox(0xff), 0x16);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let t = sbox_table();
        let mut seen = [false; 256];
        for &v in t.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for x in 1..=255u8 {
            assert_eq!(gf_mul(x, gf_inv(x)), 1, "x = {x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    /// FIPS-197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let ct = encrypt_block(&key, &pt);
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(ct, expected);
    }

    #[test]
    fn ctr_mode_roundtrip() {
        let key = [0x2b; 16];
        let msg: Vec<u8> = (0..100u8).collect();
        let ct = encrypt_ctr(&key, 42, &msg);
        let pt = encrypt_ctr(&key, 42, &ct);
        assert_eq!(pt, msg);
        assert_ne!(ct, msg);
    }
}
