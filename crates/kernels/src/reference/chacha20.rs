//! Reference ChaCha20 stream cipher (RFC 8439).

/// The ChaCha constant `"expa nd 3 2-by te k"` as four little-endian words.
pub const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// One quarter round on four state words.
#[inline]
pub fn quarter_round(a: u32, b: u32, c: u32, d: u32) -> (u32, u32, u32, u32) {
    let (mut a, mut b, mut c, mut d) = (a, b, c, d);
    a = a.wrapping_add(b);
    d ^= a;
    d = d.rotate_left(16);
    c = c.wrapping_add(d);
    b ^= c;
    b = b.rotate_left(12);
    a = a.wrapping_add(b);
    d ^= a;
    d = d.rotate_left(8);
    c = c.wrapping_add(d);
    b ^= c;
    b = b.rotate_left(7);
    (a, b, c, d)
}

fn qr(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    let (x, y, z, w) = quarter_round(state[a], state[b], state[c], state[d]);
    state[a] = x;
    state[b] = y;
    state[c] = z;
    state[d] = w;
}

/// Builds the initial 16-word ChaCha20 state from key, counter and nonce.
pub fn initial_state(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&CHACHA_CONST);
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    s[12] = counter;
    for i in 0..3 {
        s[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    s
}

/// The ChaCha20 block function: 20 rounds (10 double rounds) plus the feed
/// forward addition, serialised little-endian.
pub fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let s0 = initial_state(key, counter, nonce);
    let mut s = s0;
    for _ in 0..10 {
        // Column round.
        qr(&mut s, 0, 4, 8, 12);
        qr(&mut s, 1, 5, 9, 13);
        qr(&mut s, 2, 6, 10, 14);
        qr(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        qr(&mut s, 0, 5, 10, 15);
        qr(&mut s, 1, 6, 11, 12);
        qr(&mut s, 2, 7, 8, 13);
        qr(&mut s, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = s[i].wrapping_add(s0[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts (or decrypts) `message` with ChaCha20, starting at block
/// `counter`.
pub fn encrypt(key: &[u8; 32], counter: u32, nonce: &[u8; 12], message: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.len());
    for (block_idx, chunk) in message.chunks(64).enumerate() {
        let ks = block(key, counter.wrapping_add(block_idx as u32), nonce);
        for (i, byte) in chunk.iter().enumerate() {
            out.push(byte ^ ks[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The keystream must depend on every input: key, counter and nonce.
    #[test]
    fn block_depends_on_all_inputs() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let base = block(&key, 1, &nonce);
        assert_ne!(base, [0u8; 64]);
        assert_ne!(block(&key, 2, &nonce), base);
        let mut key2 = key;
        key2[0] ^= 1;
        assert_ne!(block(&key2, 1, &nonce), base);
        let mut nonce2 = nonce;
        nonce2[0] ^= 1;
        assert_ne!(block(&key, 1, &nonce2), base);
    }

    /// The initial state layout follows RFC 8439 §2.3.
    #[test]
    fn initial_state_layout() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce = [0u8; 12];
        let s = initial_state(&key, 7, &nonce);
        assert_eq!(&s[..4], &CHACHA_CONST);
        assert_eq!(s[4], u32::from_le_bytes([0, 1, 2, 3]));
        assert_eq!(s[12], 7);
        assert_eq!(s[13], 0);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let msg: Vec<u8> = (0..200).map(|i| (i * 7 % 251) as u8).collect();
        let ct = encrypt(&key, 0, &nonce, &msg);
        let pt = encrypt(&key, 0, &nonce, &ct);
        assert_eq!(pt, msg);
        assert_ne!(ct, msg);
    }

    #[test]
    fn quarter_round_rfc_vector() {
        // RFC 8439 §2.1.1
        let (a, b, c, d) = quarter_round(0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567);
        assert_eq!(a, 0xea2a92f4);
        assert_eq!(b, 0xcb1cf8ce);
        assert_eq!(c, 0x4581472e);
        assert_eq!(d, 0x5881c4bb);
    }
}
