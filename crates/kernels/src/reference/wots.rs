//! SPHINCS+-shaped hash-based signature arithmetic: an ARX permutation hash,
//! Winternitz (WOTS) hash chains and a Merkle tree over chain public keys.
//!
//! **Substitution note.** SPHINCS+ signing is dominated by millions of short
//! hash invocations arranged in chains (WOTS) and trees (FORS/XMSS). The
//! hash itself (SHA-2, SHAKE or Haraka) is straight-line code; the branch
//! behaviour Cassandra cares about is the chain loops, tree loops and the
//! per-node call pattern. This module keeps that structure with a compact
//! 4×64-bit ARX permutation (`h256`) and parameterisable chain/tree sizes so
//! the `sphincs-*-128s` workloads can be scaled to simulator-friendly sizes
//! without changing their control-flow shape.

/// Number of ARX rounds in the compression permutation.
pub const HASH_ROUNDS: usize = 12;

/// The 256-bit hash state (4 × 64-bit words).
pub type State = [u64; 4];

/// One ARX round on the 4-word state.
pub fn round(state: &mut State, round_const: u64) {
    state[0] = state[0].wrapping_add(state[1]);
    state[3] ^= state[0];
    state[3] = state[3].rotate_left(32);
    state[2] = state[2].wrapping_add(state[3]);
    state[1] ^= state[2];
    state[1] = state[1].rotate_left(24);
    state[0] = state[0].wrapping_add(state[1]).wrapping_add(round_const);
    state[3] ^= state[0];
    state[3] = state[3].rotate_left(16);
    state[2] = state[2].wrapping_add(state[3]);
    state[1] ^= state[2];
    state[1] = state[1].rotate_left(63);
}

/// A 256-bit to 256-bit keyed compression function: `HASH_ROUNDS` ARX rounds
/// with a feed-forward, domain-separated by `tweak`.
pub fn h256(input: &State, tweak: u64) -> State {
    let mut s = *input;
    s[0] ^= tweak;
    for r in 0..HASH_ROUNDS {
        round(
            &mut s,
            (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tweak,
        );
    }
    [
        s[0].wrapping_add(input[0]),
        s[1].wrapping_add(input[1]),
        s[2].wrapping_add(input[2]),
        s[3].wrapping_add(input[3]),
    ]
}

/// Applies the chain function `steps` times starting from `x` (the WOTS chain
/// primitive). Each step is domain separated by its position.
pub fn chain(x: &State, start: usize, steps: usize) -> State {
    let mut s = *x;
    for i in start..start + steps {
        s = h256(&s, i as u64);
    }
    s
}

/// Parameters of the scaled-down SPHINCS-shaped workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WotsParams {
    /// Number of WOTS chains (`len` in the spec).
    pub chains: usize,
    /// Maximum chain length (`w - 1` steps per chain).
    pub chain_len: usize,
    /// Merkle tree height; the tree has `2^height` leaves.
    pub tree_height: usize,
}

impl WotsParams {
    /// A small configuration suitable for cycle-level simulation.
    pub fn small() -> Self {
        WotsParams {
            chains: 8,
            chain_len: 7,
            tree_height: 3,
        }
    }

    /// Number of leaves in the Merkle tree.
    pub fn leaves(&self) -> usize {
        1 << self.tree_height
    }
}

/// Derives the secret chain start values for one leaf from a seed.
pub fn leaf_secrets(seed: &State, leaf: usize, params: &WotsParams) -> Vec<State> {
    (0..params.chains)
        .map(|c| h256(seed, ((leaf << 16) | c) as u64 ^ 0xa5a5_0000))
        .collect()
}

/// Computes the WOTS public key of one leaf: run every chain to the end and
/// compress the chain ends together.
pub fn wots_public_key(seed: &State, leaf: usize, params: &WotsParams) -> State {
    let secrets = leaf_secrets(seed, leaf, params);
    let mut acc = [0u64; 4];
    for (c, secret) in secrets.iter().enumerate() {
        let end = chain(secret, 0, params.chain_len);
        // Absorb each chain end into the accumulator.
        acc = h256(
            &[
                acc[0] ^ end[0],
                acc[1] ^ end[1],
                acc[2] ^ end[2],
                acc[3] ^ end[3],
            ],
            c as u64 ^ 0x5a5a_0000,
        );
    }
    acc
}

/// Computes the Merkle tree root over all leaf public keys.
pub fn merkle_root(seed: &State, params: &WotsParams) -> State {
    let mut level: Vec<State> = (0..params.leaves())
        .map(|leaf| wots_public_key(seed, leaf, params))
        .collect();
    let mut height = 0u64;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                let combined = [
                    pair[0][0] ^ pair[1][0],
                    pair[0][1] ^ pair[1][1],
                    pair[0][2] ^ pair[1][2],
                    pair[0][3] ^ pair[1][3],
                ];
                h256(&combined, 0xc0de_0000 ^ height)
            })
            .collect();
        height += 1;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h256_is_deterministic_and_tweaked() {
        let x = [1u64, 2, 3, 4];
        assert_eq!(h256(&x, 0), h256(&x, 0));
        assert_ne!(h256(&x, 0), h256(&x, 1));
        assert_ne!(h256(&x, 0), x);
    }

    #[test]
    fn chain_composes() {
        let x = [9u64, 8, 7, 6];
        let full = chain(&x, 0, 6);
        let split = chain(&chain(&x, 0, 2), 2, 4);
        assert_eq!(full, split);
    }

    #[test]
    fn chain_zero_steps_is_identity() {
        let x = [5u64, 5, 5, 5];
        assert_eq!(chain(&x, 3, 0), x);
    }

    #[test]
    fn merkle_root_depends_on_seed_and_params() {
        let params = WotsParams::small();
        let r1 = merkle_root(&[1, 2, 3, 4], &params);
        let r2 = merkle_root(&[1, 2, 3, 5], &params);
        assert_ne!(r1, r2);
        let bigger = WotsParams {
            tree_height: 4,
            ..params
        };
        assert_ne!(merkle_root(&[1, 2, 3, 4], &bigger), r1);
    }

    #[test]
    fn params_leaf_count() {
        assert_eq!(WotsParams::small().leaves(), 8);
        assert_eq!(
            WotsParams {
                chains: 4,
                chain_len: 3,
                tree_height: 5
            }
            .leaves(),
            32
        );
    }
}
