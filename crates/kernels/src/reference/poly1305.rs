//! Reference Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! The implementation uses five 26-bit limbs, the classic constant-time
//! representation; the ISA kernel mirrors the same limb scheme so the two can
//! be compared limb by limb as well as byte by byte.

/// Clamps the `r` part of the key as required by the specification.
pub fn clamp(r: &mut [u8; 16]) {
    r[3] &= 15;
    r[7] &= 15;
    r[11] &= 15;
    r[15] &= 15;
    r[4] &= 252;
    r[8] &= 252;
    r[12] &= 252;
}

/// Splits 16 little-endian bytes into five 26-bit limbs.
pub fn to_limbs(bytes: &[u8; 16]) -> [u64; 5] {
    let lo = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let hi = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    [
        lo & 0x3ffffff,
        (lo >> 26) & 0x3ffffff,
        ((lo >> 52) | (hi << 12)) & 0x3ffffff,
        (hi >> 14) & 0x3ffffff,
        (hi >> 40) & 0x3ffffff,
    ]
}

/// Computes the Poly1305 tag of `message` under the 32-byte one-time `key`.
pub fn tag(key: &[u8; 32], message: &[u8]) -> [u8; 16] {
    let mut r_bytes: [u8; 16] = key[..16].try_into().unwrap();
    clamp(&mut r_bytes);
    let r = to_limbs(&r_bytes);
    let s = u128::from_le_bytes(key[16..32].try_into().unwrap());

    let mut h = [0u64; 5];
    for chunk in message.chunks(16) {
        // Build the 17-byte block value: chunk little-endian plus a high 1 bit.
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        let mut c = to_limbs(&block);
        if chunk.len() == 16 {
            c[4] |= 1 << 24; // the 2^128 bit lands in limb 4 bit 24
        } else {
            // Partial block: the 1 bit goes right after the message bytes.
            let bit = 8 * chunk.len();
            let limb = bit / 26;
            c[limb] |= 1 << (bit % 26);
        }
        // h += c
        for i in 0..5 {
            h[i] += c[i];
        }
        // h *= r (mod 2^130 - 5)
        h = mul_mod(&h, &r);
    }

    // Full carry propagation and reduction mod 2^130-5.
    h = reduce_final(h);

    // tag = (h + s) mod 2^128
    let h_low: u128 = (h[0] as u128)
        | ((h[1] as u128) << 26)
        | ((h[2] as u128) << 52)
        | ((h[3] as u128) << 78)
        | (((h[4] as u128) & 0x3ffffff) << 104);
    let t = h_low.wrapping_add(s);
    t.to_le_bytes()
}

/// Multiplies two 5×26-bit numbers modulo 2^130 - 5 with partial reduction.
fn mul_mod(h: &[u64; 5], r: &[u64; 5]) -> [u64; 5] {
    // Schoolbook with the 5*x folding for limbs above 2^130.
    let mut d = [0u128; 5];
    #[allow(clippy::needless_range_loop)]
    for i in 0..5 {
        #[allow(clippy::needless_range_loop)]
        for j in 0..5 {
            let prod = (h[i] as u128) * (r[j] as u128);
            let k = i + j;
            if k < 5 {
                d[k] += prod;
            } else {
                d[k - 5] += prod * 5;
            }
        }
    }
    // Carry propagation back to 26-bit limbs (partial: limbs may end slightly
    // above 2^26, which the next round's addition tolerates).
    let mut out = [0u64; 5];
    let mut carry: u128 = 0;
    for i in 0..5 {
        let v = d[i] + carry;
        out[i] = (v & 0x3ffffff) as u64;
        carry = v >> 26;
    }
    // Fold the final carry back with ×5.
    let mut c = (carry * 5) as u64;
    let mut i = 0;
    while c > 0 {
        let v = out[i] + c;
        out[i] = v & 0x3ffffff;
        c = v >> 26;
        i = (i + 1) % 5;
    }
    out
}

/// Fully reduces `h` modulo 2^130 - 5.
fn reduce_final(mut h: [u64; 5]) -> [u64; 5] {
    // Carry propagate.
    let mut carry = 0u64;
    for limb in h.iter_mut() {
        let v = *limb + carry;
        *limb = v & 0x3ffffff;
        carry = v >> 26;
    }
    // Fold carry (×5) back into limb 0 and propagate once more.
    let mut c = carry * 5;
    for limb in h.iter_mut() {
        let v = *limb + c;
        *limb = v & 0x3ffffff;
        c = v >> 26;
    }
    // Compute h + 5 - 2^130; if it is non-negative use it (constant-time
    // select in real code, plain select here).
    let mut g = [0u64; 5];
    let mut borrow_add = 5u64;
    for i in 0..5 {
        let v = h[i] + borrow_add;
        g[i] = v & 0x3ffffff;
        borrow_add = v >> 26;
    }
    let ge_p = borrow_add > 0 || (g[4] >> 26) > 0;
    // h >= 2^130 - 5 exactly when h + 5 carries out of 130 bits.
    let use_g = ge_p;
    let mut out = [0u64; 5];
    for i in 0..5 {
        out[i] = if use_g { g[i] } else { h[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(tag(&key, msg), expected);
    }

    #[test]
    fn empty_message_tag_is_s() {
        // With an empty message h stays 0, so the tag equals the s half.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let t = tag(&key, b"");
        assert_eq!(&t, &key[16..32]);
    }

    #[test]
    fn tag_depends_on_message_and_key() {
        let key = [0x42u8; 32];
        let t1 = tag(&key, b"hello world");
        let t2 = tag(&key, b"hello worle");
        assert_ne!(t1, t2);
        let mut key2 = key;
        key2[0] ^= 1;
        assert_ne!(tag(&key2, b"hello world"), t1);
    }

    #[test]
    fn limb_split_roundtrip() {
        let bytes: [u8; 16] = [
            0xff, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let limbs = to_limbs(&bytes);
        let value: u128 = (limbs[0] as u128)
            | ((limbs[1] as u128) << 26)
            | ((limbs[2] as u128) << 52)
            | ((limbs[3] as u128) << 78)
            | ((limbs[4] as u128) << 104);
        assert_eq!(value, u128::from_le_bytes(bytes));
    }

    #[test]
    fn clamp_masks_the_right_bits() {
        let mut r = [0xffu8; 16];
        clamp(&mut r);
        assert_eq!(r[3], 0x0f);
        assert_eq!(r[4], 0xfc);
        assert_eq!(r[15], 0x0f);
        assert_eq!(r[0], 0xff);
    }
}
