//! Pure-Rust reference implementations.
//!
//! These are *not* meant to be used as production cryptography; they exist so
//! the ISA kernels in [`crate::kernel`] can be validated bit-for-bit, and so
//! the property tests have an independent oracle.

pub mod aes128;
pub mod chacha20;
pub mod feistel;
pub mod field61;
pub mod kyber;
pub mod modexp;
pub mod poly1305;
pub mod sha256;
pub mod wots;
