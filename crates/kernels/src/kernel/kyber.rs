//! Kyber-shaped module-lattice arithmetic as an ISA kernel (see
//! [`crate::reference::kyber`]).
//!
//! The kernel computes the `t = A*s + e` matrix-vector product that dominates
//! Kyber key generation / encapsulation, using NTT-based polynomial
//! multiplication. The loop nest mirrors the reference: a `k × k` module loop,
//! per-product forward NTTs (bit-reversal loop + log n butterfly levels), a
//! pointwise loop and an inverse NTT — all with public trip counts. `k = 2`
//! reproduces the Kyber512 shape, `k = 3` Kyber768.

use crate::kernel::KernelProgram;
use crate::reference::kyber as reference;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{
    A0, A1, S0, S1, S10, S11, S2, S3, S4, S5, S6, S7, S8, S9, T0, T1, T2, T3, T4, ZERO,
};

const N: usize = reference::N;
const Q: u64 = reference::Q;
/// Bytes per polynomial (one u64 per coefficient).
const POLY_BYTES: u64 = (N * 8) as u64;

/// Builds the Kyber-shaped kernel for module rank `k` (2 or 3) and a sampling
/// seed. The output buffer holds the `k` result polynomials of `t = A*s + e`.
///
/// # Panics
///
/// Panics if `k` is not 2 or 3.
pub fn build(k: usize, seed: u64) -> KernelProgram {
    assert!(
        k == 2 || k == 3,
        "module rank must be 2 (Kyber512) or 3 (Kyber768)"
    );

    // Host-side preparation mirroring the reference sampler and tables.
    let root = reference::primitive_root();
    let inv_root = {
        // root^(Q-2) mod Q
        let mut acc = 1u64;
        let mut base = root;
        let mut e = Q - 2;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base % Q;
            }
            base = base * base % Q;
            e >>= 1;
        }
        acc
    };
    let fwd_tw = reference::twiddles(root);
    let inv_tw = reference::twiddles(inv_root);
    let n_inv = {
        let mut acc = 1u64;
        let mut base = N as u64;
        let mut e = Q - 2;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base % Q;
            }
            base = base * base % Q;
            e >>= 1;
        }
        acc
    };
    let bitrev: Vec<u64> = (0..N as u32)
        .map(|i| u64::from(i.reverse_bits() >> (32 - N.trailing_zeros())))
        .collect();
    let barrett = (1u128 << 40) / u128::from(Q);

    let a_polys: Vec<u64> = (0..k * k)
        .flat_map(|idx| reference::sample_poly(seed.wrapping_add(idx as u64 * 0x9e37)))
        .collect();
    let s_polys: Vec<u64> = (0..k)
        .flat_map(|j| reference::sample_poly(seed.wrapping_add(0xdead + j as u64)))
        .collect();
    let e_polys: Vec<u64> = (0..k)
        .flat_map(|i| reference::sample_poly(seed.wrapping_add(0xbeef + i as u64)))
        .collect();

    let mut b = ProgramBuilder::new(if k == 2 { "kyber512" } else { "kyber768" });

    // ---- data ----
    let params_addr = b.alloc_u64s("params", &[Q, barrett as u64, n_inv]);
    let fwd_tw_addr = b.alloc_u64s("fwd_twiddles", &fwd_tw);
    let inv_tw_addr = b.alloc_u64s("inv_twiddles", &inv_tw);
    let bitrev_addr = b.alloc_u64s("bitrev", &bitrev);
    let a_addr = b.alloc_u64s("a_matrix", &a_polys);
    let s_addr = b.alloc_secret_u64s("s_vector", &s_polys);
    let e_addr = b.alloc_secret_u64s("e_vector", &e_polys);
    let fa_addr = b.alloc_zeros("fa", N * 8);
    let fb_addr = b.alloc_zeros("fb", N * 8);
    let prod_addr = b.alloc_zeros("prod", N * 8);
    let acc_addr = b.alloc_zeros("acc", N * 8);
    let scratch_addr = b.alloc_zeros("ntt_scratch", N * 8);
    let out_addr = b.alloc_zeros("t_output", k * N * 8);

    // ---- code ----
    b.begin_crypto();

    b.li(S0, 0); // i
    b.label("row_loop");
    // acc = 0
    b.li(A0, acc_addr);
    b.call("zero_poly");
    b.li(S1, 0); // j
    b.label("col_loop");
    // fa = A[i*k + j]
    b.muli(T0, S0, k as i64);
    b.add(T0, T0, S1);
    b.muli(T0, T0, POLY_BYTES as i64);
    b.li(A1, a_addr);
    b.add(A1, A1, T0);
    b.li(A0, fa_addr);
    b.call("copy_poly");
    // fb = s[j]
    b.muli(T0, S1, POLY_BYTES as i64);
    b.li(A1, s_addr);
    b.add(A1, A1, T0);
    b.li(A0, fb_addr);
    b.call("copy_poly");
    // forward NTTs
    b.li(A0, fa_addr);
    b.li(A1, fwd_tw_addr);
    b.call("ntt");
    b.li(A0, fb_addr);
    b.li(A1, fwd_tw_addr);
    b.call("ntt");
    // pointwise product into prod
    b.call("pointwise");
    // inverse NTT of prod
    b.li(A0, prod_addr);
    b.li(A1, inv_tw_addr);
    b.call("ntt");
    b.call("scale_prod");
    // acc += prod
    b.li(A0, acc_addr);
    b.li(A1, prod_addr);
    b.call("add_into");
    b.addi(S1, S1, 1);
    b.li(T0, k as u64);
    b.bne(S1, T0, "col_loop");
    // acc += e[i]
    b.muli(T0, S0, POLY_BYTES as i64);
    b.li(A1, e_addr);
    b.add(A1, A1, T0);
    b.li(A0, acc_addr);
    b.call("add_into");
    // out[i] = acc
    b.muli(T0, S0, POLY_BYTES as i64);
    b.li(A0, out_addr);
    b.add(A0, A0, T0);
    b.li(A1, acc_addr);
    b.call("copy_poly");
    b.addi(S0, S0, 1);
    b.li(T0, k as u64);
    b.bne(S0, T0, "row_loop");
    b.j("done");

    // zero_poly(A0 = dst)
    b.func("zero_poly");
    b.li(T0, 0);
    b.li(T1, N as u64);
    b.label("zero_loop");
    b.sd(ZERO, A0, 0);
    b.addi(A0, A0, 8);
    b.addi(T0, T0, 1);
    b.bne(T0, T1, "zero_loop");
    b.ret();

    // copy_poly(A0 = dst, A1 = src)
    b.func("copy_poly");
    b.li(T0, 0);
    b.li(T1, N as u64);
    b.label("copy_poly_loop");
    b.ld(T2, A1, 0);
    b.sd(T2, A0, 0);
    b.addi(A0, A0, 8);
    b.addi(A1, A1, 8);
    b.addi(T0, T0, 1);
    b.bne(T0, T1, "copy_poly_loop");
    b.ret();

    // add_into(A0 = dst, A1 = src): dst[i] = (dst[i] + src[i]) mod q
    b.func("add_into");
    b.li(T0, 0);
    b.li(T1, N as u64);
    b.li(T4, Q);
    b.label("add_into_loop");
    b.ld(T2, A0, 0);
    b.ld(T3, A1, 0);
    b.add(T2, T2, T3);
    // conditional subtract q
    b.sltu(T3, T2, T4);
    b.xori(T3, T3, 1);
    b.sub(T3, ZERO, T3);
    b.and(T3, T3, T4);
    b.sub(T2, T2, T3);
    b.sd(T2, A0, 0);
    b.addi(A0, A0, 8);
    b.addi(A1, A1, 8);
    b.addi(T0, T0, 1);
    b.bne(T0, T1, "add_into_loop");
    b.ret();

    // pointwise: prod[i] = fa[i] * fb[i] mod q
    b.func("pointwise");
    b.li(S10, fa_addr);
    b.li(S11, fb_addr);
    b.li(S9, prod_addr);
    b.li(S8, 0);
    b.label("pointwise_loop");
    b.ld(A0, S10, 0);
    b.ld(A1, S11, 0);
    b.call("mulq");
    b.sd(A0, S9, 0);
    b.addi(S10, S10, 8);
    b.addi(S11, S11, 8);
    b.addi(S9, S9, 8);
    b.addi(S8, S8, 1);
    b.li(T0, N as u64);
    b.bne(S8, T0, "pointwise_loop");
    b.ret();

    // scale_prod: prod[i] = prod[i] * n_inv mod q (completes the inverse NTT)
    b.func("scale_prod");
    b.li(S10, prod_addr);
    b.li(S8, 0);
    b.label("scale_loop");
    b.ld(A0, S10, 0);
    b.li(T0, params_addr);
    b.ld(A1, T0, 16);
    b.call("mulq");
    b.sd(A0, S10, 0);
    b.addi(S10, S10, 8);
    b.addi(S8, S8, 1);
    b.li(T0, N as u64);
    b.bne(S8, T0, "scale_loop");
    b.ret();

    // mulq: A0 = A0 * A1 mod q via Barrett reduction.
    b.func("mulq");
    b.mul(T1, A0, A1);
    b.li(T0, params_addr);
    b.ld(T2, T0, 8); // barrett constant
    b.ld(T3, T0, 0); // q
    b.mul(T0, T1, T2);
    b.srli(T0, T0, 40);
    b.mul(T0, T0, T3);
    b.sub(T1, T1, T0);
    // two conditional subtractions
    for _ in 0..2 {
        b.sltu(T0, T1, T3);
        b.xori(T0, T0, 1);
        b.sub(T0, ZERO, T0);
        b.and(T0, T0, T3);
        b.sub(T1, T1, T0);
    }
    b.mv(A0, T1);
    b.ret();

    // ntt(A0 = poly, A1 = twiddles): in-place iterative NTT.
    b.func("ntt");
    b.mv(S2, A0); // poly base
    b.mv(S3, A1); // twiddle base

    // Bit-reversal permutation via scratch copy.
    b.mv(A1, S2);
    b.li(A0, scratch_addr);
    b.call("copy_poly");
    b.li(T0, 0);
    b.li(T1, N as u64);
    b.li(T2, bitrev_addr);
    b.mv(T3, S2);
    b.label("bitrev_loop");
    b.ld(T4, T2, 0); // j = bitrev[i]
    b.slli(T4, T4, 3);
    b.li(A0, scratch_addr);
    b.add(T4, T4, A0);
    b.ld(T4, T4, 0); // scratch[j]
    b.sd(T4, T3, 0);
    b.addi(T3, T3, 8);
    b.addi(T2, T2, 8);
    b.addi(T0, T0, 1);
    b.bne(T0, T1, "bitrev_loop");
    // Butterfly levels: len = 2, 4, ..., N. The twiddle stride `step = N / len`
    // is kept in S9: it starts at N/2 and is halved after each level.
    b.li(S4, 2); // len
    b.li(S9, (N / 2) as u64); // step
    b.label("len_loop");
    b.li(S5, 0); // start
    b.label("start_loop");
    b.li(S6, 0); // k within the block
    b.label("butterfly_loop");
    // step = N / len is maintained in S9 (initialised before the level loop,
    // halved at the end of each level).
    // w = tw[k * step]
    b.mul(T0, S6, S9);
    b.slli(T0, T0, 3);
    b.add(T0, T0, S3);
    b.ld(A1, T0, 0);
    // v = poly[start + k + len/2] * w
    b.srli(T2, S4, 1); // len/2
    b.add(T3, S5, S6);
    b.add(T4, T3, T2); // index of the high element
    b.slli(T4, T4, 3);
    b.add(T4, T4, S2);
    b.ld(A0, T4, 0);
    b.mv(S7, T4); // remember the high element address
    b.call("mulq");
    // u = poly[start + k]
    b.add(T3, S5, S6);
    b.slli(T3, T3, 3);
    b.add(T3, T3, S2);
    b.ld(T1, T3, 0);
    // poly[start+k] = (u + v) mod q ; poly[high] = (u + q - v) mod q
    b.li(T4, Q);
    b.add(T2, T1, A0);
    b.sltu(T0, T2, T4);
    b.xori(T0, T0, 1);
    b.sub(T0, ZERO, T0);
    b.and(T0, T0, T4);
    b.sub(T2, T2, T0);
    b.sd(T2, T3, 0);
    b.sub(T2, T4, A0);
    b.add(T2, T1, T2);
    b.sltu(T0, T2, T4);
    b.xori(T0, T0, 1);
    b.sub(T0, ZERO, T0);
    b.and(T0, T0, T4);
    b.sub(T2, T2, T0);
    b.sd(T2, S7, 0);
    // k++
    b.addi(S6, S6, 1);
    b.srli(T2, S4, 1);
    b.bne(S6, T2, "butterfly_loop");
    // start += len
    b.add(S5, S5, S4);
    b.li(T0, N as u64);
    b.bne(S5, T0, "start_loop");
    // len *= 2 ; step /= 2
    b.slli(S4, S4, 1);
    b.srli(S9, S9, 1);
    b.li(T0, (2 * N) as u64);
    b.bne(S4, T0, "len_loop");
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("kyber kernel assembles");
    KernelProgram::new(program, out_addr, k * N * 8)
}

/// Parses the kernel output buffer into `k` polynomials.
pub fn output_to_polys(output: &[u8], k: usize) -> Vec<Vec<u64>> {
    output
        .chunks_exact(N * 8)
        .take(k)
        .map(|poly_bytes| {
            poly_bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kyber512_matches_reference() {
        let kernel = build(2, 99);
        let out = kernel.run_functional().unwrap();
        let polys = output_to_polys(&out, 2);
        assert_eq!(polys, reference::matrix_vector_product(2, 99));
    }

    #[test]
    fn kyber768_matches_reference() {
        let kernel = build(3, 7);
        let out = kernel.run_functional().unwrap();
        let polys = output_to_polys(&out, 3);
        assert_eq!(polys, reference::matrix_vector_product(3, 7));
    }

    #[test]
    #[should_panic(expected = "module rank")]
    fn rejects_unsupported_rank() {
        build(4, 0);
    }
}
