//! SHA-256 as an ISA kernel.
//!
//! Mirrors [`crate::reference::sha256`]: an outer block loop, a 16-iteration
//! message-load loop, a 48-iteration schedule-extension loop, a 64-iteration
//! compression loop and an 8-step state-update — all with public trip counts,
//! as in the paper's `SHA-256` / `sha256` workloads.
//!
//! The message is padded on the host (padding depends only on the public
//! message length) and stored as 32-bit words with big-endian byte order
//! already applied, so the kernel's word loads see the same values as the
//! reference.

use crate::kernel::emit::{rotr32_imm, MASK32};
use crate::kernel::KernelProgram;
use crate::reference::sha256 as reference;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{
    A0, A1, A2, A3, S0, S1, S10, S11, S2, S3, S4, S5, S6, S7, S8, S9, T0, T1, T2, T3, T4, T5, T6,
};

/// Builds the SHA-256 kernel for the given message.
pub fn build(message: &[u8]) -> KernelProgram {
    let padded = reference::pad(message);
    let nblocks = padded.len() / 64;
    let msg_words: Vec<u32> = padded
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect();

    let mut b = ProgramBuilder::new("sha256");

    // ---- data ----
    let msg_addr = b.alloc_secret_u32s("msg_words", &msg_words);
    let k_addr = b.alloc_u32s("k_table", &reference::K);
    let h_addr = b.alloc_u32s("h_state", &reference::H0);
    let w_addr = b.alloc_zeros("w_schedule", 64 * 4);
    let out_addr = b.alloc_zeros("digest", 32);

    // ---- code ----
    b.begin_crypto();

    b.li(S0, nblocks as u64);
    b.li(S1, 0); // block index
    b.li(S2, msg_addr); // pointer to the current block's words
    b.label("block_loop");
    b.call("schedule");
    b.call("compress");
    b.addi(S1, S1, 1);
    b.addi(S2, S2, 64);
    b.bne(S1, S0, "block_loop");
    // Write the final state to the output buffer.
    b.li(A0, h_addr);
    b.li(A1, out_addr);
    b.li(T0, 0);
    b.li(T2, 8);
    b.label("out_loop");
    b.lw(T1, A0, 0);
    b.sw(T1, A1, 0);
    b.addi(A0, A0, 4);
    b.addi(A1, A1, 4);
    b.addi(T0, T0, 1);
    b.bne(T0, T2, "out_loop");
    b.j("done");

    // schedule: builds W[0..64] for the block at S2.
    b.func("schedule");
    b.mv(A0, S2);
    b.li(A1, w_addr);
    b.li(T0, 0);
    b.li(T2, 16);
    b.label("w_copy_loop");
    b.lw(T1, A0, 0);
    b.sw(T1, A1, 0);
    b.addi(A0, A0, 4);
    b.addi(A1, A1, 4);
    b.addi(T0, T0, 1);
    b.bne(T0, T2, "w_copy_loop");
    // A1 now points at W[16].
    b.li(T0, 16);
    b.li(T2, 64);
    b.label("w_ext_loop");
    // s0 = rotr(W[i-15], 7) ^ rotr(W[i-15], 18) ^ (W[i-15] >> 3)
    b.lw(T1, A1, -60);
    rotr32_imm(&mut b, T3, T1, 7, T4);
    rotr32_imm(&mut b, T5, T1, 18, T4);
    b.xor(T3, T3, T5);
    b.srli(T5, T1, 3);
    b.xor(T3, T3, T5);
    // s1 = rotr(W[i-2], 17) ^ rotr(W[i-2], 19) ^ (W[i-2] >> 10)
    b.lw(T1, A1, -8);
    rotr32_imm(&mut b, T6, T1, 17, T4);
    rotr32_imm(&mut b, T5, T1, 19, T4);
    b.xor(T6, T6, T5);
    b.srli(T5, T1, 10);
    b.xor(T6, T6, T5);
    // W[i] = W[i-16] + s0 + W[i-7] + s1
    b.lw(T1, A1, -64);
    b.add(T3, T3, T1);
    b.lw(T1, A1, -28);
    b.add(T3, T3, T1);
    b.add(T3, T3, T6);
    b.andi(T3, T3, MASK32);
    b.sw(T3, A1, 0);
    b.addi(A1, A1, 4);
    b.addi(T0, T0, 1);
    b.bne(T0, T2, "w_ext_loop");
    b.ret();

    // compress: 64 rounds updating the running state in `h_state`.
    b.func("compress");
    b.li(A0, h_addr);
    b.lw(S4, A0, 0); // a
    b.lw(S5, A0, 4); // b
    b.lw(S6, A0, 8); // c
    b.lw(S7, A0, 12); // d
    b.lw(S8, A0, 16); // e
    b.lw(S9, A0, 20); // f
    b.lw(S10, A0, 24); // g
    b.lw(S11, A0, 28); // h
    b.li(S3, 0); // round counter
    b.label("round_loop");
    // Load W[i] and K[i].
    b.slli(T0, S3, 2);
    b.li(A0, w_addr);
    b.add(A0, A0, T0);
    b.lw(T1, A0, 0); // W[i]
    b.li(A1, k_addr);
    b.add(A1, A1, T0);
    b.lw(T2, A1, 0); // K[i]

    // S1 = rotr(e,6) ^ rotr(e,11) ^ rotr(e,25)
    rotr32_imm(&mut b, T3, S8, 6, T4);
    rotr32_imm(&mut b, T5, S8, 11, T4);
    b.xor(T3, T3, T5);
    rotr32_imm(&mut b, T5, S8, 25, T4);
    b.xor(T3, T3, T5);
    // ch = (e & f) ^ (!e & g)
    b.and(T5, S8, S9);
    b.xori(T6, S8, -1);
    b.andi(T6, T6, MASK32);
    b.and(T6, T6, S10);
    b.xor(T5, T5, T6);
    // t1 = h + S1 + ch + K[i] + W[i]
    b.add(A2, S11, T3);
    b.add(A2, A2, T5);
    b.add(A2, A2, T2);
    b.add(A2, A2, T1);
    b.andi(A2, A2, MASK32);
    // S0 = rotr(a,2) ^ rotr(a,13) ^ rotr(a,22)
    rotr32_imm(&mut b, T3, S4, 2, T4);
    rotr32_imm(&mut b, T5, S4, 13, T4);
    b.xor(T3, T3, T5);
    rotr32_imm(&mut b, T5, S4, 22, T4);
    b.xor(T3, T3, T5);
    // maj = (a & b) ^ (a & c) ^ (b & c)
    b.and(T5, S4, S5);
    b.and(T6, S4, S6);
    b.xor(T5, T5, T6);
    b.and(T6, S5, S6);
    b.xor(T5, T5, T6);
    // t2 = S0 + maj
    b.add(A3, T3, T5);
    b.andi(A3, A3, MASK32);
    // Rotate the working variables.
    b.mv(S11, S10);
    b.mv(S10, S9);
    b.mv(S9, S8);
    b.add(S8, S7, A2);
    b.andi(S8, S8, MASK32);
    b.mv(S7, S6);
    b.mv(S6, S5);
    b.mv(S5, S4);
    b.add(S4, A2, A3);
    b.andi(S4, S4, MASK32);
    b.addi(S3, S3, 1);
    b.li(T0, 64);
    b.bne(S3, T0, "round_loop");
    // Add the working variables back into the running state.
    b.li(A0, h_addr);
    for (offset, reg) in [
        (0, S4),
        (4, S5),
        (8, S6),
        (12, S7),
        (16, S8),
        (20, S9),
        (24, S10),
        (28, S11),
    ] {
        b.lw(T0, A0, offset);
        b.add(T0, T0, reg);
        b.andi(T0, T0, MASK32);
        b.sw(T0, A0, offset);
    }
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("sha256 kernel assembles");
    KernelProgram::new(program, out_addr, 32)
}

/// Converts the kernel's output buffer (eight little-endian state words) into
/// the conventional big-endian digest byte order used by the reference.
pub fn output_to_digest(output: &[u8]) -> [u8; 32] {
    assert_eq!(output.len(), 32);
    let mut digest = [0u8; 32];
    for i in 0..8 {
        let word = u32::from_le_bytes(output[4 * i..4 * i + 4].try_into().unwrap());
        digest[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_single_block() {
        let msg = b"abc";
        let kernel = build(msg);
        let out = kernel.run_functional().unwrap();
        assert_eq!(output_to_digest(&out), reference::digest(msg));
    }

    #[test]
    fn matches_reference_multi_block() {
        let msg: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let kernel = build(&msg);
        let out = kernel.run_functional().unwrap();
        assert_eq!(output_to_digest(&out), reference::digest(&msg));
    }

    #[test]
    fn empty_message() {
        let kernel = build(b"");
        let out = kernel.run_functional().unwrap();
        assert_eq!(output_to_digest(&out), reference::digest(b""));
    }

    #[test]
    fn kernel_branches_are_crypto_tagged() {
        let kernel = build(b"hello");
        let branches = kernel.program.static_branches();
        assert!(branches.iter().all(|br| br.is_crypto));
        assert!(branches.len() >= 6, "loops, calls and returns expected");
    }
}
