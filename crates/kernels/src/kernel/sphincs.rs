//! SPHINCS+-shaped hash-based signature arithmetic as an ISA kernel (see
//! [`crate::reference::wots`]).
//!
//! The kernel computes the Merkle root over the WOTS public keys of all
//! leaves: a leaf loop, per-leaf chain loops, per-chain hash-step loops and a
//! final tree-reduction loop — the deeply nested, call-heavy control flow
//! that makes `sphincs-*-128s` the largest traces in the paper's Table 1.

use crate::kernel::KernelProgram;
use crate::reference::wots::{self, WotsParams};
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{
    A0, A1, S0, S1, S10, S11, S2, S3, S4, S5, S6, S7, S8, S9, T0, T1, T2, T3, T4, T6,
};

/// Builds the SPHINCS-shaped kernel computing the Merkle root for `seed`
/// under the given parameters. The output is the 32-byte root.
pub fn build(seed: &[u64; 4], params: &WotsParams) -> KernelProgram {
    assert!(params.chains > 0 && params.chain_len > 0 && params.tree_height > 0);
    let leaves = params.leaves();

    let mut b = ProgramBuilder::new("sphincs");

    // ---- data ----
    let seed_addr = b.alloc_secret_u64s("seed", seed);
    // Hash working state (input copy + current state).
    let hin_addr = b.alloc_zeros("hash_input", 32);
    let hstate_addr = b.alloc_zeros("hash_state", 32);
    // Chain / accumulator state.
    let chain_addr = b.alloc_zeros("chain_state", 32);
    let acc_addr = b.alloc_zeros("wots_acc", 32);
    // Merkle level buffer: `leaves` nodes of 32 bytes.
    let level_addr = b.alloc_zeros("merkle_level", leaves * 32);
    let out_addr = b.alloc_zeros("root", 32);

    // ---- code ----
    b.begin_crypto();

    // Phase 1: compute the WOTS public key of every leaf into the level buffer.
    b.li(S0, 0); // leaf index
    b.label("leaf_loop");
    // acc = 0
    b.li(T0, acc_addr);
    for off in [0i64, 8, 16, 24] {
        b.sd(cassandra_isa::reg::ZERO, T0, off);
    }
    b.li(S1, 0); // chain index
    b.label("chain_outer_loop");
    // chain_state = h256(seed, ((leaf << 16) | chain) ^ 0xa5a50000)
    b.li(T0, seed_addr);
    b.li(T1, chain_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T2, T0, off);
        b.sd(T2, T1, off);
    }
    b.slli(A1, S0, 16);
    b.or(A1, A1, S1);
    b.li(T0, 0xa5a5_0000);
    b.xor(A1, A1, T0);
    b.li(A0, chain_addr);
    b.call("h256");
    // Apply the chain function `chain_len` times with tweak = step index.
    b.li(S2, 0); // step
    b.label("chain_step_loop");
    b.li(A0, chain_addr);
    b.mv(A1, S2);
    b.call("h256");
    b.addi(S2, S2, 1);
    b.li(T0, params.chain_len as u64);
    b.bne(S2, T0, "chain_step_loop");
    // acc = h256(acc ^ chain_end, chain ^ 0x5a5a0000)
    b.li(T0, acc_addr);
    b.li(T1, chain_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T2, T0, off);
        b.ld(T3, T1, off);
        b.xor(T2, T2, T3);
        b.sd(T2, T0, off);
    }
    b.li(T0, 0x5a5a_0000);
    b.xor(A1, S1, T0);
    b.li(A0, acc_addr);
    b.call("h256");
    b.addi(S1, S1, 1);
    b.li(T0, params.chains as u64);
    b.bne(S1, T0, "chain_outer_loop");
    // level[leaf] = acc
    b.slli(T0, S0, 5);
    b.li(T1, level_addr);
    b.add(T1, T1, T0);
    b.li(T0, acc_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T2, T0, off);
        b.sd(T2, T1, off);
    }
    b.addi(S0, S0, 1);
    b.li(T0, leaves as u64);
    b.bne(S0, T0, "leaf_loop");

    // Phase 2: Merkle tree reduction. S3 = current level size, S4 = height.
    b.li(S3, leaves as u64);
    b.li(S4, 0);
    b.label("tree_loop");
    b.li(S5, 0); // output node index
    b.label("pair_loop");
    // combined = level[2i] ^ level[2i+1], stored into acc
    b.slli(T0, S5, 6); // 2i * 32
    b.li(T1, level_addr);
    b.add(T1, T1, T0);
    b.li(T2, acc_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T3, T1, off);
        b.ld(T4, T1, off + 32);
        b.xor(T3, T3, T4);
        b.sd(T3, T2, off);
    }
    // acc = h256(acc, 0xc0de0000 ^ height)
    b.li(T0, 0xc0de_0000);
    b.xor(A1, S4, T0);
    b.li(A0, acc_addr);
    b.call("h256");
    // level[i] = acc
    b.slli(T0, S5, 5);
    b.li(T1, level_addr);
    b.add(T1, T1, T0);
    b.li(T2, acc_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T3, T2, off);
        b.sd(T3, T1, off);
    }
    b.addi(S5, S5, 1);
    b.srli(T0, S3, 1);
    b.bne(S5, T0, "pair_loop");
    b.srli(S3, S3, 1);
    b.addi(S4, S4, 1);
    b.li(T0, 1);
    b.bne(S3, T0, "tree_loop");
    // root = level[0]
    b.li(T0, level_addr);
    b.li(T1, out_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T2, T0, off);
        b.sd(T2, T1, off);
    }
    b.j("done");

    // h256(A0 = state address, A1 = tweak): in-place keyed permutation with
    // feed-forward, mirroring `reference::wots::h256`. Uses only S6-S11 and
    // temporaries so it never clobbers the loop counters of its callers
    // (which live in S0-S5).
    b.func("h256");
    // Copy the input for the feed-forward and apply the tweak to word 0.
    b.mv(S6, A0); // state address
    b.mv(S11, A1); // tweak
    b.li(T0, hin_addr);
    for off in [0i64, 8, 16, 24] {
        b.ld(T1, S6, off);
        b.sd(T1, T0, off);
    }
    b.ld(S7, S6, 0);
    b.xor(S7, S7, S11);
    b.ld(S8, S6, 8);
    b.ld(S9, S6, 16);
    b.ld(S10, S6, 24);
    // 12 ARX rounds; round constant = r * GOLDEN ^ tweak.
    b.li(T6, 0);
    b.label("h256_round_loop");
    b.li(T0, 0x9e37_79b9_7f4a_7c15);
    b.mul(T1, T6, T0);
    b.xor(T1, T1, S11); // round constant

    // state[0] += state[1]; state[3] ^= state[0]; state[3] = rotl 32
    b.add(S7, S7, S8);
    b.xor(S10, S10, S7);
    b.rotli(S10, S10, 32);
    // state[2] += state[3]; state[1] ^= state[2]; state[1] = rotl 24
    b.add(S9, S9, S10);
    b.xor(S8, S8, S9);
    b.rotli(S8, S8, 24);
    // state[0] += state[1] + rc; state[3] ^= state[0]; state[3] = rotl 16
    b.add(S7, S7, S8);
    b.add(S7, S7, T1);
    b.xor(S10, S10, S7);
    b.rotli(S10, S10, 16);
    // state[2] += state[3]; state[1] ^= state[2]; state[1] = rotl 63
    b.add(S9, S9, S10);
    b.xor(S8, S8, S9);
    b.rotli(S8, S8, 63);
    b.addi(T6, T6, 1);
    b.li(T0, wots::HASH_ROUNDS as u64);
    b.bne(T6, T0, "h256_round_loop");
    // Feed-forward and write back.
    b.li(T0, hin_addr);
    b.ld(T1, T0, 0);
    b.add(S7, S7, T1);
    b.ld(T1, T0, 8);
    b.add(S8, S8, T1);
    b.ld(T1, T0, 16);
    b.add(S9, S9, T1);
    b.ld(T1, T0, 24);
    b.add(S10, S10, T1);
    b.sd(S7, S6, 0);
    b.sd(S8, S6, 8);
    b.sd(S9, S6, 16);
    b.sd(S10, S6, 24);
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    // The hash-state scratch is only used inside h256 via registers; silence
    // the otherwise-unused allocation (kept for layout stability).
    let _ = hstate_addr;

    let program = b.build().expect("sphincs kernel assembles");
    KernelProgram::new(program, out_addr, 32)
}

/// Parses the kernel output into a 4-word hash state.
pub fn output_to_state(output: &[u8]) -> [u64; 4] {
    let mut s = [0u64; 4];
    for (i, chunk) in output.chunks_exact(8).take(4).enumerate() {
        s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_small_params() {
        let params = WotsParams::small();
        let seed = [1u64, 2, 3, 4];
        let kernel = build(&seed, &params);
        let out = kernel.run_functional().unwrap();
        assert_eq!(output_to_state(&out), wots::merkle_root(&seed, &params));
    }

    #[test]
    fn matches_reference_larger_tree() {
        let params = WotsParams {
            chains: 4,
            chain_len: 3,
            tree_height: 4,
        };
        let seed = [0xdead, 0xbeef, 0xcafe, 0xf00d];
        let kernel = build(&seed, &params);
        let out = kernel.run_functional().unwrap();
        assert_eq!(output_to_state(&out), wots::merkle_root(&seed, &params));
    }

    #[test]
    fn different_seeds_give_different_roots() {
        let params = WotsParams::small();
        let k1 = build(&[1, 1, 1, 1], &params);
        let k2 = build(&[1, 1, 1, 2], &params);
        assert_ne!(k1.run_functional().unwrap(), k2.run_functional().unwrap());
    }
}
