//! Poly1305 one-time authenticator as an ISA kernel (see
//! [`crate::reference::poly1305`]).
//!
//! The kernel processes the message in 16-byte blocks with a public trip
//! count, calling a constant-time 5×26-bit limb multiplication routine per
//! block — the same structure as BearSSL's `Poly1305_ctmul`.
//!
//! The clamped `r` limbs and the `s` half of the key are prepared on the host
//! (clamping is key-dependent but branch-free); the per-block accumulation
//! and the full polynomial evaluation run in the kernel.

use crate::kernel::KernelProgram;
use crate::reference::poly1305 as reference;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{
    A0, A1, A2, A3, A4, A5, A6, A7, S0, S1, S10, S11, S2, S4, S5, S6, S7, S8, S9, T0, T1, T2, T3,
    T4, T5, T6, ZERO,
};

const LIMB_MASK: i64 = 0x3ff_ffff;

/// Builds the Poly1305 kernel computing the tag of `message` under `key`.
///
/// # Panics
///
/// Panics if the message length is not a positive multiple of 16 (partial
/// blocks would add an input-length-dependent tail without changing the
/// branch structure, so the workloads avoid them).
pub fn build(key: &[u8; 32], message: &[u8]) -> KernelProgram {
    assert!(
        !message.is_empty() && message.len().is_multiple_of(16),
        "message length must be a positive multiple of 16"
    );
    let nblocks = message.len() / 16;

    let mut r_bytes: [u8; 16] = key[..16].try_into().unwrap();
    reference::clamp(&mut r_bytes);
    let r = reference::to_limbs(&r_bytes);
    let s_lo = u64::from_le_bytes(key[16..24].try_into().unwrap());
    let s_hi = u64::from_le_bytes(key[24..32].try_into().unwrap());

    let mut b = ProgramBuilder::new("poly1305");

    // ---- data ----
    let r_addr = b.alloc_secret_u64s("r_limbs", &r);
    let s_addr = b.alloc_secret_u64s("s_key", &[s_lo, s_hi]);
    let h_addr = b.alloc_zeros("h_limbs", 40);
    let d_addr = b.alloc_zeros("d_scratch", 40);
    let msg_addr = b.alloc_secret_bytes("message", message);
    let out_addr = b.alloc_zeros("tag", 16);

    // ---- code ----
    b.begin_crypto();

    b.li(S0, nblocks as u64);
    b.li(S1, 0); // block index
    b.li(S2, msg_addr);
    b.label("block_loop");
    b.call("absorb_block");
    b.call("poly_mul");
    b.addi(S1, S1, 1);
    b.addi(S2, S2, 16);
    b.bne(S1, S0, "block_loop");
    b.call("finalize");
    b.j("done");

    // absorb_block: h += block limbs (with the 2^128 bit set).
    b.func("absorb_block");
    b.ld(T0, S2, 0); // lo
    b.ld(T1, S2, 8); // hi
    b.li(A5, h_addr);
    // c0 = lo & mask
    b.andi(T2, T0, LIMB_MASK);
    b.ld(T3, A5, 0);
    b.add(T3, T3, T2);
    b.sd(T3, A5, 0);
    // c1 = (lo >> 26) & mask
    b.srli(T2, T0, 26);
    b.andi(T2, T2, LIMB_MASK);
    b.ld(T3, A5, 8);
    b.add(T3, T3, T2);
    b.sd(T3, A5, 8);
    // c2 = ((lo >> 52) | (hi << 12)) & mask
    b.srli(T2, T0, 52);
    b.slli(T4, T1, 12);
    b.or(T2, T2, T4);
    b.andi(T2, T2, LIMB_MASK);
    b.ld(T3, A5, 16);
    b.add(T3, T3, T2);
    b.sd(T3, A5, 16);
    // c3 = (hi >> 14) & mask
    b.srli(T2, T1, 14);
    b.andi(T2, T2, LIMB_MASK);
    b.ld(T3, A5, 24);
    b.add(T3, T3, T2);
    b.sd(T3, A5, 24);
    // c4 = (hi >> 40) | 2^24  (the full-block high bit)
    b.srli(T2, T1, 40);
    b.li(T4, 1 << 24);
    b.or(T2, T2, T4);
    b.ld(T3, A5, 32);
    b.add(T3, T3, T2);
    b.sd(T3, A5, 32);
    b.ret();

    // poly_mul: h = h * r mod 2^130 - 5 (partially reduced limbs).
    b.func("poly_mul");
    // Load h limbs into A0..A4 and r limbs into S4..S8.
    b.li(T6, h_addr);
    b.ld(A0, T6, 0);
    b.ld(A1, T6, 8);
    b.ld(A2, T6, 16);
    b.ld(A3, T6, 24);
    b.ld(A4, T6, 32);
    b.li(T6, r_addr);
    b.ld(S4, T6, 0);
    b.ld(S5, T6, 8);
    b.ld(S6, T6, 16);
    b.ld(S7, T6, 24);
    b.ld(S8, T6, 32);
    // For each output limb k: d[k] = Σ_{i+j=k} h_i r_j + 5 Σ_{i+j=k+5} h_i r_j.
    // The (i, j) pairs are generated on the host; the emitted code is a flat
    // sequence of multiply/accumulate instructions.
    let h_regs = [A0, A1, A2, A3, A4];
    let r_regs = [S4, S5, S6, S7, S8];
    b.li(A6, d_addr);
    for k in 0..5usize {
        // Direct terms into T0, folded (×5) terms into T2.
        b.li(T0, 0);
        b.li(T2, 0);
        // Index arithmetic (i + j vs k) is the convolution structure itself,
        // so plain index loops read clearer than iterator adapters here.
        #[allow(clippy::needless_range_loop)]
        for i in 0..5usize {
            #[allow(clippy::needless_range_loop)]
            for j in 0..5usize {
                if i + j == k {
                    b.mul(T1, h_regs[i], r_regs[j]);
                    b.add(T0, T0, T1);
                } else if i + j == k + 5 {
                    b.mul(T1, h_regs[i], r_regs[j]);
                    b.add(T2, T2, T1);
                }
            }
        }
        // T0 += 5 * T2
        b.slli(T1, T2, 2);
        b.add(T2, T2, T1);
        b.add(T0, T0, T2);
        b.sd(T0, A6, (k * 8) as i64);
    }
    // Carry propagation: h[k] = d[k] + carry (mask 26 bits), carry chains up.
    b.li(A6, d_addr);
    b.li(A7, h_addr);
    b.li(T2, 0); // carry
    for k in 0..5i64 {
        b.ld(T0, A6, k * 8);
        b.add(T0, T0, T2);
        b.andi(T1, T0, LIMB_MASK);
        b.sd(T1, A7, k * 8);
        b.srli(T2, T0, 26);
    }
    // Fold the final carry back: c = carry * 5; h0 += c; propagate one limb.
    b.slli(T0, T2, 2);
    b.add(T2, T2, T0);
    b.ld(T0, A7, 0);
    b.add(T0, T0, T2);
    b.andi(T1, T0, LIMB_MASK);
    b.sd(T1, A7, 0);
    b.srli(T2, T0, 26);
    b.ld(T0, A7, 8);
    b.add(T0, T0, T2);
    b.sd(T0, A7, 8);
    b.ret();

    // finalize: full reduction of h modulo 2^130-5, then tag = (h + s) mod 2^128.
    b.func("finalize");
    b.li(A7, h_addr);
    // First full carry pass.
    b.li(T2, 0);
    for k in 0..5i64 {
        b.ld(T0, A7, k * 8);
        b.add(T0, T0, T2);
        b.andi(T1, T0, LIMB_MASK);
        b.sd(T1, A7, k * 8);
        b.srli(T2, T0, 26);
    }
    // Fold carry*5 and do a second pass.
    b.slli(T0, T2, 2);
    b.add(T2, T2, T0);
    for k in 0..5i64 {
        b.ld(T0, A7, k * 8);
        b.add(T0, T0, T2);
        b.andi(T1, T0, LIMB_MASK);
        b.sd(T1, A7, k * 8);
        b.srli(T2, T0, 26);
    }
    // g = h + 5 (carry-propagated); select g if the addition carried out of
    // 130 bits (i.e. h >= p), otherwise keep h. The select is a masked move.
    b.li(A6, d_addr); // reuse the scratch area for g
    b.li(T2, 5);
    for k in 0..5i64 {
        b.ld(T0, A7, k * 8);
        b.add(T0, T0, T2);
        b.andi(T1, T0, LIMB_MASK);
        b.sd(T1, A6, k * 8);
        b.srli(T2, T0, 26);
    }
    // mask = -(carry > 0)
    b.sltu(T3, ZERO, T2);
    b.sub(T3, ZERO, T3);
    for k in 0..5i64 {
        b.ld(T0, A7, k * 8);
        b.ld(T1, A6, k * 8);
        b.xor(T4, T0, T1);
        b.and(T4, T4, T3);
        b.xor(T0, T0, T4);
        b.sd(T0, A7, k * 8);
    }
    // Assemble the 128-bit value: lo = h0 | h1<<26 | h2<<52, hi = h2>>12 | h3<<14 | h4<<40.
    b.ld(S9, A7, 0);
    b.ld(S10, A7, 8);
    b.ld(S11, A7, 16);
    b.ld(T5, A7, 24);
    b.ld(T6, A7, 32);
    b.slli(T0, S10, 26);
    b.or(S9, S9, T0);
    b.slli(T0, S11, 52);
    b.or(S9, S9, T0); // lo
    b.srli(T1, S11, 12);
    b.slli(T0, T5, 14);
    b.or(T1, T1, T0);
    b.slli(T0, T6, 40);
    b.or(T1, T1, T0); // hi

    // tag = (h + s) mod 2^128
    b.li(A5, s_addr);
    b.ld(T2, A5, 0);
    b.ld(T3, A5, 8);
    b.add(T0, S9, T2); // lo sum
    b.sltu(T4, T0, S9); // carry
    b.add(T1, T1, T3);
    b.add(T1, T1, T4);
    b.li(A5, out_addr);
    b.sd(T0, A5, 0);
    b.sd(T1, A5, 8);
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("poly1305 kernel assembles");
    KernelProgram::new(program, out_addr, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_one_block() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let msg = [0x42u8; 16];
        let kernel = build(&key, &msg);
        assert_eq!(kernel.run_functional().unwrap(), reference::tag(&key, &msg));
    }

    #[test]
    fn matches_reference_multi_block() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg: Vec<u8> = (0..160u32).map(|i| (i * 13 % 256) as u8).collect();
        let kernel = build(&key, &msg);
        assert_eq!(kernel.run_functional().unwrap(), reference::tag(&key, &msg));
    }

    #[test]
    fn matches_reference_worst_case_limbs() {
        // All-ones message and clamped all-ones key stress the carry chains.
        let key = [0xffu8; 32];
        let msg = [0xffu8; 64];
        let kernel = build(&key, &msg);
        assert_eq!(kernel.run_functional().unwrap(), reference::tag(&key, &msg));
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_partial_blocks() {
        build(&[0u8; 32], &[1, 2, 3]);
    }
}
