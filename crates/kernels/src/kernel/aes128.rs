//! AES-128 in CTR mode as an ISA kernel (see [`crate::reference::aes128`]).
//!
//! The kernel mirrors the OpenSSL/BearSSL `AES_CTR` workloads: a block loop
//! over public counter blocks, each encrypted with a 10-round loop whose body
//! calls `sub_bytes`, `shift_rows`, `mix_columns` and `add_round_key`
//! functions, followed by an XOR with the message.
//!
//! The S-box is applied through table lookups. Control flow is fully
//! input-independent (the property Cassandra relies on); data addresses in
//! `sub_bytes` depend on the state like a table-based AES implementation —
//! this kernel is used for the branch-behaviour experiments, not for the
//! memory-trace constant-time property tests (ChaCha20/modexp cover those).

use crate::kernel::KernelProgram;
use crate::reference::aes128 as reference;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{A0, A1, A2, A3, A5, A6, S0, S1, S2, S3, S4, T0, T1, T2, T3, T4, T5, T6};

/// Builds the AES-128-CTR kernel encrypting `message` (a whole number of
/// 16-byte blocks) with the given key and initial counter.
///
/// # Panics
///
/// Panics if the message length is not a positive multiple of 16.
pub fn build(key: &[u8; 16], iv: u128, message: &[u8]) -> KernelProgram {
    assert!(
        !message.is_empty() && message.len().is_multiple_of(16),
        "message length must be a positive multiple of 16"
    );
    let nblocks = message.len() / 16;

    // Host-side preparation: round keys, S-box table, ShiftRows permutation
    // and the (public) counter blocks.
    let round_keys = reference::key_expansion(key);
    let sbox = reference::sbox_table();
    let mut perm = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            perm[r + 4 * c] = (r + 4 * ((c + r) % 4)) as u8;
        }
    }
    let counter_blocks: Vec<u8> = (0..nblocks)
        .flat_map(|i| (iv.wrapping_add(i as u128)).to_be_bytes())
        .collect();

    let mut b = ProgramBuilder::new("aes128_ctr");

    // ---- data ----
    let sbox_addr = b.alloc_bytes("sbox", &sbox);
    let perm_addr = b.alloc_bytes("shift_rows_perm", &perm);
    let rk_addr = b.alloc_secret_bytes("round_keys", &round_keys);
    let ctr_addr = b.alloc_bytes("counter_blocks", &counter_blocks);
    let state_addr = b.alloc_zeros("state", 16);
    let tmp_addr = b.alloc_zeros("tmp_state", 16);
    let msg_addr = b.alloc_secret_bytes("message", message);
    let out_addr = b.alloc_zeros("ciphertext", message.len());

    // ---- code ----
    b.begin_crypto();

    b.li(S0, nblocks as u64);
    b.li(S1, 0); // block index
    b.li(S2, msg_addr);
    b.li(S3, out_addr);
    b.label("block_loop");
    // Copy counter block S1 into the state.
    b.slli(T0, S1, 4);
    b.li(T1, ctr_addr);
    b.add(T1, T1, T0);
    b.li(T2, state_addr);
    b.li(T3, 0);
    b.li(T4, 16);
    b.label("ctr_copy_loop");
    b.lb(T5, T1, 0);
    b.sb(T5, T2, 0);
    b.addi(T1, T1, 1);
    b.addi(T2, T2, 1);
    b.addi(T3, T3, 1);
    b.bne(T3, T4, "ctr_copy_loop");
    b.call("encrypt_block");
    // out = msg ^ keystream (byte loop).
    b.li(T1, state_addr);
    b.mv(T2, S2);
    b.mv(T5, S3);
    b.li(T3, 0);
    b.li(T4, 16);
    b.label("xor_loop");
    b.lb(T0, T1, 0);
    b.lb(T6, T2, 0);
    b.xor(T0, T0, T6);
    b.sb(T0, T5, 0);
    b.addi(T1, T1, 1);
    b.addi(T2, T2, 1);
    b.addi(T5, T5, 1);
    b.addi(T3, T3, 1);
    b.bne(T3, T4, "xor_loop");
    b.addi(S1, S1, 1);
    b.addi(S2, S2, 16);
    b.addi(S3, S3, 16);
    b.bne(S1, S0, "block_loop");
    b.j("done");

    // encrypt_block: AES-128 on the state in place.
    b.func("encrypt_block");
    b.li(A5, 0);
    b.call("add_round_key");
    b.li(S4, 1); // round counter
    b.label("aes_round_loop");
    b.call("sub_bytes");
    b.call("shift_rows");
    b.call("mix_columns");
    b.slli(A5, S4, 4);
    b.call("add_round_key");
    b.addi(S4, S4, 1);
    b.li(T0, 10);
    b.bne(S4, T0, "aes_round_loop");
    b.call("sub_bytes");
    b.call("shift_rows");
    b.li(A5, 160);
    b.call("add_round_key");
    b.ret();

    // add_round_key: state ^= round_keys[A5 .. A5+16].
    b.func("add_round_key");
    b.li(T1, state_addr);
    b.li(T2, rk_addr);
    b.add(T2, T2, A5);
    b.li(T3, 0);
    b.li(T4, 16);
    b.label("ark_loop");
    b.lb(T0, T1, 0);
    b.lb(T5, T2, 0);
    b.xor(T0, T0, T5);
    b.sb(T0, T1, 0);
    b.addi(T1, T1, 1);
    b.addi(T2, T2, 1);
    b.addi(T3, T3, 1);
    b.bne(T3, T4, "ark_loop");
    b.ret();

    // sub_bytes: state[i] = sbox[state[i]].
    b.func("sub_bytes");
    b.li(T1, state_addr);
    b.li(T2, sbox_addr);
    b.li(T3, 0);
    b.li(T4, 16);
    b.label("sbox_loop");
    b.lb(T0, T1, 0);
    b.add(T0, T2, T0);
    b.lb(T0, T0, 0);
    b.sb(T0, T1, 0);
    b.addi(T1, T1, 1);
    b.addi(T3, T3, 1);
    b.bne(T3, T4, "sbox_loop");
    b.ret();

    // shift_rows: state[i] = old_state[perm[i]] via a temporary copy.
    b.func("shift_rows");
    b.li(T1, state_addr);
    b.li(T2, tmp_addr);
    b.li(T3, 0);
    b.li(T4, 16);
    b.label("copy_state_loop");
    b.lb(T0, T1, 0);
    b.sb(T0, T2, 0);
    b.addi(T1, T1, 1);
    b.addi(T2, T2, 1);
    b.addi(T3, T3, 1);
    b.bne(T3, T4, "copy_state_loop");
    b.li(T1, state_addr);
    b.li(T2, tmp_addr);
    b.li(T5, perm_addr);
    b.li(T3, 0);
    b.label("perm_loop");
    b.lb(T0, T5, 0); // perm[i]
    b.add(T0, T2, T0);
    b.lb(T0, T0, 0); // tmp[perm[i]]
    b.sb(T0, T1, 0);
    b.addi(T1, T1, 1);
    b.addi(T5, T5, 1);
    b.addi(T3, T3, 1);
    b.bne(T3, T4, "perm_loop");
    b.ret();

    // mix_columns: the MDS matrix applied to each of the four columns.
    // xtime(x) = ((x << 1) ^ (0x1b & -(x >> 7))) & 0xff, emitted inline.
    b.func("mix_columns");
    b.li(A6, state_addr);
    b.li(T6, 0); // column counter
    b.label("mix_loop");
    b.lb(A0, A6, 0);
    b.lb(A1, A6, 1);
    b.lb(A2, A6, 2);
    b.lb(A3, A6, 3);
    let xtime = |b: &mut ProgramBuilder, dst, src| {
        // dst = xtime(src), clobbers T0/T1.
        b.srli(T0, src, 7);
        b.sub(T0, cassandra_isa::reg::ZERO, T0);
        b.andi(T0, T0, 0x1b);
        b.slli(T1, src, 1);
        b.xor(T1, T1, T0);
        b.andi(dst, T1, 0xff);
    };
    // new0 = x2(c0) ^ (x2(c1) ^ c1) ^ c2 ^ c3
    xtime(&mut b, T2, A0);
    xtime(&mut b, T3, A1);
    b.xor(T3, T3, A1);
    b.xor(T2, T2, T3);
    b.xor(T2, T2, A2);
    b.xor(T2, T2, A3);
    b.sb(T2, A6, 0);
    // new1 = c0 ^ x2(c1) ^ (x2(c2) ^ c2) ^ c3
    xtime(&mut b, T2, A1);
    xtime(&mut b, T3, A2);
    b.xor(T3, T3, A2);
    b.xor(T2, T2, T3);
    b.xor(T2, T2, A0);
    b.xor(T2, T2, A3);
    b.sb(T2, A6, 1);
    // new2 = c0 ^ c1 ^ x2(c2) ^ (x2(c3) ^ c3)
    xtime(&mut b, T2, A2);
    xtime(&mut b, T3, A3);
    b.xor(T3, T3, A3);
    b.xor(T2, T2, T3);
    b.xor(T2, T2, A0);
    b.xor(T2, T2, A1);
    b.sb(T2, A6, 2);
    // new3 = (x2(c0) ^ c0) ^ c1 ^ c2 ^ x2(c3)
    xtime(&mut b, T2, A0);
    b.xor(T2, T2, A0);
    xtime(&mut b, T3, A3);
    b.xor(T2, T2, T3);
    b.xor(T2, T2, A1);
    b.xor(T2, T2, A2);
    b.sb(T2, A6, 3);
    b.addi(A6, A6, 4);
    b.addi(T6, T6, 1);
    b.li(T0, 4);
    b.bne(T6, T0, "mix_loop");
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("aes128 kernel assembles");
    KernelProgram::new(program, out_addr, message.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_single_block() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let msg = [0x5au8; 16];
        let kernel = build(&key, 7, &msg);
        assert_eq!(
            kernel.run_functional().unwrap(),
            reference::encrypt_ctr(&key, 7, &msg)
        );
    }

    #[test]
    fn matches_reference_multi_block() {
        let key = [0x2bu8; 16];
        let msg: Vec<u8> = (0..96u32).map(|i| (i * 11 % 256) as u8).collect();
        let kernel = build(&key, u128::MAX - 1, &msg);
        assert_eq!(
            kernel.run_functional().unwrap(),
            reference::encrypt_ctr(&key, u128::MAX - 1, &msg)
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_partial_blocks() {
        build(&[0u8; 16], 0, &[1, 2, 3]);
    }

    #[test]
    fn branches_are_crypto_tagged() {
        let kernel = build(&[1u8; 16], 0, &[0u8; 16]);
        assert!(kernel
            .program
            .static_branches()
            .iter()
            .all(|br| br.is_crypto));
    }
}
