//! Montgomery-ladder scalar multiplication over GF(2^61 - 1) as an ISA kernel
//! (curve25519 / EC_c25519 stand-in, see [`crate::reference::field61`]).
//!
//! The kernel mirrors the X25519 structure: a fixed 255-iteration ladder loop
//! whose body performs a masked conditional swap and one xDBLADD step built
//! from calls to constant-time field primitives (`fmul`, `fadd`, `fsub`),
//! followed by a Fermat inversion with a fixed 61-iteration
//! square-and-multiply loop using masked selects.

use crate::kernel::KernelProgram;
use crate::reference::field61::{A24, P};
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{A0, A1, S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, ZERO};

/// Number of scalar bits processed by the ladder, mirroring X25519.
pub const SCALAR_BITS: usize = 255;

// Scratch slot offsets used by the ladder step.
const SC_A: i64 = 0;
const SC_B: i64 = 8;
const SC_AA: i64 = 16;
const SC_BB: i64 = 24;
const SC_E: i64 = 32;
const SC_C: i64 = 40;
const SC_D: i64 = 48;
const SC_DA: i64 = 56;
const SC_CB: i64 = 64;
const SC_T: i64 = 72;

// Ladder variable offsets: x2, z2, x3, z3.
const V_X2: i64 = 0;
const V_Z2: i64 = 8;
const V_X3: i64 = 16;
const V_Z3: i64 = 24;

/// Builds the scalar-multiplication kernel computing the affine x-coordinate
/// of `[scalar] * (x1 : 1)`.
///
/// # Panics
///
/// Panics if the scalar provides fewer than [`SCALAR_BITS`] bits or
/// `x1 >= P`.
pub fn build(x1: u64, scalar: &[u64]) -> KernelProgram {
    assert!(scalar.len() * 64 >= SCALAR_BITS, "scalar too short");
    assert!(x1 < P, "base point coordinate must be reduced");

    let mut b = ProgramBuilder::new("x25519");

    // ---- data ----
    let params_addr = b.alloc_u64s("params", &[x1, A24]);
    let scalar_addr = b.alloc_secret_u64s("scalar", scalar);
    let vars_addr = b.alloc_zeros("ladder_vars", 32);
    let scratch_addr = b.alloc_zeros("scratch", 80);
    let out_addr = b.alloc_zeros("result", 8);

    // Helper closures for addressing.
    let emit_reduce = |b: &mut ProgramBuilder| {
        // T0 holds an unreduced sum below 2^62; produce A0 = T0 mod P.
        b.li(T2, P);
        b.and(T1, T0, T2);
        b.srli(T0, T0, 61);
        b.add(T0, T1, T0);
        b.sltu(T1, T0, T2);
        b.xori(T1, T1, 1);
        b.sub(T1, ZERO, T1);
        b.and(T1, T1, T2);
        b.sub(A0, T0, T1);
    };

    // ---- code ----
    b.begin_crypto();

    // Initialise ladder variables: (x2, z2) = (1, 0), (x3, z3) = (x1, 1).
    b.li(T0, vars_addr);
    b.li(T1, 1);
    b.sd(T1, T0, V_X2);
    b.sd(ZERO, T0, V_Z2);
    b.li(T2, params_addr);
    b.ld(T3, T2, 0);
    b.sd(T3, T0, V_X3);
    b.sd(T1, T0, V_Z3);
    b.li(S1, 0); // swap accumulator
    b.li(S0, SCALAR_BITS as u64);

    b.label("ladder_loop");
    b.addi(S0, S0, -1);
    // bit = (scalar[S0 / 64] >> (S0 % 64)) & 1
    b.srli(T0, S0, 6);
    b.slli(T0, T0, 3);
    b.li(T1, scalar_addr);
    b.add(T1, T1, T0);
    b.ld(T1, T1, 0);
    b.andi(T2, S0, 63);
    b.srl(T1, T1, T2);
    b.andi(S3, T1, 1);
    // swap ^= bit; conditional swap; swap = bit.
    b.xor(S1, S1, S3);
    b.call("cswap_vars");
    b.mv(S1, S3);
    b.call("ladder_step");
    b.bne(S0, ZERO, "ladder_loop");
    // Final conditional swap.
    b.call("cswap_vars");
    // result = x2 * inv(z2)
    b.li(T0, vars_addr);
    b.ld(A0, T0, V_Z2);
    b.call("finv");
    b.mv(S2, A0);
    b.li(T0, vars_addr);
    b.ld(A0, T0, V_X2);
    b.mv(A1, S2);
    b.call("fmul");
    b.li(T0, out_addr);
    b.sd(A0, T0, 0);
    b.j("done");

    // cswap_vars: swap (x2,x3) and (z2,z3) iff S1 == 1, without branching.
    b.func("cswap_vars");
    b.sub(T3, ZERO, S1);
    b.li(T0, vars_addr);
    for (lo, hi) in [(V_X2, V_X3), (V_Z2, V_Z3)] {
        b.ld(T1, T0, lo);
        b.ld(T2, T0, hi);
        b.xor(A0, T1, T2);
        b.and(A0, A0, T3);
        b.xor(T1, T1, A0);
        b.xor(T2, T2, A0);
        b.sd(T1, T0, lo);
        b.sd(T2, T0, hi);
    }
    b.ret();

    // fmul: A0 = A0 * A1 mod P (Mersenne folding).
    b.func("fmul");
    b.mul(T0, A0, A1);
    b.mulhu(T1, A0, A1);
    b.li(T2, P);
    b.and(T3, T0, T2);
    b.srli(T0, T0, 61);
    b.slli(T1, T1, 3);
    b.add(T0, T3, T0);
    b.add(T0, T0, T1);
    emit_reduce(&mut b);
    b.ret();

    // fadd: A0 = A0 + A1 mod P.
    b.func("fadd");
    b.add(T0, A0, A1);
    emit_reduce(&mut b);
    b.ret();

    // fsub: A0 = A0 - A1 mod P.
    b.func("fsub");
    b.li(T2, P);
    b.sub(T3, T2, A1);
    b.add(T0, A0, T3);
    emit_reduce(&mut b);
    b.ret();

    // ladder_step: one xDBLADD step on the memory-held projective points.
    b.func("ladder_step");
    let vars = vars_addr;
    let scr = scratch_addr;
    // Small helpers to shorten the repetitive load/call/store pattern.
    let load2 = |b: &mut ProgramBuilder, addr_a: u64, off_a: i64, addr_b: u64, off_b: i64| {
        b.li(T0, addr_a);
        b.ld(A0, T0, off_a);
        b.li(T0, addr_b);
        b.ld(A1, T0, off_b);
    };
    let store = |b: &mut ProgramBuilder, addr: u64, off: i64| {
        b.li(T0, addr);
        b.sd(A0, T0, off);
    };
    // a = x2 + z2
    load2(&mut b, vars, V_X2, vars, V_Z2);
    b.call("fadd");
    store(&mut b, scr, SC_A);
    // b = x2 - z2
    load2(&mut b, vars, V_X2, vars, V_Z2);
    b.call("fsub");
    store(&mut b, scr, SC_B);
    // aa = a^2
    load2(&mut b, scr, SC_A, scr, SC_A);
    b.call("fmul");
    store(&mut b, scr, SC_AA);
    // bb = b^2
    load2(&mut b, scr, SC_B, scr, SC_B);
    b.call("fmul");
    store(&mut b, scr, SC_BB);
    // e = aa - bb
    load2(&mut b, scr, SC_AA, scr, SC_BB);
    b.call("fsub");
    store(&mut b, scr, SC_E);
    // c = x3 + z3
    load2(&mut b, vars, V_X3, vars, V_Z3);
    b.call("fadd");
    store(&mut b, scr, SC_C);
    // d = x3 - z3
    load2(&mut b, vars, V_X3, vars, V_Z3);
    b.call("fsub");
    store(&mut b, scr, SC_D);
    // da = d * a
    load2(&mut b, scr, SC_D, scr, SC_A);
    b.call("fmul");
    store(&mut b, scr, SC_DA);
    // cb = c * b
    load2(&mut b, scr, SC_C, scr, SC_B);
    b.call("fmul");
    store(&mut b, scr, SC_CB);
    // x3' = (da + cb)^2
    load2(&mut b, scr, SC_DA, scr, SC_CB);
    b.call("fadd");
    store(&mut b, scr, SC_T);
    load2(&mut b, scr, SC_T, scr, SC_T);
    b.call("fmul");
    store(&mut b, vars, V_X3);
    // z3' = x1 * (da - cb)^2
    load2(&mut b, scr, SC_DA, scr, SC_CB);
    b.call("fsub");
    store(&mut b, scr, SC_T);
    load2(&mut b, scr, SC_T, scr, SC_T);
    b.call("fmul");
    store(&mut b, scr, SC_T);
    b.li(T0, params_addr);
    b.ld(A0, T0, 0);
    b.li(T0, scratch_addr);
    b.ld(A1, T0, SC_T);
    b.call("fmul");
    store(&mut b, vars, V_Z3);
    // x2' = aa * bb
    load2(&mut b, scr, SC_AA, scr, SC_BB);
    b.call("fmul");
    store(&mut b, vars, V_X2);
    // z2' = e * (bb + a24 * e)
    b.li(T0, params_addr);
    b.ld(A0, T0, 8);
    b.li(T0, scratch_addr);
    b.ld(A1, T0, SC_E);
    b.call("fmul");
    store(&mut b, scr, SC_T);
    load2(&mut b, scr, SC_BB, scr, SC_T);
    b.call("fadd");
    store(&mut b, scr, SC_T);
    load2(&mut b, scr, SC_E, scr, SC_T);
    b.call("fmul");
    store(&mut b, vars, V_Z2);
    b.ret();

    // finv: A0 = A0^(P-2) mod P via a fixed 61-iteration square-and-multiply
    // with masked selects (the exponent is public, the code is branch-free in
    // its data handling anyway).
    b.func("finv");
    b.mv(S4, A0); // base
    b.li(S5, 1); // accumulator
    b.li(S6, 61); // bit counter
    b.li(S7, P - 2); // exponent
    b.label("finv_loop");
    b.addi(S6, S6, -1);
    // acc = acc^2
    b.mv(A0, S5);
    b.mv(A1, S5);
    b.call("fmul");
    b.mv(S5, A0);
    // m = acc * base
    b.mv(A0, S5);
    b.mv(A1, S4);
    b.call("fmul");
    // bit = (P-2 >> S6) & 1 ; acc = bit ? m : acc
    b.srl(T0, S7, S6);
    b.andi(T0, T0, 1);
    b.sub(T1, ZERO, T0);
    b.xor(T2, A0, S5);
    b.and(T2, T2, T1);
    b.xor(S5, S5, T2);
    b.bne(S6, ZERO, "finv_loop");
    b.mv(A0, S5);
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("x25519 kernel assembles");
    KernelProgram::new(program, out_addr, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::field61 as reference;

    fn run(x1: u64, scalar: &[u64; 4]) -> u64 {
        let kernel = build(x1, scalar);
        let out = kernel.run_functional().unwrap();
        u64::from_le_bytes(out.try_into().unwrap())
    }

    #[test]
    fn matches_reference_small_scalars() {
        for scalar_low in [1u64, 2, 3, 6, 255] {
            let scalar = [scalar_low, 0, 0, 0];
            assert_eq!(
                run(9, &scalar),
                reference::scalar_mult(9, &scalar, SCALAR_BITS),
                "scalar {scalar_low}"
            );
        }
    }

    #[test]
    fn matches_reference_full_width_scalar() {
        let scalar = [
            0xdead_beef_cafe_f00d,
            0x0123_4567_89ab_cdef,
            0xffff_0000_ffff_0000,
            0x7fff_ffff_ffff_ffff,
        ];
        for x1 in [9u64, 1234, P - 2] {
            assert_eq!(
                run(x1, &scalar),
                reference::scalar_mult(x1, &scalar, SCALAR_BITS),
                "x1 {x1}"
            );
        }
    }

    #[test]
    fn instruction_count_is_scalar_independent() {
        let k1 = build(9, &[u64::MAX; 4]);
        let k2 = build(9, &[1, 0, 0, 0]);
        let (_, s1) = k1.run_functional_counted().unwrap();
        let (_, s2) = k2.run_functional_counted().unwrap();
        assert_eq!(s1, s2);
    }
}
