//! ChaCha20 stream cipher as an ISA kernel.
//!
//! Mirrors [`crate::reference::chacha20`]: a stream loop over 64-byte blocks,
//! each block running 10 double rounds of 8 quarter-round calls driven by a
//! small index table, followed by the feed-forward addition and the XOR with
//! the plaintext. All loop trip counts are public (they depend only on the
//! message length), all quarter-round calls go through a single `qr` function
//! so the kernel exhibits the loop + call/return branch pattern the paper
//! highlights for ChaCha20.

use crate::kernel::emit::{add32, rotl32_imm, MASK32};
use crate::kernel::KernelProgram;
use crate::reference::chacha20 as reference;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{A0, A1, A2, A3, S0, S1, S2, S3, S4, S5, S6, T0, T1, T2, T3, T4, T5, T6};

/// The quarter-round index schedule: 4 column rounds then 4 diagonal rounds.
const QR_SCHEDULE: [[u8; 4]; 8] = [
    [0, 4, 8, 12],
    [1, 5, 9, 13],
    [2, 6, 10, 14],
    [3, 7, 11, 15],
    [0, 5, 10, 15],
    [1, 6, 11, 12],
    [2, 7, 8, 13],
    [3, 4, 9, 14],
];

/// Builds the ChaCha20 encryption kernel.
///
/// `message.len()` must be a whole number of 64-byte blocks (the workload
/// generator always satisfies this); partial blocks would only add a second,
/// input-length-dependent tail loop without changing the branch structure.
///
/// # Panics
///
/// Panics if the message length is not a multiple of 64.
pub fn build(key: &[u8; 32], counter: u32, nonce: &[u8; 12], message: &[u8]) -> KernelProgram {
    assert!(
        message.len().is_multiple_of(64) && !message.is_empty(),
        "message length must be a positive multiple of 64"
    );
    let nblocks = message.len() / 64;

    let mut b = ProgramBuilder::new("chacha20");

    // ---- data ----
    let s0 = reference::initial_state(key, counter, nonce);
    let s0_addr = b.alloc_secret_u32s("s0", &s0);
    let counter_base_addr = b.alloc_u32s("counter_base", &[counter]);
    let state_addr = b.alloc_zeros("state", 64);
    let ks_addr = b.alloc_zeros("keystream", 64);
    let qr_table: Vec<u8> = QR_SCHEDULE.iter().flatten().copied().collect();
    let qr_table_addr = b.alloc_bytes("qr_table", &qr_table);
    let msg_addr = b.alloc_secret_bytes("message", message);
    let out_addr = b.alloc_zeros("ciphertext", message.len());

    // ---- code ----
    b.begin_crypto();

    // main
    b.li(S0, nblocks as u64);
    b.li(S1, 0); // block index
    b.li(S2, msg_addr);
    b.li(S3, out_addr);
    b.label("stream_loop");
    b.call("chacha_block");
    b.call("xor_block");
    b.addi(S1, S1, 1);
    b.addi(S2, S2, 64);
    b.addi(S3, S3, 64);
    b.bne(S1, S0, "stream_loop");
    b.j("done");

    // chacha_block: computes the keystream for block S1 into `keystream`.
    b.func("chacha_block");
    // s0[12] = counter_base + block_index (mod 2^32)
    b.li(A0, counter_base_addr);
    b.lw(T0, A0, 0);
    b.add(T0, T0, S1);
    b.andi(T0, T0, MASK32);
    b.li(A0, s0_addr);
    b.sw(T0, A0, 48);
    // copy s0 -> state (16 words)
    b.li(T0, 0);
    b.li(A0, s0_addr);
    b.li(A1, state_addr);
    b.li(T2, 16);
    b.label("copy_loop");
    b.lw(T1, A0, 0);
    b.sw(T1, A1, 0);
    b.addi(A0, A0, 4);
    b.addi(A1, A1, 4);
    b.addi(T0, T0, 1);
    b.bne(T0, T2, "copy_loop");
    // 10 double rounds of 8 quarter rounds each
    b.li(S4, 0); // double-round counter
    b.label("dr_loop");
    b.li(S5, 0); // quarter-round counter
    b.li(S6, qr_table_addr);
    b.label("qr_loop");
    b.lb(A0, S6, 0);
    b.lb(A1, S6, 1);
    b.lb(A2, S6, 2);
    b.lb(A3, S6, 3);
    b.call("qr");
    b.addi(S6, S6, 4);
    b.addi(S5, S5, 1);
    b.li(T2, 8);
    b.bne(S5, T2, "qr_loop");
    b.addi(S4, S4, 1);
    b.li(T2, 10);
    b.bne(S4, T2, "dr_loop");
    // feed forward: keystream[i] = (state[i] + s0[i]) mod 2^32
    b.li(T0, 0);
    b.li(A0, s0_addr);
    b.li(A1, state_addr);
    b.li(A2, ks_addr);
    b.li(T2, 16);
    b.label("ff_loop");
    b.lw(T1, A0, 0);
    b.lw(T3, A1, 0);
    add32(&mut b, T1, T1, T3);
    b.sw(T1, A2, 0);
    b.addi(A0, A0, 4);
    b.addi(A1, A1, 4);
    b.addi(A2, A2, 4);
    b.addi(T0, T0, 1);
    b.bne(T0, T2, "ff_loop");
    b.ret();

    // xor_block: out[S3..+64] = msg[S2..+64] ^ keystream
    b.func("xor_block");
    b.li(T0, 0);
    b.li(A0, ks_addr);
    b.mv(A1, S2);
    b.mv(A2, S3);
    b.li(T2, 8);
    b.label("xor_loop");
    b.ld(T1, A0, 0);
    b.ld(T3, A1, 0);
    b.xor(T1, T1, T3);
    b.sd(T1, A2, 0);
    b.addi(A0, A0, 8);
    b.addi(A1, A1, 8);
    b.addi(A2, A2, 8);
    b.addi(T0, T0, 1);
    b.bne(T0, T2, "xor_loop");
    b.ret();

    // qr: quarter round on state words indexed by A0..A3.
    b.func("qr");
    b.li(T6, state_addr);
    b.slli(A0, A0, 2);
    b.add(A0, A0, T6);
    b.slli(A1, A1, 2);
    b.add(A1, A1, T6);
    b.slli(A2, A2, 2);
    b.add(A2, A2, T6);
    b.slli(A3, A3, 2);
    b.add(A3, A3, T6);
    b.lw(T0, A0, 0); // a
    b.lw(T1, A1, 0); // b
    b.lw(T2, A2, 0); // c
    b.lw(T3, A3, 0); // d

    // a += b; d ^= a; d = rotl(d, 16)
    add32(&mut b, T0, T0, T1);
    b.xor(T3, T3, T0);
    rotl32_imm(&mut b, T3, T3, 16, T4);
    // c += d; b ^= c; b = rotl(b, 12)
    add32(&mut b, T2, T2, T3);
    b.xor(T1, T1, T2);
    rotl32_imm(&mut b, T1, T1, 12, T4);
    // a += b; d ^= a; d = rotl(d, 8)
    add32(&mut b, T0, T0, T1);
    b.xor(T3, T3, T0);
    rotl32_imm(&mut b, T3, T3, 8, T4);
    // c += d; b ^= c; b = rotl(b, 7)
    add32(&mut b, T2, T2, T3);
    b.xor(T1, T1, T2);
    rotl32_imm(&mut b, T1, T1, 7, T5);
    b.sw(T0, A0, 0);
    b.sw(T1, A1, 0);
    b.sw(T2, A2, 0);
    b.sw(T3, A3, 0);
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("chacha20 kernel assembles");
    KernelProgram::new(program, out_addr, message.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_inputs(len: usize) -> ([u8; 32], u32, [u8; 12], Vec<u8>) {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [7, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 1];
        let msg: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        (key, 5, nonce, msg)
    }

    #[test]
    fn matches_reference_one_block() {
        let (key, counter, nonce, msg) = test_inputs(64);
        let kernel = build(&key, counter, &nonce, &msg);
        let out = kernel.run_functional().unwrap();
        assert_eq!(out, reference::encrypt(&key, counter, &nonce, &msg));
    }

    #[test]
    fn matches_reference_multi_block() {
        let (key, counter, nonce, msg) = test_inputs(256);
        let kernel = build(&key, counter, &nonce, &msg);
        let out = kernel.run_functional().unwrap();
        assert_eq!(out, reference::encrypt(&key, counter, &nonce, &msg));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_partial_blocks() {
        let (key, counter, nonce, _) = test_inputs(64);
        build(&key, counter, &nonce, &[0u8; 50]);
    }

    #[test]
    fn all_branches_are_crypto_tagged() {
        let (key, counter, nonce, msg) = test_inputs(64);
        let kernel = build(&key, counter, &nonce, &msg);
        assert!(!kernel.program.crypto_branches().is_empty());
        assert_eq!(
            kernel.program.crypto_branches().len(),
            kernel.program.static_branches().len(),
            "the whole kernel lies in the crypto region"
        );
    }
}
