//! Montgomery-ladder modular exponentiation as an ISA kernel (RSA / ModPow
//! stand-in, see [`crate::reference::modexp`]).
//!
//! The kernel runs a fixed-length ladder loop (one iteration per exponent
//! bit) with two calls to a constant-time Montgomery multiplication routine
//! per iteration and masked swaps instead of data-dependent branches —
//! exactly the branch structure of BearSSL's `i31`/`i62` modular
//! exponentiation.

use crate::kernel::KernelProgram;
use crate::reference::modexp::MontCtx;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{A0, A1, S0, S1, S2, S3, S4, S5, T0, T1, T2, T3, T4, T5, T6, ZERO};

/// Builds the modular exponentiation kernel computing `base^exp mod n` over a
/// `bits`-bit exponent given as little-endian 64-bit words.
///
/// # Panics
///
/// Panics if `exp` does not provide `bits` bits or the modulus is invalid for
/// [`MontCtx::new`].
pub fn build(n: u64, base: u64, exp: &[u64], bits: usize) -> KernelProgram {
    assert!(bits > 0 && bits <= exp.len() * 64, "exponent too short");
    let ctx = MontCtx::new(n);

    let mut b = ProgramBuilder::new("modexp");

    // ---- data ----
    // params: [n, n_prime, r1 (Montgomery 1), r2, base]
    let params_addr = b.alloc_u64s("mont_params", &[ctx.n, ctx.n_prime, ctx.r1, ctx.r2, base]);
    let exp_addr = b.alloc_secret_u64s("exponent", exp);
    let out_addr = b.alloc_zeros("result", 8);

    // ---- code ----
    b.begin_crypto();

    // x = to_mont(base) = mont_mul(base, r2)
    b.li(T6, params_addr);
    b.ld(A0, T6, 32); // base
    b.ld(A1, T6, 24); // r2
    b.call("mont_mul");
    b.mv(S2, A0); // r1 ladder register (holds x)
    b.li(T6, params_addr);
    b.ld(S1, T6, 16); // r0 ladder register = Montgomery 1
    b.li(S0, bits as u64);

    b.label("ladder_loop");
    b.addi(S0, S0, -1);
    // bit = (exp[S0 / 64] >> (S0 % 64)) & 1
    b.srli(T0, S0, 6);
    b.slli(T0, T0, 3);
    b.li(T1, exp_addr);
    b.add(T1, T1, T0);
    b.ld(T1, T1, 0);
    b.andi(T2, S0, 63);
    b.srl(T1, T1, T2);
    b.andi(S3, T1, 1);
    // Masked swap of (r0, r1) driven by the bit.
    b.sub(T0, ZERO, S3);
    b.xor(T1, S1, S2);
    b.and(T1, T1, T0);
    b.xor(S1, S1, T1);
    b.xor(S2, S2, T1);
    // new_other = mont_mul(r0, r1)
    b.mv(A0, S1);
    b.mv(A1, S2);
    b.call("mont_mul");
    b.mv(S4, A0);
    // new_acc = mont_mul(r0, r0)
    b.mv(A0, S1);
    b.mv(A1, S1);
    b.call("mont_mul");
    b.mv(S5, A0);
    // Swap back.
    b.sub(T0, ZERO, S3);
    b.xor(T1, S5, S4);
    b.and(T1, T1, T0);
    b.xor(S1, S5, T1);
    b.xor(S2, S4, T1);
    b.bne(S0, ZERO, "ladder_loop");

    // result = from_mont(r0) = mont_mul(r0, 1)
    b.mv(A0, S1);
    b.li(A1, 1);
    b.call("mont_mul");
    b.li(T0, out_addr);
    b.sd(A0, T0, 0);
    b.j("done");

    // mont_mul: A0 = REDC(A0 * A1) for the modulus in `mont_params`.
    b.func("mont_mul");
    b.li(T6, params_addr);
    b.ld(T4, T6, 0); // n
    b.ld(T5, T6, 8); // n'
    b.mul(T0, A0, A1); // t_lo
    b.mulhu(T1, A0, A1); // t_hi
    b.mul(T2, T0, T5); // m = t_lo * n' mod 2^64
    b.mul(T3, T2, T4); // (m*n) lo
    b.mulhu(T2, T2, T4); // (m*n) hi
    b.add(T3, T0, T3); // sum_lo
    b.sltu(T0, T3, T0); // carry out of the low half
    b.add(T1, T1, T2);
    b.add(T1, T1, T0); // u = t_hi + mn_hi + carry

    // Constant-time conditional subtraction of n.
    b.sltu(T0, T1, T4); // u < n ?
    b.xori(T0, T0, 1); // u >= n ?
    b.sub(T2, ZERO, T0);
    b.and(T2, T2, T4);
    b.sub(A0, T1, T2);
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("modexp kernel assembles");
    KernelProgram::new(program, out_addr, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::modexp as reference;

    const P61: u64 = (1 << 61) - 1;

    fn run(n: u64, base: u64, exp: &[u64], bits: usize) -> u64 {
        let kernel = build(n, base, exp, bits);
        let out = kernel.run_functional().unwrap();
        u64::from_le_bytes(out.try_into().unwrap())
    }

    #[test]
    fn matches_reference_256_bit_exponent() {
        let exp = [
            0x0123_4567_89ab_cdef,
            0xfeed_face_0bad_beef,
            0x1111_2222_3333_4444,
            0x8000_0000_0000_0001,
        ];
        for base in [2u64, 3, 65_537, P61 - 2] {
            assert_eq!(
                run(P61, base, &exp, 256),
                reference::mod_exp(P61, base, &exp, 256),
                "base {base}"
            );
        }
    }

    #[test]
    fn matches_reference_other_moduli() {
        let exp = [0xdead_beef_cafe_f00d, 0x0f0f_0f0f_0f0f_0f0f];
        for n in [1_000_003u64, 0xffff_fffb, (1 << 61) + 15] {
            assert_eq!(
                run(n, 12_345, &exp, 128),
                reference::mod_exp(n, 12_345, &exp, 128),
                "n {n}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem_in_kernel() {
        let exp = [P61 - 1, 0, 0, 0];
        assert_eq!(run(P61, 7, &exp, 64), 1);
    }

    #[test]
    fn instruction_count_is_exponent_independent() {
        // Two different exponents of the same width must execute the same
        // number of instructions (constant-time ladder).
        let e1 = [u64::MAX, u64::MAX];
        let e2 = [0u64, 0];
        let k1 = build(P61, 3, &e1, 128);
        let k2 = build(P61, 3, &e2, 128);
        let (_, s1) = k1.run_functional_counted().unwrap();
        let (_, s2) = k2.run_functional_counted().unwrap();
        assert_eq!(s1, s2);
    }
}
