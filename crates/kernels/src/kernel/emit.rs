//! Shared code-emission helpers used by the ISA kernels.
//!
//! These helpers expand to short, constant-time instruction sequences; they
//! never emit branches, so they do not change the branch-trace structure of
//! the kernels that use them.

use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::Reg;

/// Mask for 32-bit arithmetic.
pub const MASK32: i64 = 0xffff_ffff;

/// Emits `rd = (rs1 + rs2) mod 2^32`.
pub fn add32(b: &mut ProgramBuilder, rd: Reg, rs1: Reg, rs2: Reg) {
    b.add(rd, rs1, rs2);
    b.andi(rd, rd, MASK32);
}

/// Emits `rd = rd & 0xffff_ffff`.
pub fn mask32(b: &mut ProgramBuilder, rd: Reg) {
    b.andi(rd, rd, MASK32);
}

/// Emits a 32-bit rotate-left by a constant amount: `rd = rotl32(rs1, amount)`.
///
/// `tmp` must be distinct from `rd` and `rs1`.
pub fn rotl32_imm(b: &mut ProgramBuilder, rd: Reg, rs1: Reg, amount: u32, tmp: Reg) {
    assert!(amount > 0 && amount < 32, "rotate amount must be in 1..32");
    assert!(tmp != rd && tmp != rs1, "tmp register must not alias");
    b.srli(tmp, rs1, i64::from(32 - amount));
    b.slli(rd, rs1, i64::from(amount));
    b.or(rd, rd, tmp);
    b.andi(rd, rd, MASK32);
}

/// Emits a 32-bit rotate-right by a constant amount: `rd = rotr32(rs1, amount)`.
pub fn rotr32_imm(b: &mut ProgramBuilder, rd: Reg, rs1: Reg, amount: u32, tmp: Reg) {
    assert!(amount > 0 && amount < 32, "rotate amount must be in 1..32");
    rotl32_imm(b, rd, rs1, 32 - amount, tmp);
}

/// Emits a constant-time select: `rd = if bit == 1 { a } else { b }`, where
/// `bit` holds 0 or 1. Clobbers `tmp`.
pub fn select_bit(b: &mut ProgramBuilder, rd: Reg, bit: Reg, a: Reg, tmp: Reg, other: Reg) {
    // mask = -bit ; rd = (a & mask) | (other & !mask)
    b.sub(tmp, cassandra_isa::reg::ZERO, bit);
    b.xor(rd, a, other);
    b.and(rd, rd, tmp);
    b.xor(rd, rd, other);
}

/// Emits `rd = 0 - rs1` (two's complement negation).
pub fn neg(b: &mut ProgramBuilder, rd: Reg, rs1: Reg) {
    b.sub(rd, cassandra_isa::reg::ZERO, rs1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::exec::Executor;
    use cassandra_isa::reg::{A0, A1, A2, A3, T0};

    fn run(build: impl FnOnce(&mut ProgramBuilder)) -> Executor<'static> {
        let mut b = ProgramBuilder::new("emit-test");
        build(&mut b);
        b.halt();
        let p = Box::leak(Box::new(b.build().unwrap()));
        let mut e = Executor::new(p);
        e.run(10_000).unwrap();
        e
    }

    #[test]
    fn rotl32_matches_rust() {
        for amount in [1u32, 7, 8, 12, 16, 31] {
            let value: u32 = 0x89ab_cdef;
            let e = run(|b| {
                b.li(A1, u64::from(value));
                rotl32_imm(b, A0, A1, amount, T0);
            });
            assert_eq!(
                e.reg(A0),
                u64::from(value.rotate_left(amount)),
                "amount {amount}"
            );
        }
    }

    #[test]
    fn rotr32_matches_rust() {
        for amount in [2u32, 6, 11, 25] {
            let value: u32 = 0x0102_0304;
            let e = run(|b| {
                b.li(A1, u64::from(value));
                rotr32_imm(b, A0, A1, amount, T0);
            });
            assert_eq!(
                e.reg(A0),
                u64::from(value.rotate_right(amount)),
                "amount {amount}"
            );
        }
    }

    #[test]
    fn add32_wraps() {
        let e = run(|b| {
            b.li(A1, 0xffff_ffff);
            b.li(A2, 2);
            add32(b, A0, A1, A2);
        });
        assert_eq!(e.reg(A0), 1);
    }

    #[test]
    fn select_bit_selects() {
        for (bit, expect) in [(0u64, 222u64), (1, 111)] {
            let e = run(|b| {
                b.li(A1, bit);
                b.li(A2, 111);
                b.li(A3, 222);
                select_bit(b, A0, A1, A2, T0, A3);
            });
            assert_eq!(e.reg(A0), expect, "bit {bit}");
        }
    }

    #[test]
    fn neg_is_twos_complement() {
        let e = run(|b| {
            b.li(A1, 5);
            neg(b, A0, A1);
        });
        assert_eq!(e.reg(A0), (-5i64) as u64);
    }
}
