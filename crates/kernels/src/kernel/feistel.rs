//! 16-round Feistel block cipher as an ISA kernel (DES_ct stand-in, see
//! [`crate::reference::feistel`]).
//!
//! The kernel derives the 16 round keys in a key-schedule loop and then
//! encrypts each 64-bit block with a 16-round Feistel loop — the same
//! loop/call structure as BearSSL's constant-time DES.

use crate::kernel::emit::MASK32;
use crate::kernel::KernelProgram;
use cassandra_isa::builder::ProgramBuilder;
use cassandra_isa::reg::{A0, A1, S0, S1, S2, S3, S4, T0, T1, T2, T3, T4};

/// Builds the Feistel encryption kernel for the given key and blocks.
///
/// # Panics
///
/// Panics if `blocks` is empty.
pub fn build(key: u64, blocks: &[u64]) -> KernelProgram {
    assert!(!blocks.is_empty(), "at least one block required");

    let mut b = ProgramBuilder::new("feistel");

    // ---- data ----
    let key_addr = b.alloc_secret_u64s("key", &[key]);
    let ks_addr = b.alloc_zeros("round_keys", 16 * 8);
    let msg_addr = b.alloc_secret_u64s("blocks", blocks);
    let out_addr = b.alloc_zeros("ciphertext", blocks.len() * 8);

    // ---- code ----
    b.begin_crypto();

    b.call("key_schedule");
    b.li(S0, blocks.len() as u64);
    b.li(S1, 0);
    b.li(S2, msg_addr);
    b.li(S3, out_addr);
    b.label("block_loop");
    b.ld(A0, S2, 0);
    b.call("encrypt_block");
    b.sd(A0, S3, 0);
    b.addi(S1, S1, 1);
    b.addi(S2, S2, 8);
    b.addi(S3, S3, 8);
    b.bne(S1, S0, "block_loop");
    b.j("done");

    // key_schedule: derives 16 round keys from the 64-bit key.
    b.func("key_schedule");
    b.li(T0, key_addr);
    b.ld(T1, T0, 0);
    b.li(T0, 0x9e37_79b9_7f4a_7c15);
    b.xor(T1, T1, T0); // state
    b.li(T2, 0); // i
    b.li(T3, ks_addr);
    b.li(T4, 16);
    b.label("ks_loop");
    // state = rotl(state, 13) * 0xbf58476d1ce4e5b9 + i ; state ^= state >> 31
    b.rotli(T1, T1, 13);
    b.li(T0, 0xbf58_476d_1ce4_e5b9);
    b.mul(T1, T1, T0);
    b.add(T1, T1, T2);
    b.srli(T0, T1, 31);
    b.xor(T1, T1, T0);
    // ks[i] = (state >> 16) as u32
    b.srli(T0, T1, 16);
    b.andi(T0, T0, MASK32);
    b.sd(T0, T3, 0);
    b.addi(T3, T3, 8);
    b.addi(T2, T2, 1);
    b.bne(T2, T4, "ks_loop");
    b.ret();

    // encrypt_block: A0 = encrypt(A0) through 16 Feistel rounds.
    b.func("encrypt_block");
    b.srli(S4, A0, 32); // left
    b.andi(A0, A0, MASK32); // right
    b.li(T3, ks_addr);
    b.li(T2, 0); // round counter
    b.label("round_loop");
    b.ld(T4, T3, 0); // round key

    // F(right, k): x = right + k; x = rotl32(x, 7) ^ k; x = (x * 0x9e3779b9) | 1;
    //              x ^= x >> 15; x = rotl32(x, 11) + right   (all mod 2^32)
    b.add(T0, A0, T4);
    b.andi(T0, T0, MASK32);
    b.slli(T1, T0, 7);
    b.srli(T0, T0, 25);
    b.or(T0, T0, T1);
    b.andi(T0, T0, MASK32);
    b.xor(T0, T0, T4);
    b.li(T1, 0x9e37_79b9);
    b.mul(T0, T0, T1);
    b.andi(T0, T0, MASK32);
    b.ori(T0, T0, 1);
    b.srli(T1, T0, 15);
    b.xor(T0, T0, T1);
    b.slli(T1, T0, 11);
    b.srli(T0, T0, 21);
    b.or(T0, T0, T1);
    b.andi(T0, T0, MASK32);
    b.add(T0, T0, A0);
    b.andi(T0, T0, MASK32);
    // new_right = left ^ F ; left = right ; right = new_right
    b.xor(T0, T0, S4);
    b.mv(S4, A0);
    b.mv(A0, T0);
    b.addi(T3, T3, 8);
    b.addi(T2, T2, 1);
    b.li(T1, 16);
    b.bne(T2, T1, "round_loop");
    // Final swap: output = (right << 32) | left.
    b.slli(A1, A0, 32);
    b.or(A0, A1, S4);
    b.ret();

    b.label("done");
    b.end_crypto();
    b.halt();

    let program = b.build().expect("feistel kernel assembles");
    KernelProgram::new(program, out_addr, blocks.len() * 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::feistel as reference;

    fn run(key: u64, blocks: &[u64]) -> Vec<u64> {
        let kernel = build(key, blocks);
        let out = kernel.run_functional().unwrap();
        out.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn matches_reference_single_block() {
        let key = 0x0123_4567_89ab_cdef;
        let blocks = [0xdead_beef_cafe_f00d];
        assert_eq!(run(key, &blocks), reference::encrypt_blocks(key, &blocks));
    }

    #[test]
    fn matches_reference_many_blocks() {
        let key = 0xfeed_face_0bad_f00d;
        let blocks: Vec<u64> = (0..32u64)
            .map(|i| i.wrapping_mul(0x1234_5678_9abc))
            .collect();
        assert_eq!(run(key, &blocks), reference::encrypt_blocks(key, &blocks));
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let out = run(1, &[0, 1, 2, 3]);
        assert_ne!(out, vec![0, 1, 2, 3]);
    }
}
