//! Constant-time kernels written against the `cassandra-isa` ISA.
//!
//! Each submodule provides a `build(..)` function that assembles a complete
//! [`Program`] implementing one cryptographic primitive, mirroring the
//! corresponding [`crate::reference`] implementation. The returned
//! [`KernelProgram`] records where the kernel writes its output so tests can
//! compare against the reference bit for bit.

pub mod aes128;
pub mod chacha20;
pub mod emit;
pub mod feistel;
pub mod kyber;
pub mod modexp;
pub mod poly1305;
pub mod sha256;
pub mod sphincs;
pub mod x25519;

use cassandra_isa::error::IsaError;
use cassandra_isa::exec::Executor;
use cassandra_isa::program::Program;

/// Default step budget used when running kernels functionally.
pub const KERNEL_STEP_LIMIT: u64 = 200_000_000;

/// A kernel program plus the location of its output buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProgram {
    /// The assembled program.
    pub program: Program,
    /// Byte address of the output buffer.
    pub output_addr: u64,
    /// Length of the output buffer in bytes.
    pub output_len: usize,
    /// Step budget sufficient for one functional run of this kernel.
    pub step_limit: u64,
}

impl KernelProgram {
    /// Creates a kernel descriptor.
    pub fn new(program: Program, output_addr: u64, output_len: usize) -> Self {
        KernelProgram {
            program,
            output_addr,
            output_len,
            step_limit: KERNEL_STEP_LIMIT,
        }
    }

    /// Runs the kernel on the functional executor and returns the output
    /// buffer contents.
    ///
    /// # Errors
    ///
    /// Propagates executor errors (step budget exceeded, malformed program).
    pub fn run_functional(&self) -> Result<Vec<u8>, IsaError> {
        let mut exec = Executor::new(&self.program);
        exec.run(self.step_limit)?;
        Ok(exec.memory().read_bytes(self.output_addr, self.output_len))
    }

    /// Runs the kernel and returns both the output and the number of executed
    /// instructions (useful for sizing simulations).
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn run_functional_counted(&self) -> Result<(Vec<u8>, u64), IsaError> {
        let mut exec = Executor::new(&self.program);
        let steps = exec.run(self.step_limit)?;
        Ok((
            exec.memory().read_bytes(self.output_addr, self.output_len),
            steps,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1};

    #[test]
    fn kernel_program_reads_its_output() {
        let mut b = ProgramBuilder::new("tiny");
        let out = b.alloc_zeros("out", 8);
        b.li(A0, 0x1122_3344_5566_7788);
        b.li(A1, out);
        b.sd(A0, A1, 0);
        b.halt();
        let k = KernelProgram::new(b.build().unwrap(), out, 8);
        let bytes = k.run_functional().unwrap();
        assert_eq!(bytes, 0x1122_3344_5566_7788u64.to_le_bytes());
        let (bytes2, steps) = k.run_functional_counted().unwrap();
        assert_eq!(bytes, bytes2);
        assert_eq!(steps, 4);
    }
}
