//! Workload descriptors for the evaluation suite.

use crate::kernel::KernelProgram;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The library / family a workload belongs to, mirroring the grouping used in
/// the paper's Table 1 and Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadGroup {
    /// BearSSL constant-time primitives.
    BearSsl,
    /// OpenSSL primitives.
    OpenSsl,
    /// Post-quantum crypto reference implementations.
    Pqc,
    /// SpectreGuard-style synthetic sandbox/crypto mixes (§7.3).
    Synthetic,
}

impl WorkloadGroup {
    /// Every group, in the order the paper reports them (PQC, OpenSSL,
    /// BearSSL, then the synthetic mixes of §7.3).
    pub const ALL: [WorkloadGroup; 4] = [
        WorkloadGroup::Pqc,
        WorkloadGroup::OpenSsl,
        WorkloadGroup::BearSsl,
        WorkloadGroup::Synthetic,
    ];
}

impl fmt::Display for WorkloadGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadGroup::BearSsl => "BearSSL",
            WorkloadGroup::OpenSsl => "OpenSSL",
            WorkloadGroup::Pqc => "PQC",
            WorkloadGroup::Synthetic => "Synthetic",
        };
        f.write_str(s)
    }
}

/// One benchmark workload: a named kernel program with its library group.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name as reported in the paper's tables/figures.
    pub name: String,
    /// Library group.
    pub group: WorkloadGroup,
    /// The kernel program to analyze and simulate.
    pub kernel: KernelProgram,
}

impl Workload {
    /// Creates a workload descriptor.
    pub fn new(name: impl Into<String>, group: WorkloadGroup, kernel: KernelProgram) -> Self {
        Workload {
            name: name.into(),
            group,
            kernel,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {}", self.group, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;

    #[test]
    fn display_formats() {
        let mut b = ProgramBuilder::new("noop");
        b.halt();
        let k = KernelProgram::new(b.build().unwrap(), 0, 0);
        let w = Workload::new("SHA-256", WorkloadGroup::BearSsl, k);
        assert_eq!(w.to_string(), "BearSSL / SHA-256");
        assert_eq!(WorkloadGroup::Pqc.to_string(), "PQC");
    }
}
