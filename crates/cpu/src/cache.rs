//! Set-associative cache model and the four-level hierarchy of Table 3.

use crate::config::{CacheConfig, CpuConfig};
use serde::{Deserialize, Serialize};

/// Statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Sentinel for "no line": real line numbers are `addr >> log2(line_bytes)`
/// and never reach `u64::MAX`.
const NO_LINE: u64 = u64::MAX;

/// One set-associative cache with LRU replacement.
///
/// Set storage is sparse: `slot_of[set]` maps a set to a 1-based slot in a
/// grow-on-demand arena of `ways`-sized tag groups (0 = never touched), so
/// constructing a cache zeroes 4 bytes per set instead of a full tag array
/// — the 30 MiB L3 of the paper's Table 3 has 30 720 sets, and sweeps pay
/// that construction once per cell. Within a group the `lens[slot]` valid
/// tags are ordered LRU → MRU, so an access is a bounded scan of one
/// contiguous slice and an in-place shift. When the geometry is a power of
/// two (every configured level), set indexing is shift/mask instead of
/// hardware division. `mru_line` caches the most recently accessed line:
/// re-accessing it is a guaranteed hit that needs no LRU reorder (it is
/// already most-recent in its set), which short-circuits the common
/// sequential-fetch case.
#[derive(Debug, Clone)]
pub struct Cache {
    /// set → 1-based arena slot of its tag group; 0 = set never accessed.
    slot_of: Vec<u32>,
    /// Arena of `ways`-sized tag groups, one per touched set; entries
    /// `[slot*ways, slot*ways + lens[slot])` are resident, oldest first.
    tags: Vec<u64>,
    /// Number of valid ways per touched set, indexed by arena slot.
    lens: Vec<u16>,
    ways: usize,
    set_count: u64,
    /// `set_count - 1` when `set_count` is a power of two.
    set_mask: u64,
    sets_pow2: bool,
    line_bytes: u64,
    /// `log2(line_bytes)` when `line_bytes` is a power of two.
    line_shift: u32,
    line_pow2: bool,
    /// The line of the most recent `access` (`NO_LINE` after flush). Pure
    /// fast-path cache: that line is resident and MRU in its set.
    mru_line: u64,
    latency: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(config: &CacheConfig) -> Self {
        let lines = (config.size_bytes / config.line_bytes).max(1);
        let set_count = (lines / config.ways).max(1) as u64;
        let line_bytes = config.line_bytes as u64;
        Cache {
            slot_of: vec![0; set_count as usize],
            tags: Vec::new(),
            lens: Vec::new(),
            ways: config.ways,
            set_count,
            set_mask: set_count.wrapping_sub(1),
            sets_pow2: set_count.is_power_of_two(),
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            line_pow2: line_bytes.is_power_of_two(),
            mru_line: NO_LINE,
            latency: config.latency,
            stats: CacheStats::default(),
        }
    }

    /// The arena slot of `set`, allocating its tag group on first touch.
    #[inline]
    fn slot_mut(&mut self, set: usize) -> usize {
        let slot = self.slot_of[set];
        if slot != 0 {
            return (slot - 1) as usize;
        }
        let idx = self.lens.len();
        self.slot_of[set] = (idx + 1) as u32;
        self.tags.resize(self.tags.len() + self.ways, 0);
        self.lens.push(0);
        idx
    }

    /// Hit latency of this level.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        if self.line_pow2 {
            addr >> self.line_shift
        } else {
            addr / self.line_bytes
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (if self.sets_pow2 {
            line & self.set_mask
        } else {
            line % self.set_count
        }) as usize
    }

    /// Accesses `addr`, returns `true` on hit, inserting the line (LRU) in
    /// either case.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = self.line_of(addr);
        if line == self.mru_line {
            // Still resident and still MRU: nothing was accessed since.
            self.stats.hits += 1;
            return true;
        }
        self.mru_line = line;
        let set = self.set_of(line);
        let slot = self.slot_mut(set);
        let base = slot * self.ways;
        let len = self.lens[slot] as usize;
        let ways = &mut self.tags[base..base + len];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Promote to MRU: shift younger lines down, put `line` last.
            ways.copy_within(pos + 1.., pos);
            ways[len - 1] = line;
            self.stats.hits += 1;
            true
        } else {
            if len >= self.ways {
                // Evict the LRU (slot 0) by shifting the set down.
                ways.copy_within(1.., 0);
                ways[len - 1] = line;
            } else {
                self.tags[base + len] = line;
                self.lens[slot] = (len + 1) as u16;
            }
            self.stats.misses += 1;
            false
        }
    }

    /// Whether the address is currently cached (does not update LRU or stats;
    /// used by the side-channel observer).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let slot = self.slot_of[self.set_of(line)];
        if slot == 0 {
            return false;
        }
        let base = (slot - 1) as usize * self.ways;
        self.tags[base..base + self.lens[(slot - 1) as usize] as usize].contains(&line)
    }

    /// Invalidates the whole cache.
    pub fn flush(&mut self) {
        self.slot_of.fill(0);
        self.tags.clear();
        self.lens.clear();
        self.mru_line = NO_LINE;
    }
}

/// Aggregated statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Last-level cache.
    pub l3: CacheStats,
}

/// The L1I/L1D/L2/L3 hierarchy with a flat memory behind it.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    memory_latency: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy from the CPU configuration.
    pub fn new(config: &CpuConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(&config.l1i),
            l1d: Cache::new(&config.l1d),
            l2: Cache::new(&config.l2),
            l3: Cache::new(&config.l3),
            memory_latency: config.memory_latency,
        }
    }

    /// Folds `n` same-line instruction-fetch hits into the L1I statistics.
    ///
    /// The pipeline short-circuits fetches that stay on the line of the
    /// previous fetch: that line is the L1I's MRU line, so each such access
    /// would be a guaranteed hit at base latency with no replacement-state
    /// change — only the counters move, and they can move in bulk.
    pub fn note_instr_hits(&mut self, n: u64) {
        self.l1i.stats.accesses += n;
        self.l1i.stats.hits += n;
    }

    /// Access latency for an instruction fetch at byte address `addr`.
    pub fn access_instr(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            return self.l1i.latency();
        }
        self.lower_levels(addr, self.l1i.latency())
    }

    /// Access latency for a data access at byte address `addr`.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            return self.l1d.latency();
        }
        self.lower_levels(addr, self.l1d.latency())
    }

    fn lower_levels(&mut self, addr: u64, l1_latency: u64) -> u64 {
        if self.l2.access(addr) {
            return l1_latency + self.l2.latency();
        }
        if self.l3.access(addr) {
            return l1_latency + self.l2.latency() + self.l3.latency();
        }
        l1_latency + self.l2.latency() + self.l3.latency() + self.memory_latency
    }

    /// Whether a data address currently hits in the L1D (the attacker's
    /// flush+reload style probe for the security tests).
    pub fn probe_data(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Statistics of all levels.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
            latency: 3,
        }
    }

    #[test]
    fn hit_after_miss() {
        let mut c = Cache::new(&small_config());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x2000));
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = Cache::new(&small_config());
        // 1024/64 = 16 lines, 2 ways → 8 sets. Lines mapping to set 0:
        // line numbers 0, 8, 16 (addresses 0, 0x200, 0x400).
        c.access(0x000);
        c.access(0x200);
        c.access(0x400); // evicts line of 0x000
        assert!(!c.probe(0x000));
        assert!(c.probe(0x200));
        assert!(c.probe(0x400));
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = Cache::new(&small_config());
        c.access(0x40);
        assert!(c.probe(0x40));
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn hierarchy_latencies_accumulate() {
        let config = CpuConfig::golden_cove_like();
        let mut h = CacheHierarchy::new(&config);
        let cold = h.access_data(0x1_0000);
        assert_eq!(
            cold,
            config.l1d.latency + config.l2.latency + config.l3.latency + config.memory_latency
        );
        let warm = h.access_data(0x1_0000);
        assert_eq!(warm, config.l1d.latency);
        let instr = h.access_instr(0x40);
        assert!(instr > config.l1i.latency, "cold instruction fetch misses");
    }

    #[test]
    fn probe_reflects_presence() {
        let config = CpuConfig::golden_cove_like();
        let mut h = CacheHierarchy::new(&config);
        assert!(!h.probe_data(0x5000));
        h.access_data(0x5000);
        assert!(h.probe_data(0x5000));
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = Cache::new(&small_config());
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(4096);
        let s = c.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }
}
