//! Set-associative cache model and the four-level hierarchy of Table 3.

use crate::config::{CacheConfig, CpuConfig};
use serde::{Deserialize, Serialize};

/// Statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// One set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
    latency: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(config: &CacheConfig) -> Self {
        let lines = (config.size_bytes / config.line_bytes).max(1);
        let sets = (lines / config.ways).max(1);
        Cache {
            sets: vec![Vec::new(); sets],
            ways: config.ways,
            line_bytes: config.line_bytes as u64,
            latency: config.latency,
            stats: CacheStats::default(),
        }
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`, returns `true` on hit, inserting the line (LRU) in
    /// either case.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr / self.line_bytes;
        let set_count = self.sets.len() as u64;
        let set = &mut self.sets[(line % set_count) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push(line);
            self.stats.hits += 1;
            true
        } else {
            if set.len() >= self.ways {
                set.remove(0);
            }
            set.push(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Whether the address is currently cached (does not update LRU or stats;
    /// used by the side-channel observer).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = &self.sets[(line % self.sets.len() as u64) as usize];
        set.contains(&line)
    }

    /// Invalidates the whole cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// Aggregated statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Last-level cache.
    pub l3: CacheStats,
}

/// The L1I/L1D/L2/L3 hierarchy with a flat memory behind it.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    memory_latency: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy from the CPU configuration.
    pub fn new(config: &CpuConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(&config.l1i),
            l1d: Cache::new(&config.l1d),
            l2: Cache::new(&config.l2),
            l3: Cache::new(&config.l3),
            memory_latency: config.memory_latency,
        }
    }

    /// Access latency for an instruction fetch at byte address `addr`.
    pub fn access_instr(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            return self.l1i.latency();
        }
        self.lower_levels(addr, self.l1i.latency())
    }

    /// Access latency for a data access at byte address `addr`.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            return self.l1d.latency();
        }
        self.lower_levels(addr, self.l1d.latency())
    }

    fn lower_levels(&mut self, addr: u64, l1_latency: u64) -> u64 {
        if self.l2.access(addr) {
            return l1_latency + self.l2.latency();
        }
        if self.l3.access(addr) {
            return l1_latency + self.l2.latency() + self.l3.latency();
        }
        l1_latency + self.l2.latency() + self.l3.latency() + self.memory_latency
    }

    /// Whether a data address currently hits in the L1D (the attacker's
    /// flush+reload style probe for the security tests).
    pub fn probe_data(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Statistics of all levels.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
            latency: 3,
        }
    }

    #[test]
    fn hit_after_miss() {
        let mut c = Cache::new(&small_config());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x2000));
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = Cache::new(&small_config());
        // 1024/64 = 16 lines, 2 ways → 8 sets. Lines mapping to set 0:
        // line numbers 0, 8, 16 (addresses 0, 0x200, 0x400).
        c.access(0x000);
        c.access(0x200);
        c.access(0x400); // evicts line of 0x000
        assert!(!c.probe(0x000));
        assert!(c.probe(0x200));
        assert!(c.probe(0x400));
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = Cache::new(&small_config());
        c.access(0x40);
        assert!(c.probe(0x40));
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn hierarchy_latencies_accumulate() {
        let config = CpuConfig::golden_cove_like();
        let mut h = CacheHierarchy::new(&config);
        let cold = h.access_data(0x1_0000);
        assert_eq!(
            cold,
            config.l1d.latency + config.l2.latency + config.l3.latency + config.memory_latency
        );
        let warm = h.access_data(0x1_0000);
        assert_eq!(warm, config.l1d.latency);
        let instr = h.access_instr(0x40);
        assert!(instr > config.l1i.latency, "cold instruction fetch misses");
    }

    #[test]
    fn probe_reflects_presence() {
        let config = CpuConfig::golden_cove_like();
        let mut h = CacheHierarchy::new(&config);
        assert!(!h.probe_data(0x5000));
        h.access_data(0x5000);
        assert!(h.probe_data(0x5000));
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = Cache::new(&small_config());
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(4096);
        let s = c.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }
}
