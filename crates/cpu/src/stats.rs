//! Simulation statistics.

use crate::bpu::BpuStats;
use crate::cache::HierarchyStats;
use cassandra_btu::unit::BtuStats;
use serde::{Deserialize, Serialize};

/// Statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles (the execution-time metric of Fig. 7/8).
    pub cycles: u64,
    /// Committed (architectural) instructions.
    pub committed_instructions: u64,
    /// Committed control-flow instructions.
    pub committed_branches: u64,
    /// Committed crypto-tagged control-flow instructions.
    pub committed_crypto_branches: u64,
    /// Mispredicted branches (squashes caused by the BPU).
    pub mispredictions: u64,
    /// Wrong-path instructions fetched and later squashed.
    pub squashed_instructions: u64,
    /// Fetch stalls waiting for a branch to resolve (Cassandra integrity
    /// checks, input-dependent branches, Cassandra-lite multi-target stalls).
    pub fetch_stalls: u64,
    /// Instructions whose execution was delayed by a defense policy
    /// (SPT transmitter delay or ProSpeCT taint blocking).
    pub defense_delayed_instructions: u64,
    /// Loads that forwarded from an older in-flight store.
    pub stl_forwards: u64,
    /// BTU flushes triggered by the periodic flush interval (Q4).
    pub periodic_btu_flushes: u64,
    /// Context switches served by BTU partition reassignment instead of a
    /// whole-unit flush (the Q4 partition variant).
    pub context_switches: u64,
    /// Branch predictor statistics.
    pub bpu: BpuStats,
    /// BTU statistics.
    pub btu: BtuStats,
    /// Cache statistics.
    pub caches: HierarchyStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over committed branches.
    pub fn misprediction_rate(&self) -> f64 {
        if self.committed_branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.committed_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let stats = SimStats {
            cycles: 1000,
            committed_instructions: 2500,
            committed_branches: 100,
            mispredictions: 5,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-9);
        assert!((stats.misprediction_rate() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.misprediction_rate(), 0.0);
    }
}
