//! Processor configuration (the paper's Table 3) and defense selection.

use crate::policy::{DefensePolicy, FrontendKind};
use cassandra_btu::unit::BtuConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which secure-speculation design the pipeline models (§7).
///
/// A mode is only a *name*: the mechanisms it enables are described by the
/// [`DefensePolicy`] returned from [`DefenseMode::policy`], which the
/// pipeline resolves once at construction. The flag methods below
/// (`uses_btu`, `disables_stl`, …) are thin views over that policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DefenseMode {
    /// Unprotected out-of-order baseline: the BPU predicts every branch,
    /// store-to-load forwarding is enabled, nothing is delayed.
    UnsafeBaseline,
    /// Cassandra: crypto branches are redirected by the BTU (never the BPU);
    /// non-crypto branches use the BPU but may not speculatively redirect
    /// fetch into the crypto PC ranges.
    Cassandra,
    /// Cassandra plus data-flow protection: store-to-load forwarding is
    /// disabled and bypassing loads wait for older store addresses.
    CassandraStl,
    /// Cassandra-lite (discussion Q3): only single-target crypto branches are
    /// redirected from hints; multi-target crypto branches stall fetch until
    /// they resolve (no BTU).
    CassandraLite,
    /// SPT-like hardware-only defense under the constant-time policy:
    /// transmitters (loads and branches) are delayed until they become
    /// non-speculative.
    Spt,
    /// ProSpeCT-like defense: instructions whose operands are tainted by
    /// annotated secret memory may not execute while speculative.
    Prospect,
    /// Cassandra combined with ProSpeCT for the non-crypto part (§7.3).
    CassandraProspect,
    /// Serializing lower bound: every branch stalls fetch until it resolves.
    /// No speculation ever happens, at the classic fence-everything cost.
    Fence,
    /// Cassandra with a zero-entry Trace Cache: every multi-target crypto
    /// branch streams its trace from the data pages and pays the miss
    /// penalty on every lookup.
    CassandraNoTc,
    /// Hybrid tournament frontend: per-PC confidence counters arbitrate each
    /// crypto branch between BTU replay and the speculative BPU, modelling a
    /// deployment where only hot crypto branches earn traces. Cold crypto
    /// branches speculate (and may leak) until they are promoted.
    Tournament,
    /// Cassandra with the BTU's Trace Cache ways split into per-context
    /// partitions (discussion Q4): context switches between crypto
    /// applications cost a partition reassignment instead of a whole-unit
    /// flush.
    CassandraPartitioned,
}

impl DefenseMode {
    /// Every modelled defense, in reporting order. Design matrices, sweeps
    /// and CLI helpers enumerate this instead of hand-listing variants.
    pub const ALL: [DefenseMode; 11] = [
        DefenseMode::UnsafeBaseline,
        DefenseMode::Fence,
        DefenseMode::Cassandra,
        DefenseMode::CassandraStl,
        DefenseMode::CassandraLite,
        DefenseMode::CassandraNoTc,
        DefenseMode::CassandraPartitioned,
        DefenseMode::Tournament,
        DefenseMode::Spt,
        DefenseMode::Prospect,
        DefenseMode::CassandraProspect,
    ];

    /// The number of BTU partitions the `Cassandra-part` design point splits
    /// the Trace Cache into (two co-resident crypto applications, Q4).
    pub const PARTITIONED_BTU_CONTEXTS: usize = 2;

    /// The structured mechanism description of this defense, resolved once
    /// by the pipeline at construction.
    pub const fn policy(self) -> DefensePolicy {
        let base = DefensePolicy::baseline();
        match self {
            DefenseMode::UnsafeBaseline => base,
            DefenseMode::Cassandra => base.with_frontend(FrontendKind::Btu),
            DefenseMode::CassandraStl => base
                .with_frontend(FrontendKind::Btu)
                .without_stl_forwarding(),
            DefenseMode::CassandraLite => base.with_frontend(FrontendKind::BtuLite),
            DefenseMode::Spt => base.delaying_transmitters(),
            DefenseMode::Prospect => base.blocking_tainted(),
            DefenseMode::CassandraProspect => {
                base.with_frontend(FrontendKind::Btu).blocking_tainted()
            }
            DefenseMode::Fence => base.with_frontend(FrontendKind::Fence),
            DefenseMode::CassandraNoTc => base
                .with_frontend(FrontendKind::Btu)
                .with_trace_cache_entries(0),
            DefenseMode::Tournament => base.with_frontend(FrontendKind::Tournament),
            DefenseMode::CassandraPartitioned => base
                .with_frontend(FrontendKind::Btu)
                .with_btu_partitions(Self::PARTITIONED_BTU_CONTEXTS),
        }
    }

    /// True if crypto branches are driven by the BTU / hints instead of the BPU.
    pub fn uses_btu(self) -> bool {
        self.policy().frontend.uses_btu()
    }

    /// True if store-to-load forwarding is disabled (data-flow protection).
    pub fn disables_stl(self) -> bool {
        !self.policy().stl_forwarding
    }

    /// True if ProSpeCT-style taint blocking is active.
    pub fn prospect_taint(self) -> bool {
        self.policy().block_tainted
    }

    /// True if SPT-style transmitter delaying is active.
    pub fn spt_delay(self) -> bool {
        self.policy().delay_transmitters
    }

    /// Short label used in reports and figures. Round-trips through
    /// [`FromStr`], so CLI arguments and config files can use these names.
    pub fn label(self) -> &'static str {
        match self {
            DefenseMode::UnsafeBaseline => "UnsafeBaseline",
            DefenseMode::Cassandra => "Cassandra",
            DefenseMode::CassandraStl => "Cassandra+STL",
            DefenseMode::CassandraLite => "Cassandra-lite",
            DefenseMode::Spt => "SPT",
            DefenseMode::Prospect => "ProSpeCT",
            DefenseMode::CassandraProspect => "Cassandra+ProSpeCT",
            DefenseMode::Fence => "Fence",
            DefenseMode::CassandraNoTc => "Cassandra-noTC",
            DefenseMode::Tournament => "Tournament",
            DefenseMode::CassandraPartitioned => "Cassandra-part",
        }
    }
}

/// Error returned when parsing an unknown defense label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefenseModeError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseDefenseModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<&str> = DefenseMode::ALL.iter().map(|d| d.label()).collect();
        write!(
            f,
            "unknown defense `{}`; expected one of: {}",
            self.input,
            labels.join(", ")
        )
    }
}

impl std::error::Error for ParseDefenseModeError {}

impl FromStr for DefenseMode {
    type Err = ParseDefenseModeError;

    /// Parses a defense by its [`DefenseMode::label`] (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DefenseMode::ALL
            .iter()
            .copied()
            .find(|d| d.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseDefenseModeError {
                input: s.to_string(),
            })
    }
}

/// Cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

/// The full processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u64,
    /// Instructions committed per cycle.
    pub commit_width: u64,
    /// Frontend depth in cycles (fetch-to-dispatch).
    pub frontend_depth: u64,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Issue queue entries.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Extra cycles to redirect fetch after a misprediction squash.
    pub mispredict_redirect_penalty: u64,
    /// Cycles from issue to resolution for control-flow instructions
    /// (issue-queue select, execute and result broadcast).
    pub branch_resolve_latency: u64,
    /// Level-1 instruction cache.
    pub l1i: CacheConfig,
    /// Level-1 data cache.
    pub l1d: CacheConfig,
    /// Unified level-2 cache.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Branch-predictor PHT size (entries).
    pub pht_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return stack buffer depth.
    pub rsb_entries: usize,
    /// The defense configuration being simulated.
    pub defense: DefenseMode,
    /// Optional per-configuration override of the policy derived from
    /// `defense`. `None` (the default) resolves `defense.policy()` at
    /// `Simulator::new`; sensitivity sweeps set this through the
    /// [`CpuConfig::with_tournament_threshold`] /
    /// [`CpuConfig::with_btu_partitions`] builders to vary policy knobs
    /// without introducing a new [`DefenseMode`] per grid point.
    pub policy_override: Option<DefensePolicy>,
    /// BTU geometry (used by the Cassandra modes).
    pub btu: BtuConfig,
    /// If non-zero, a context switch happens every `btu_flush_interval`
    /// committed instructions (models the 250 Hz context-switch experiment,
    /// Q4). What a switch costs depends on `btu_switch_contexts`.
    pub btu_flush_interval: u64,
    /// How the periodic context switch is modelled: `0` flushes the whole
    /// BTU (the paper's Q4 pricing); `n > 0` instead rotates the active
    /// context through `n` application contexts via BTU partition
    /// reassignment, leaving the other partitions' residency warm.
    pub btu_switch_contexts: u64,
    /// Maximum committed instructions before the simulation stops.
    pub max_instructions: u64,
}

impl CpuConfig {
    /// The Golden-Cove-like configuration of the paper's Table 3.
    pub fn golden_cove_like() -> Self {
        CpuConfig {
            fetch_width: 8,
            commit_width: 8,
            frontend_depth: 6,
            rob_entries: 512,
            iq_entries: 96,
            lq_entries: 192,
            sq_entries: 114,
            mispredict_redirect_penalty: 6,
            branch_resolve_latency: 4,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                latency: 5,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                line_bytes: 64,
                ways: 12,
                latency: 5,
            },
            l2: CacheConfig {
                size_bytes: 1280 * 1024,
                line_bytes: 64,
                ways: 16,
                latency: 14,
            },
            l3: CacheConfig {
                size_bytes: 30 * 1024 * 1024,
                line_bytes: 64,
                ways: 16,
                latency: 40,
            },
            memory_latency: 160,
            pht_entries: 16 * 1024,
            btb_entries: 4096,
            rsb_entries: 32,
            defense: DefenseMode::UnsafeBaseline,
            policy_override: None,
            btu: BtuConfig::default(),
            btu_flush_interval: 0,
            btu_switch_contexts: 0,
            max_instructions: 200_000_000,
        }
    }

    /// The same configuration with a different defense. Clears any policy
    /// override: the defense defines the policy unless a `with_*` policy
    /// builder is applied *afterwards*.
    pub fn with_defense(mut self, defense: DefenseMode) -> Self {
        self.defense = defense;
        self.policy_override = None;
        self
    }

    /// The policy the pipeline will resolve at construction: the override if
    /// one is set, otherwise the policy derived from the configured defense.
    pub fn resolved_policy(&self) -> DefensePolicy {
        self.policy_override
            .unwrap_or_else(|| self.defense.policy())
    }

    /// The same configuration with the tournament frontend's promotion
    /// threshold overridden (how many executions a crypto branch needs
    /// before its BTU trace is trusted over the BPU). Only read by
    /// [`FrontendKind::Tournament`] sources; apply after
    /// [`CpuConfig::with_defense`].
    pub fn with_tournament_threshold(mut self, threshold: u32) -> Self {
        self.policy_override = Some(self.resolved_policy().with_tournament_threshold(threshold));
        self
    }

    /// The same configuration with the BTU's Trace Cache ways split into
    /// `partitions` per-context partitions (the Q4 partition-reassignment
    /// model). Apply after [`CpuConfig::with_defense`].
    pub fn with_btu_partitions(mut self, partitions: usize) -> Self {
        self.policy_override = Some(self.resolved_policy().with_btu_partitions(partitions));
        self
    }

    /// The same configuration with a different BTU entry count (Pattern
    /// Table / Trace Cache / Checkpoint Table entries).
    pub fn with_btu_entries(mut self, entries: usize) -> Self {
        self.btu.entries = entries;
        self
    }

    /// The same configuration with a different Trace Cache miss penalty
    /// (extra frontend cycles when a multi-target trace streams from the
    /// data pages).
    pub fn with_btu_miss_penalty(mut self, penalty: u64) -> Self {
        self.btu.miss_penalty = penalty;
        self
    }

    /// The same configuration with a different mispredict redirect penalty.
    pub fn with_mispredict_redirect_penalty(mut self, penalty: u64) -> Self {
        self.mispredict_redirect_penalty = penalty;
        self
    }

    /// The same configuration with a different BTU geometry.
    pub fn with_btu(mut self, btu: BtuConfig) -> Self {
        self.btu = btu;
        self
    }

    /// The same configuration with a periodic BTU flush every `interval`
    /// committed instructions (0 disables flushing; the Q4 experiment).
    pub fn with_btu_flush_interval(mut self, interval: u64) -> Self {
        self.btu_flush_interval = interval;
        self
    }

    /// The same configuration with the periodic context switch priced as a
    /// BTU partition reassignment rotating through `contexts` application
    /// contexts instead of a whole-unit flush (0 restores the flush model;
    /// the Q4 partition-reassignment variant).
    pub fn with_btu_switch_contexts(mut self, contexts: u64) -> Self {
        self.btu_switch_contexts = contexts;
        self
    }

    /// The same configuration with a different committed-instruction budget.
    pub fn with_max_instructions(mut self, max_instructions: u64) -> Self {
        self.max_instructions = max_instructions;
        self
    }

    /// The same configuration with a different main-memory latency.
    pub fn with_memory_latency(mut self, memory_latency: u64) -> Self {
        self.memory_latency = memory_latency;
        self
    }

    /// A short label describing how this configuration differs from the
    /// Table-3 baseline — used by design-point sweeps to name columns. Every
    /// swept knob contributes its own suffix (`+flush`, `+ctx`, `+mem`,
    /// `+redir`, `+btu`, `+miss`, `+thr`, `+part`, `+tc`), so grid-expanded
    /// design points get distinct, self-describing labels.
    pub fn design_label(&self) -> String {
        let mut label = self.defense.label().to_string();
        if self.btu_flush_interval != 0 {
            label.push_str(&format!("+flush{}", self.btu_flush_interval));
        }
        if self.btu_switch_contexts != 0 {
            label.push_str(&format!("+ctx{}", self.btu_switch_contexts));
        }
        let base = CpuConfig::golden_cove_like();
        if self.memory_latency != base.memory_latency {
            label.push_str(&format!("+mem{}", self.memory_latency));
        }
        if self.mispredict_redirect_penalty != base.mispredict_redirect_penalty {
            label.push_str(&format!("+redir{}", self.mispredict_redirect_penalty));
        }
        if self.btu.entries != base.btu.entries {
            label.push_str(&format!("+btu{}", self.btu.entries));
        }
        if self.btu.miss_penalty != base.btu.miss_penalty {
            label.push_str(&format!("+miss{}", self.btu.miss_penalty));
        }
        if self.btu.partitions != base.btu.partitions {
            label.push_str(&format!("+part{}", self.btu.partitions));
        }
        if let Some(over) = self.policy_override {
            let derived = self.defense.policy();
            if over.tournament_threshold != derived.tournament_threshold {
                if let Some(t) = over.tournament_threshold {
                    label.push_str(&format!("+thr{t}"));
                }
            }
            if over.btu_partitions != derived.btu_partitions {
                if let Some(p) = over.btu_partitions {
                    label.push_str(&format!("+part{p}"));
                }
            }
            if over.trace_cache_entries != derived.trace_cache_entries {
                if let Some(e) = over.trace_cache_entries {
                    label.push_str(&format!("+tc{e}"));
                }
            }
        }
        label
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::golden_cove_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = CpuConfig::golden_cove_like();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.rob_entries, 512);
        assert_eq!(c.iq_entries, 96);
        assert_eq!(c.lq_entries, 192);
        assert_eq!(c.sq_entries, 114);
        assert_eq!(c.l1d.size_bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l2.latency, 14);
        assert_eq!(c.l3.size_bytes, 30 * 1024 * 1024);
        assert_eq!(c.btu.entries, 16);
    }

    #[test]
    fn defense_mode_flags() {
        assert!(DefenseMode::Cassandra.uses_btu());
        assert!(DefenseMode::CassandraLite.uses_btu());
        assert!(DefenseMode::CassandraNoTc.uses_btu());
        assert!(DefenseMode::Tournament.uses_btu());
        assert!(DefenseMode::CassandraPartitioned.uses_btu());
        assert!(!DefenseMode::UnsafeBaseline.uses_btu());
        assert!(!DefenseMode::Fence.uses_btu());
        assert!(DefenseMode::CassandraStl.disables_stl());
        assert!(!DefenseMode::Cassandra.disables_stl());
        assert!(DefenseMode::Prospect.prospect_taint());
        assert!(DefenseMode::CassandraProspect.prospect_taint());
        assert!(DefenseMode::Spt.spt_delay());
        assert_eq!(DefenseMode::CassandraStl.label(), "Cassandra+STL");
    }

    #[test]
    fn every_mode_is_listed_exactly_once() {
        let mut labels: Vec<&str> = DefenseMode::ALL.iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DefenseMode::ALL.len());
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for mode in DefenseMode::ALL {
            assert_eq!(mode.label().parse::<DefenseMode>(), Ok(mode));
            // Case-insensitive for CLI friendliness.
            assert_eq!(
                mode.label().to_ascii_lowercase().parse::<DefenseMode>(),
                Ok(mode)
            );
        }
        let err = "NotADefense".parse::<DefenseMode>().unwrap_err();
        assert!(err.to_string().contains("NotADefense"));
        assert!(err.to_string().contains("Cassandra"));
    }

    #[test]
    fn policies_describe_the_new_scenarios() {
        use crate::policy::FrontendKind;
        assert_eq!(DefenseMode::Fence.policy().frontend, FrontendKind::Fence);
        let no_tc = DefenseMode::CassandraNoTc.policy();
        assert_eq!(no_tc.frontend, FrontendKind::Btu);
        assert_eq!(no_tc.trace_cache_entries, Some(0));
        assert!(DefenseMode::CassandraStl.policy().frontend.uses_btu());
        assert!(!DefenseMode::CassandraStl.policy().stl_forwarding);
        let tournament = DefenseMode::Tournament.policy();
        assert_eq!(tournament.frontend, FrontendKind::Tournament);
        assert_eq!(tournament.btu_partitions, None);
        let partitioned = DefenseMode::CassandraPartitioned.policy();
        assert_eq!(partitioned.frontend, FrontendKind::Btu);
        assert_eq!(
            partitioned.btu_partitions,
            Some(DefenseMode::PARTITIONED_BTU_CONTEXTS)
        );
    }

    #[test]
    fn context_switch_knobs_shape_the_design_label() {
        let cfg = CpuConfig::golden_cove_like()
            .with_defense(DefenseMode::CassandraPartitioned)
            .with_btu_flush_interval(5_000)
            .with_btu_switch_contexts(2);
        assert_eq!(cfg.design_label(), "Cassandra-part+flush5000+ctx2");
    }

    #[test]
    fn with_defense_builder() {
        let c = CpuConfig::golden_cove_like().with_defense(DefenseMode::Spt);
        assert_eq!(c.defense, DefenseMode::Spt);
    }

    #[test]
    fn policy_override_builders_resolve_and_label() {
        let base = CpuConfig::golden_cove_like().with_defense(DefenseMode::Tournament);
        assert_eq!(base.resolved_policy(), DefenseMode::Tournament.policy());
        assert_eq!(base.design_label(), "Tournament");

        let cfg = base.with_tournament_threshold(8).with_btu_partitions(4);
        let policy = cfg.resolved_policy();
        assert_eq!(policy.tournament_threshold, Some(8));
        assert_eq!(policy.btu_partitions, Some(4));
        // Unrelated policy bits stay as the defense derived them.
        assert_eq!(policy.frontend, DefenseMode::Tournament.policy().frontend);
        assert_eq!(cfg.design_label(), "Tournament+thr8+part4");

        // with_defense resets the override: the defense defines the policy.
        let reset = cfg.with_defense(DefenseMode::Cassandra);
        assert_eq!(reset.policy_override, None);
        assert_eq!(reset.resolved_policy(), DefenseMode::Cassandra.policy());
    }

    #[test]
    fn geometry_and_penalty_builders_shape_the_label() {
        let cfg = CpuConfig::golden_cove_like()
            .with_defense(DefenseMode::Cassandra)
            .with_btu_entries(8)
            .with_btu_miss_penalty(40)
            .with_mispredict_redirect_penalty(12);
        assert_eq!(cfg.btu.entries, 8);
        assert_eq!(cfg.btu.miss_penalty, 40);
        assert_eq!(cfg.mispredict_redirect_penalty, 12);
        assert_eq!(cfg.design_label(), "Cassandra+redir12+btu8+miss40");
    }

    #[test]
    fn override_matching_the_derived_policy_adds_no_suffix() {
        // Cassandra-part derives btu_partitions = Some(2); overriding with
        // the same count must not change the label (grid points collapse
        // onto the registered baseline instead of duplicating it).
        let cfg = CpuConfig::golden_cove_like()
            .with_defense(DefenseMode::CassandraPartitioned)
            .with_btu_partitions(DefenseMode::PARTITIONED_BTU_CONTEXTS);
        assert_eq!(cfg.design_label(), "Cassandra-part");
        assert_eq!(
            cfg.resolved_policy(),
            DefenseMode::CassandraPartitioned.policy()
        );
    }
}
