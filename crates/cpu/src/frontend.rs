//! The pluggable branch-source layer.
//!
//! A [`BranchSource`] is the frontend's answer to "what happens when a
//! branch is fetched?". The pipeline core never looks at the configured
//! [`crate::config::DefenseMode`]; it resolves the mode's
//! [`crate::policy::DefensePolicy`] once at construction, builds the matching
//! source with [`build_source`], and from then on only interprets
//! [`FrontendDecision`]s. Adding a new frontend scenario means implementing
//! this trait (or describing a policy that maps onto an existing source) —
//! not editing the pipeline.
//!
//! Five sources ship with the model:
//!
//! * [`BpuSource`] — the speculative baseline: PHT/BTB/RSB predict every
//!   branch (UnsafeBaseline, SPT, ProSpeCT);
//! * [`BtuSource`] — full Cassandra: crypto branches are replayed from the
//!   Branch Trace Unit, non-crypto branches use the BPU behind the
//!   crypto-range integrity check (Cassandra, +STL, +ProSpeCT, -noTC, and
//!   the way-partitioned `Cassandra-part` deployment);
//! * [`LiteSource`] — Cassandra-lite: only single-target crypto hints are
//!   honoured, every other crypto branch stalls fetch until resolve;
//! * [`FenceSource`] — the serializing lower bound: every branch stalls
//!   fetch until it resolves, so nothing ever executes speculatively;
//! * [`TournamentSource`] — the hybrid tournament: per-PC confidence
//!   counters arbitrate each crypto branch between BTU replay (hot branches
//!   that earned a trace) and the speculative BPU (cold branches).

use crate::bpu::{BpuStats, BranchPredictionUnit};
use crate::config::CpuConfig;
use crate::policy::FrontendKind;
use cassandra_btu::unit::{BranchTraceUnit, BtuStats, ContextBtuStats, VictimPolicy};
use cassandra_isa::instr::BranchKind;
use cassandra_isa::program::Program;
use cassandra_trace::hints::BranchHint;
use std::fmt;

/// The per-tenant slice of a source's frontend state, checkpointed and
/// restored by the multi-tenant simulator on each context switch. The BPU
/// (PHT counters, global history, BTB, RSB) is per-tenant architectural
/// state; the BTU is deliberately *not* here — it is the shared, partitioned
/// unit the tenants contend over.
#[derive(Debug, Default)]
pub struct TenantFrontendState {
    /// The tenant's branch predictor, `None` until its first switch-out.
    pub bpu: Option<BranchPredictionUnit>,
}

/// The per-program facts a frontend source keeps after construction: the
/// crypto PC ranges (the integrity guard) and the text length (PC-indexed
/// table sizing). Owned — sources carry no borrow of the program, so the
/// multi-tenant simulator can retarget a source at the incoming tenant's
/// program on each context switch.
#[derive(Debug, Clone, Default)]
pub struct ProgramProfile {
    crypto_ranges: Vec<std::ops::Range<usize>>,
    len: usize,
}

impl ProgramProfile {
    /// Captures `program`'s crypto ranges and text length.
    pub fn of(program: &Program) -> Self {
        ProgramProfile {
            crypto_ranges: program.crypto_ranges.clone(),
            len: program.len(),
        }
    }

    /// Whether instruction index `pc` lies inside a crypto range.
    fn is_crypto_pc(&self, pc: usize) -> bool {
        self.crypto_ranges.iter().any(|r| r.contains(&pc))
    }
}

/// One branch reaching the frontend, together with its resolved outcome.
///
/// The pipeline model is functional-directed: the architectural outcome of
/// the branch is known when it is fetched, so sources receive prediction
/// inputs and resolution feedback in one event and train themselves
/// immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// PC of the branch instruction.
    pub pc: usize,
    /// Static kind of the branch.
    pub kind: BranchKind,
    /// Resolved direction (always true for unconditional branches).
    pub taken: bool,
    /// Resolved next PC.
    pub actual_target: usize,
    /// Decode-time target for direct branches.
    pub direct_target: Option<usize>,
    /// Fall-through PC (`pc + 1`).
    pub fallthrough: usize,
    /// True if the branch lives in a crypto PC range.
    pub is_crypto: bool,
}

/// What fetch does at this branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Fetch was steered onto the correct path (predicted correctly or
    /// trace-replayed), paying `extra_latency` additional frontend cycles
    /// (e.g. Trace Cache miss streaming).
    Proceed {
        /// Extra frontend cycles before fetch resumes.
        extra_latency: u64,
    },
    /// Fetch was redirected to the wrong target: the pipeline executes a
    /// bounded wrong path from `wrong_target` and squashes at resolve.
    Mispredict {
        /// The wrongly predicted next PC.
        wrong_target: usize,
    },
    /// The frontend has no usable target: fetch stalls until the branch
    /// resolves.
    Stall,
}

/// A source's full decision for one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendDecision {
    /// What fetch does.
    pub outcome: FetchOutcome,
    /// Whether this branch keeps younger instructions speculative until it
    /// resolves. BTU-replayed crypto branches do not open a speculation
    /// window (§6.2: they are replayed, not predicted); every other branch
    /// does.
    pub opens_speculation_window: bool,
}

impl FrontendDecision {
    fn speculative(outcome: FetchOutcome) -> Self {
        FrontendDecision {
            outcome,
            opens_speculation_window: true,
        }
    }

    fn replayed(outcome: FetchOutcome) -> Self {
        FrontendDecision {
            outcome,
            opens_speculation_window: false,
        }
    }
}

/// The pluggable frontend: decides fetch behaviour at branches and tracks
/// the speculation state that must survive commits, squashes and flushes.
pub trait BranchSource: fmt::Debug {
    /// Predicts and resolves one correct-path branch (the model is
    /// functional-directed, so both happen in one call): returns the fetch
    /// decision and applies any training/speculative-cursor updates.
    fn on_branch(&mut self, event: &BranchEvent) -> FrontendDecision;

    /// The branch retired: commit architectural frontend state (the BTU's
    /// Checkpoint Table position). Called for every committed branch.
    fn on_commit(&mut self, _event: &BranchEvent) {}

    /// A wrong-path branch was fetched: advance speculative-only state (the
    /// BTU's fetch cursor); it will be rolled back by [`on_squash`].
    ///
    /// [`on_squash`]: BranchSource::on_squash
    fn on_wrong_path_branch(&mut self, _pc: usize, _is_crypto: bool) {}

    /// A misprediction squash: roll speculative frontend state back to the
    /// committed checkpoints.
    fn on_squash(&mut self) {}

    /// Whole-unit flush (context switch between crypto applications, Q4).
    /// Returns true if the source had flushable state.
    fn flush(&mut self) -> bool {
        false
    }

    /// A context switch priced as a BTU partition reassignment instead of a
    /// whole-unit flush (the Q4 partition variant): activate `context`'s
    /// partition, leaving the other partitions' residency warm. Returns true
    /// if the source had state to switch. Sources without partition support
    /// fall back to their whole-unit [`flush`] — a context switch is never
    /// cheaper than the flush-priced model just because a source ignores it.
    ///
    /// [`flush`]: BranchSource::flush
    fn on_context_switch(&mut self, _context: u64) -> bool {
        self.flush()
    }

    /// Retargets the source at the incoming tenant's program (multi-tenant
    /// context switch): the crypto-range integrity guard and any PC-indexed
    /// tables must consult the program that is about to run. Sources that
    /// never look at the program ignore this.
    fn retarget_program(&mut self, _profile: ProgramProfile) {}

    /// Exchanges the source's per-tenant frontend state (the BPU) with the
    /// given checkpoint slot: the current state moves into the slot and the
    /// slot's state (or a fresh one, on a tenant's first activation) becomes
    /// current. Sources without per-tenant state ignore this.
    fn swap_tenant_state(&mut self, _slot: &mut TenantFrontendState) {}

    /// Installs a steal-victim policy on the source's BTU, if it drives one
    /// (the OS-scheduler model of the multi-tenant simulator).
    fn set_btu_victim_policy(&mut self, _policy: VictimPolicy) {}

    /// Registers `context`'s own encoded traces on the source's BTU, if it
    /// drives one (multi-tenant consolidation: each tenant replays its own
    /// program's traces through the shared unit).
    fn register_btu_context(
        &mut self,
        _context: u64,
        _encoded: cassandra_btu::encode::EncodedTraces,
    ) {
    }

    /// Accumulated branch-predictor statistics.
    fn bpu_stats(&self) -> BpuStats {
        BpuStats::default()
    }

    /// Accumulated BTU statistics, if this source drives one.
    fn btu_stats(&self) -> Option<BtuStats> {
        None
    }

    /// Per-context BTU statistics, if this source drives a BTU that has
    /// seen context switches (empty otherwise).
    fn btu_context_stats(&self) -> Vec<ContextBtuStats> {
        Vec::new()
    }
}

/// Swaps a source's BPU with a tenant checkpoint slot, materializing a
/// fresh same-geometry predictor on a tenant's first activation.
fn swap_bpu(bpu: &mut BranchPredictionUnit, slot: &mut TenantFrontendState) {
    let incoming = slot.bpu.take().unwrap_or_else(|| bpu.fresh_like());
    slot.bpu = Some(std::mem::replace(bpu, incoming));
}

/// BPU prediction with resolution feedback, shared by every source that
/// predicts non-crypto branches. When `crypto_guard` is set, predictions
/// that would speculatively redirect fetch into a crypto PC range are
/// converted into stalls (the Cassandra integrity check).
fn bpu_outcome(
    bpu: &mut BranchPredictionUnit,
    event: &BranchEvent,
    crypto_guard: Option<&ProgramProfile>,
) -> FetchOutcome {
    let prediction = bpu.predict(event.pc, event.kind, event.direct_target, event.fallthrough);
    if let (Some(profile), Some(target)) = (crypto_guard, prediction.target) {
        if profile.is_crypto_pc(target) {
            bpu.update(event.pc, event.kind, event.taken, event.actual_target);
            return FetchOutcome::Stall;
        }
    }
    let outcome = match prediction.target {
        Some(predicted) if predicted == event.actual_target => {
            FetchOutcome::Proceed { extra_latency: 0 }
        }
        Some(predicted) => FetchOutcome::Mispredict {
            wrong_target: predicted,
        },
        // No prediction available (BTB/RSB miss): wait for resolution.
        None => FetchOutcome::Stall,
    };
    bpu.update(event.pc, event.kind, event.taken, event.actual_target);
    outcome
}

/// The configured BPU geometry, shared by every source that predicts.
fn bpu_for(config: &CpuConfig) -> BranchPredictionUnit {
    BranchPredictionUnit::new(config.pht_entries, config.btb_entries, config.rsb_entries)
}

/// Flushes an optional BTU; true if there was one to flush.
fn flush_btu(btu: &mut Option<BranchTraceUnit>) -> bool {
    match btu {
        Some(btu) => {
            btu.flush();
            true
        }
        None => false,
    }
}

/// The speculative baseline: the BPU predicts every branch.
#[derive(Debug)]
pub struct BpuSource {
    bpu: BranchPredictionUnit,
}

impl BpuSource {
    /// A BPU source with the configured table geometry.
    pub fn new(config: &CpuConfig) -> Self {
        BpuSource {
            bpu: bpu_for(config),
        }
    }
}

impl BranchSource for BpuSource {
    fn on_branch(&mut self, event: &BranchEvent) -> FrontendDecision {
        FrontendDecision::speculative(bpu_outcome(&mut self.bpu, event, None))
    }

    fn swap_tenant_state(&mut self, slot: &mut TenantFrontendState) {
        swap_bpu(&mut self.bpu, slot);
    }

    fn bpu_stats(&self) -> BpuStats {
        self.bpu.stats()
    }
}

/// Full Cassandra: crypto branches replay the BTU trace, non-crypto branches
/// use the BPU behind the crypto-range integrity check.
#[derive(Debug)]
pub struct BtuSource {
    profile: ProgramProfile,
    bpu: BranchPredictionUnit,
    btu: Option<BranchTraceUnit>,
}

impl BtuSource {
    /// A BTU-backed source; `btu` is `None` when no traces were provided
    /// (every crypto branch then stalls until it resolves).
    pub fn new(program: &Program, config: &CpuConfig, btu: Option<BranchTraceUnit>) -> Self {
        BtuSource {
            profile: ProgramProfile::of(program),
            bpu: bpu_for(config),
            btu,
        }
    }
}

impl BranchSource for BtuSource {
    fn on_branch(&mut self, event: &BranchEvent) -> FrontendDecision {
        if !event.is_crypto {
            return FrontendDecision::speculative(bpu_outcome(
                &mut self.bpu,
                event,
                Some(&self.profile),
            ));
        }
        let outcome = match &mut self.btu {
            Some(btu) => {
                let lookup = btu.fetch_lookup(event.pc);
                if lookup.needs_stall {
                    // No usable trace: stall until the branch resolves
                    // (footnote 4 / §4.3).
                    FetchOutcome::Stall
                } else {
                    debug_assert_eq!(
                        lookup.next_pc,
                        Some(event.actual_target),
                        "BTU must replay the sequential trace (branch at {})",
                        event.pc
                    );
                    FetchOutcome::Proceed {
                        extra_latency: lookup.extra_latency,
                    }
                }
            }
            None => FetchOutcome::Stall,
        };
        FrontendDecision::replayed(outcome)
    }

    fn on_commit(&mut self, event: &BranchEvent) {
        if event.is_crypto {
            if let Some(btu) = &mut self.btu {
                btu.commit_branch(event.pc);
            }
        }
    }

    fn on_wrong_path_branch(&mut self, pc: usize, is_crypto: bool) {
        // A wrong-path crypto branch consults the BTU and advances its
        // speculative cursor; the squash rolls it back.
        if is_crypto {
            if let Some(btu) = &mut self.btu {
                let _ = btu.fetch_lookup(pc);
            }
        }
    }

    fn on_squash(&mut self) {
        if let Some(btu) = &mut self.btu {
            btu.squash();
        }
    }

    fn flush(&mut self) -> bool {
        flush_btu(&mut self.btu)
    }

    fn on_context_switch(&mut self, context: u64) -> bool {
        // Forward the BTU's verdict: registering the first context or
        // re-activating the current one is not a switch, so the pipeline's
        // `context_switches` agrees with the BTU's `partition_switches`.
        match &mut self.btu {
            Some(btu) => btu.switch_context(context),
            None => false,
        }
    }

    fn retarget_program(&mut self, profile: ProgramProfile) {
        self.profile = profile;
    }

    fn swap_tenant_state(&mut self, slot: &mut TenantFrontendState) {
        swap_bpu(&mut self.bpu, slot);
    }

    fn set_btu_victim_policy(&mut self, policy: VictimPolicy) {
        if let Some(btu) = &mut self.btu {
            btu.set_victim_policy(policy);
        }
    }

    fn register_btu_context(
        &mut self,
        context: u64,
        encoded: cassandra_btu::encode::EncodedTraces,
    ) {
        if let Some(btu) = &mut self.btu {
            btu.register_context(context, encoded);
        }
    }

    fn bpu_stats(&self) -> BpuStats {
        self.bpu.stats()
    }

    fn btu_stats(&self) -> Option<BtuStats> {
        self.btu.as_ref().map(BranchTraceUnit::stats)
    }

    fn btu_context_stats(&self) -> Vec<ContextBtuStats> {
        self.btu
            .as_ref()
            .map_or_else(Vec::new, |btu| btu.context_stats().to_vec())
    }
}

/// Cassandra-lite (Q3): single-target crypto branches follow their hint,
/// every other crypto branch stalls fetch until it resolves. No Trace Cache
/// or Checkpoint Table is modelled — the unit only reads hint bytes.
#[derive(Debug)]
pub struct LiteSource {
    profile: ProgramProfile,
    bpu: BranchPredictionUnit,
    btu: Option<BranchTraceUnit>,
}

impl LiteSource {
    /// A hint-only source; `btu` supplies the encoded hints when present.
    pub fn new(program: &Program, config: &CpuConfig, btu: Option<BranchTraceUnit>) -> Self {
        LiteSource {
            profile: ProgramProfile::of(program),
            bpu: bpu_for(config),
            btu,
        }
    }
}

impl BranchSource for LiteSource {
    fn on_branch(&mut self, event: &BranchEvent) -> FrontendDecision {
        if !event.is_crypto {
            return FrontendDecision::speculative(bpu_outcome(
                &mut self.bpu,
                event,
                Some(&self.profile),
            ));
        }
        let hint = self.btu.as_ref().and_then(|b| b.hint(event.pc));
        let outcome = match hint {
            Some(BranchHint::SingleTarget { .. }) => FetchOutcome::Proceed { extra_latency: 0 },
            _ => FetchOutcome::Stall,
        };
        FrontendDecision::replayed(outcome)
    }

    fn flush(&mut self) -> bool {
        flush_btu(&mut self.btu)
    }

    fn retarget_program(&mut self, profile: ProgramProfile) {
        self.profile = profile;
    }

    fn swap_tenant_state(&mut self, slot: &mut TenantFrontendState) {
        swap_bpu(&mut self.bpu, slot);
    }

    fn bpu_stats(&self) -> BpuStats {
        self.bpu.stats()
    }

    fn btu_stats(&self) -> Option<BtuStats> {
        self.btu.as_ref().map(BranchTraceUnit::stats)
    }
}

/// The serializing lower bound: every branch stalls fetch until it resolves,
/// so no instruction ever executes speculatively.
#[derive(Debug, Default)]
pub struct FenceSource;

impl BranchSource for FenceSource {
    fn on_branch(&mut self, _event: &BranchEvent) -> FrontendDecision {
        FrontendDecision::speculative(FetchOutcome::Stall)
    }
}

/// Default number of executions a crypto branch needs before the tournament
/// frontend trusts its BTU trace over the BPU (its trace is "installed").
pub const TOURNAMENT_PROMOTE_THRESHOLD: u32 = 4;

/// The hybrid tournament frontend: per-PC confidence counters arbitrate each
/// crypto branch between BTU replay and the speculative BPU, modelling a
/// deployment where only hot crypto branches earn traces.
///
/// A crypto branch starts *cold*: the BPU predicts it speculatively (no
/// crypto-range guard — its targets live inside the range by construction),
/// so it can mispredict and leak transiently, exactly like the unsafe
/// baseline. Every execution increments its confidence counter; once the
/// counter saturates at the promotion threshold the branch is *hot* and all
/// further executions replay the BTU trace without opening a speculation
/// window. The BTU's replay cursors are advanced from the very first
/// execution (the unit observes the branch while its trace is being
/// installed), so promotion resumes the trace at the correct position.
/// Non-crypto branches use the guarded BPU, as under full Cassandra.
#[derive(Debug)]
pub struct TournamentSource {
    profile: ProgramProfile,
    bpu: BranchPredictionUnit,
    btu: Option<BranchTraceUnit>,
    /// Per-context confidence tables, keyed by application context: each
    /// context's counters survive switches away and back, exactly like its
    /// BTU partition's residency (a whole-unit flush drops them all). Each
    /// table is dense, indexed by PC — crypto branches hit it on every
    /// execution, so the counter must be one load away. Tables grow on
    /// demand so a retarget at a longer tenant program cannot index out of
    /// bounds.
    confidence: std::collections::BTreeMap<u64, Vec<u32>>,
    active_context: u64,
    threshold: u32,
}

impl TournamentSource {
    /// A tournament source with the given promotion threshold; `btu` is
    /// `None` when no traces were provided (every crypto branch then stays
    /// on the BPU forever — nothing can be promoted).
    pub fn new(
        program: &Program,
        config: &CpuConfig,
        btu: Option<BranchTraceUnit>,
        threshold: u32,
    ) -> Self {
        TournamentSource {
            profile: ProgramProfile::of(program),
            bpu: bpu_for(config),
            btu,
            confidence: std::collections::BTreeMap::new(),
            active_context: 0,
            threshold,
        }
    }

    /// The promotion threshold in use.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The active context's confidence counter of a branch (saturates at the
    /// threshold).
    pub fn confidence(&self, pc: usize) -> u32 {
        self.confidence
            .get(&self.active_context)
            .and_then(|table| table.get(pc))
            .copied()
            .unwrap_or(0)
    }
}

impl BranchSource for TournamentSource {
    fn on_branch(&mut self, event: &BranchEvent) -> FrontendDecision {
        if !event.is_crypto {
            return FrontendDecision::speculative(bpu_outcome(
                &mut self.bpu,
                event,
                Some(&self.profile),
            ));
        }
        // The BTU tracks the branch from its first execution so that the
        // replay position is correct at promotion time; the *decision* below
        // arbitrates which component steers fetch.
        let lookup = self.btu.as_mut().map(|btu| btu.fetch_lookup(event.pc));
        let len = self.profile.len.max(event.pc + 1);
        let table = self.confidence.entry(self.active_context).or_default();
        if table.len() < len {
            table.resize(len, 0);
        }
        let conf = &mut table[event.pc];
        let hot = *conf >= self.threshold;
        *conf = (*conf + 1).min(self.threshold);
        if hot {
            let outcome = match lookup {
                Some(lookup) if !lookup.needs_stall => {
                    debug_assert_eq!(
                        lookup.next_pc,
                        Some(event.actual_target),
                        "promoted branch at {} must replay the sequential trace",
                        event.pc
                    );
                    FetchOutcome::Proceed {
                        extra_latency: lookup.extra_latency,
                    }
                }
                // Promoted but unreplayable (input-dependent hint / no
                // trace): stall until resolve, as under full Cassandra.
                _ => FetchOutcome::Stall,
            };
            FrontendDecision::replayed(outcome)
        } else {
            FrontendDecision::speculative(bpu_outcome(&mut self.bpu, event, None))
        }
    }

    fn on_commit(&mut self, event: &BranchEvent) {
        if event.is_crypto {
            if let Some(btu) = &mut self.btu {
                btu.commit_branch(event.pc);
            }
        }
    }

    fn on_wrong_path_branch(&mut self, pc: usize, is_crypto: bool) {
        if is_crypto {
            if let Some(btu) = &mut self.btu {
                let _ = btu.fetch_lookup(pc);
            }
        }
    }

    fn on_squash(&mut self) {
        if let Some(btu) = &mut self.btu {
            btu.squash();
        }
    }

    fn flush(&mut self) -> bool {
        // A whole-unit flush drops every context's confidence table with the
        // traces: all branches start cold again.
        self.confidence.clear();
        flush_btu(&mut self.btu)
    }

    fn on_context_switch(&mut self, context: u64) -> bool {
        // Each context keeps its own confidence table (selected here), just
        // as its BTU partition keeps its residency. The BTU's verdict is
        // forwarded: registration and same-context re-activation count
        // nothing.
        self.active_context = context;
        match &mut self.btu {
            Some(btu) => btu.switch_context(context),
            None => false,
        }
    }

    fn retarget_program(&mut self, profile: ProgramProfile) {
        self.profile = profile;
    }

    fn swap_tenant_state(&mut self, slot: &mut TenantFrontendState) {
        swap_bpu(&mut self.bpu, slot);
    }

    fn set_btu_victim_policy(&mut self, policy: VictimPolicy) {
        if let Some(btu) = &mut self.btu {
            btu.set_victim_policy(policy);
        }
    }

    fn register_btu_context(
        &mut self,
        context: u64,
        encoded: cassandra_btu::encode::EncodedTraces,
    ) {
        if let Some(btu) = &mut self.btu {
            btu.register_context(context, encoded);
        }
    }

    fn bpu_stats(&self) -> BpuStats {
        self.bpu.stats()
    }

    fn btu_stats(&self) -> Option<BtuStats> {
        self.btu.as_ref().map(BranchTraceUnit::stats)
    }

    fn btu_context_stats(&self) -> Vec<ContextBtuStats> {
        self.btu
            .as_ref()
            .map_or_else(Vec::new, |btu| btu.context_stats().to_vec())
    }
}

/// Builds the branch source selected by the already-resolved defense
/// policy, applying any Trace Cache geometry override.
pub fn build_source(
    program: &Program,
    config: &CpuConfig,
    policy: &crate::policy::DefensePolicy,
    mut btu: Option<BranchTraceUnit>,
) -> Box<dyn BranchSource> {
    if let (Some(entries), Some(btu)) = (policy.trace_cache_entries, btu.as_mut()) {
        btu.set_trace_cache_entries(entries);
    }
    if let (Some(partitions), Some(btu)) = (policy.btu_partitions, btu.as_mut()) {
        btu.set_partitions(partitions);
    }
    match policy.frontend {
        FrontendKind::Bpu => Box::new(BpuSource::new(config)),
        FrontendKind::Btu => Box::new(BtuSource::new(program, config, btu)),
        FrontendKind::BtuLite => Box::new(LiteSource::new(program, config, btu)),
        FrontendKind::Fence => Box::new(FenceSource),
        FrontendKind::Tournament => Box::new(TournamentSource::new(
            program,
            config,
            btu,
            policy
                .tournament_threshold
                .unwrap_or(TOURNAMENT_PROMOTE_THRESHOLD),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;

    fn event(pc: usize, taken: bool, actual: usize, direct: Option<usize>) -> BranchEvent {
        BranchEvent {
            pc,
            kind: BranchKind::CondDirect,
            taken,
            actual_target: actual,
            direct_target: direct,
            fallthrough: pc + 1,
            is_crypto: false,
        }
    }

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        b.begin_crypto();
        b.nop();
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn fence_source_stalls_everything() {
        let mut src = FenceSource;
        let decision = src.on_branch(&event(4, true, 9, Some(9)));
        assert_eq!(decision.outcome, FetchOutcome::Stall);
        assert!(decision.opens_speculation_window);
        assert_eq!(src.bpu_stats(), BpuStats::default());
        assert!(src.btu_stats().is_none());
        assert!(!src.flush());
    }

    #[test]
    fn bpu_source_predicts_and_trains() {
        let config = CpuConfig::golden_cove_like();
        let mut src = BpuSource::new(&config);
        // Weakly-taken initial state: a taken branch is predicted correctly.
        let d = src.on_branch(&event(10, true, 2, Some(2)));
        assert_eq!(d.outcome, FetchOutcome::Proceed { extra_latency: 0 });
        // A never-taken branch mispredicts while the counter is taken.
        let d = src.on_branch(&event(20, false, 21, Some(99)));
        assert_eq!(d.outcome, FetchOutcome::Mispredict { wrong_target: 99 });
        assert!(src.bpu_stats().pht_lookups >= 2);
        assert!(src.bpu_stats().updates >= 2);
    }

    #[test]
    fn btu_source_without_traces_stalls_crypto_branches() {
        let program = tiny_program();
        let config = CpuConfig::golden_cove_like();
        let mut src = BtuSource::new(&program, &config, None);
        let mut e = event(0, true, 0, Some(0));
        e.is_crypto = true;
        let d = src.on_branch(&e);
        assert_eq!(d.outcome, FetchOutcome::Stall);
        assert!(
            !d.opens_speculation_window,
            "replayed branches open no window"
        );
        assert!(!src.flush(), "nothing to flush without a BTU");
    }

    fn nested_crypto_program() -> Program {
        use cassandra_isa::reg::{A0, A1, ZERO};
        let mut b = ProgramBuilder::new("nested");
        b.begin_crypto();
        b.li(A0, 3);
        b.label("outer");
        b.li(A1, 2);
        b.label("inner");
        b.addi(A1, A1, -1);
        b.bne(A1, ZERO, "inner");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "outer");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    fn btu_for(program: &Program) -> BranchTraceUnit {
        use cassandra_btu::encode::EncodedTraces;
        use cassandra_btu::unit::BtuConfig;
        let bundle = cassandra_trace::genproc::generate_traces(program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(program, &bundle);
        BranchTraceUnit::new(BtuConfig::default(), encoded)
    }

    #[test]
    fn tournament_promotes_a_branch_after_the_threshold() {
        // The inner-loop branch of the nested program (PC 3) executes six
        // times; with a threshold of 2 the first two decisions are
        // speculative (BPU) and every later one is a BTU replay.
        let program = nested_crypto_program();
        let raw = cassandra_trace::collect::collect_raw_traces(&program, 100_000).unwrap();
        let inner_pc = 3;
        let targets: &[usize] = raw
            .iter()
            .find(|(pc, _)| **pc == inner_pc)
            .map(|(_, t)| t.targets.as_slice())
            .unwrap();
        let config = CpuConfig::golden_cove_like();
        let mut src = TournamentSource::new(&program, &config, Some(btu_for(&program)), 2);
        for (i, &target) in targets.iter().enumerate() {
            let mut e = event(inner_pc, target != inner_pc + 1, target, Some(targets[0]));
            e.is_crypto = true;
            let d = src.on_branch(&e);
            src.on_commit(&e);
            if i < 2 {
                assert!(
                    d.opens_speculation_window,
                    "execution {i} must still be speculative (cold)"
                );
            } else {
                assert!(
                    !d.opens_speculation_window,
                    "execution {i} must be a BTU replay (hot)"
                );
                assert_eq!(
                    d.outcome,
                    FetchOutcome::Proceed { extra_latency: 0 },
                    "execution {i} replays the exact trace"
                );
            }
        }
        assert_eq!(src.confidence(inner_pc), src.threshold(), "saturated");
        assert!(
            src.bpu_stats().pht_lookups >= 2,
            "the BPU handled cold runs"
        );
        assert!(src.btu_stats().unwrap().lookups >= targets.len() as u64);
    }

    #[test]
    fn tournament_without_traces_never_promotes() {
        let program = tiny_program();
        let config = CpuConfig::golden_cove_like();
        let mut src = TournamentSource::new(&program, &config, None, 0);
        let mut e = event(0, true, 0, Some(0));
        e.is_crypto = true;
        // Threshold 0 means instantly hot, but with no BTU the replay falls
        // back to a stall (as under trace-less Cassandra).
        let d = src.on_branch(&e);
        assert_eq!(d.outcome, FetchOutcome::Stall);
        assert!(!d.opens_speculation_window);
        assert!(!src.on_context_switch(1), "no partition state to switch");
    }

    #[test]
    fn tournament_confidence_is_per_context() {
        // Promotion earned by context 0 must not leak to context 1, and must
        // survive switching away and back — mirroring partition residency.
        let program = nested_crypto_program();
        let config = CpuConfig::golden_cove_like();
        let mut src = TournamentSource::new(&program, &config, Some(btu_for(&program)), 1);
        // Register the initial context (not a counted switch).
        assert!(!src.on_context_switch(0));
        let mut e = event(3, true, 2, Some(2));
        e.is_crypto = true;
        src.on_branch(&e);
        src.on_commit(&e);
        assert_eq!(src.confidence(3), 1, "context 0 promoted the branch");
        assert!(src.on_context_switch(1));
        assert_eq!(src.confidence(3), 0, "context 1 starts cold");
        assert!(src.on_context_switch(0));
        assert_eq!(src.confidence(3), 1, "context 0's table survived");
        // A whole-unit flush drops every context's table.
        assert!(src.flush());
        assert_eq!(src.confidence(3), 0);
    }

    #[test]
    fn lite_source_prices_context_switches_as_flushes() {
        // LiteSource has no partition state: the conservative default routes
        // a context switch through its whole-unit flush.
        let program = nested_crypto_program();
        let config = CpuConfig::golden_cove_like();
        let mut src = LiteSource::new(&program, &config, Some(btu_for(&program)));
        assert!(src.on_context_switch(1));
        assert_eq!(src.btu_stats().unwrap().flushes, 1);
    }

    #[test]
    fn btu_source_forwards_context_switches() {
        let program = nested_crypto_program();
        let config = CpuConfig::golden_cove_like();
        let mut src = BtuSource::new(&program, &config, Some(btu_for(&program)));
        // The first call registers the initial context: nothing counted.
        assert!(!src.on_context_switch(1));
        assert_eq!(src.btu_stats().unwrap().partition_switches, 0);
        // A real change forwards the BTU's verdict and counts once.
        assert!(src.on_context_switch(2));
        assert_eq!(src.btu_stats().unwrap().partition_switches, 1);
        // Re-activating the active context is a no-op, in agreement.
        assert!(!src.on_context_switch(2));
        assert_eq!(src.btu_stats().unwrap().partition_switches, 1);
        let mut none = BtuSource::new(&program, &config, None);
        assert!(!none.on_context_switch(1));
    }

    #[test]
    fn swap_tenant_state_exchanges_the_bpu() {
        let config = CpuConfig::golden_cove_like();
        let mut src = BpuSource::new(&config);
        src.on_branch(&event(10, true, 2, Some(2)));
        let trained = src.bpu_stats();
        assert!(trained.pht_lookups >= 1);
        // Switching to a fresh tenant materializes an untrained BPU…
        let mut tenant_a = TenantFrontendState::default();
        src.swap_tenant_state(&mut tenant_a);
        assert_eq!(src.bpu_stats(), BpuStats::default());
        assert!(tenant_a.bpu.is_some(), "the trained BPU went into the slot");
        // …and swapping back restores the trained one exactly.
        src.swap_tenant_state(&mut tenant_a);
        assert_eq!(src.bpu_stats(), trained);
    }

    #[test]
    fn integrity_check_blocks_speculative_entry_into_crypto_ranges() {
        let program = tiny_program(); // PC 0 is crypto.
        let config = CpuConfig::golden_cove_like();
        let mut src = BtuSource::new(&program, &config, None);
        // Non-crypto branch whose predicted target (taken, direct target 0)
        // lands inside the crypto range: the frontend must stall instead of
        // redirecting speculatively.
        let e = event(5, true, 0, Some(0));
        let d = src.on_branch(&e);
        assert_eq!(d.outcome, FetchOutcome::Stall);
        assert!(d.opens_speculation_window);
    }
}
