//! Branch Prediction Unit: PHT (conditional direction), BTB (indirect
//! targets) and RSB (return targets), the three speculation primitives the
//! paper attacks and Cassandra bypasses for crypto code.
//!
//! The direction predictor is a gshare-style global-history predictor
//! standing in for the LTAGE predictor of the paper's Table 3: what matters
//! for the evaluation is that easily-predictable crypto loop branches are
//! mostly predicted correctly and that mispredictions cost squashes — both
//! properties hold for gshare.

use cassandra_isa::instr::BranchKind;
use serde::{Deserialize, Serialize};

/// `Some(n - 1)` when `n` is a power of two — a modulo-by-mask shortcut.
fn mask_of(n: usize) -> Option<usize> {
    n.is_power_of_two().then(|| n - 1)
}

/// Statistics of BPU usage (also feeds the power model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BpuStats {
    /// Direction predictions made.
    pub pht_lookups: u64,
    /// Target predictions made (BTB).
    pub btb_lookups: u64,
    /// Return-address predictions made (RSB).
    pub rsb_lookups: u64,
    /// Predictor updates.
    pub updates: u64,
}

/// The branch prediction unit.
#[derive(Debug, Clone)]
pub struct BranchPredictionUnit {
    pht: Vec<u8>,
    /// `pht.len() - 1` when the PHT size is a power of two (the configured
    /// geometry), so indexing is a mask, not a hardware division.
    pht_mask: Option<usize>,
    global_history: u64,
    btb: Vec<Option<(usize, usize)>>,
    /// As `pht_mask`, for the BTB.
    btb_mask: Option<usize>,
    rsb: Vec<usize>,
    rsb_capacity: usize,
    stats: BpuStats,
}

/// A predicted outcome for a fetched branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted next PC, if the BPU can produce one.
    pub target: Option<usize>,
    /// For conditional branches, the predicted direction.
    pub taken: bool,
}

impl BranchPredictionUnit {
    /// Creates a predictor with the given table sizes.
    pub fn new(pht_entries: usize, btb_entries: usize, rsb_entries: usize) -> Self {
        BranchPredictionUnit {
            // Initialise to weakly taken: loop back-edges start out predicted
            // taken, and never-taken "guard" branches mispredict on first
            // encounter — the classic Spectre training state.
            pht: vec![2u8; pht_entries.max(1)],
            pht_mask: mask_of(pht_entries.max(1)),
            global_history: 0,
            btb: vec![None; btb_entries.max(1)],
            btb_mask: mask_of(btb_entries.max(1)),
            rsb: Vec::new(),
            rsb_capacity: rsb_entries.max(1),
            stats: BpuStats::default(),
        }
    }

    /// A fresh, untrained predictor with the same table geometry.
    pub fn fresh_like(&self) -> Self {
        Self::new(self.pht.len(), self.btb.len(), self.rsb_capacity)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BpuStats {
        self.stats
    }

    #[inline]
    fn pht_index(&self, pc: usize) -> usize {
        let hashed = ((pc as u64) ^ self.global_history) as usize;
        match self.pht_mask {
            Some(mask) => hashed & mask,
            None => hashed % self.pht.len(),
        }
    }

    #[inline]
    fn btb_index(&self, pc: usize) -> usize {
        match self.btb_mask {
            Some(mask) => pc & mask,
            None => pc % self.btb.len(),
        }
    }

    /// Predicts the outcome of a branch at `pc` with fall-through
    /// `fallthrough` and (for direct branches) static target `direct_target`.
    pub fn predict(
        &mut self,
        pc: usize,
        kind: BranchKind,
        direct_target: Option<usize>,
        fallthrough: usize,
    ) -> Prediction {
        match kind {
            BranchKind::CondDirect => {
                self.stats.pht_lookups += 1;
                let taken = self.pht[self.pht_index(pc)] >= 2;
                let target = if taken {
                    direct_target
                } else {
                    Some(fallthrough)
                };
                Prediction { target, taken }
            }
            BranchKind::UncondDirect | BranchKind::Call => {
                // Direct targets are known at decode; calls also push the RSB.
                if kind == BranchKind::Call {
                    self.push_return(fallthrough);
                }
                Prediction {
                    target: direct_target,
                    taken: true,
                }
            }
            BranchKind::Indirect | BranchKind::CallIndirect => {
                self.stats.btb_lookups += 1;
                let entry = self.btb[self.btb_index(pc)];
                let target = entry.and_then(|(tag, t)| if tag == pc { Some(t) } else { None });
                if kind == BranchKind::CallIndirect {
                    self.push_return(fallthrough);
                }
                Prediction {
                    target,
                    taken: true,
                }
            }
            BranchKind::Return => {
                self.stats.rsb_lookups += 1;
                let target = self.rsb.pop();
                Prediction {
                    target,
                    taken: true,
                }
            }
        }
    }

    /// Updates the predictor with the resolved outcome of a branch.
    pub fn update(&mut self, pc: usize, kind: BranchKind, taken: bool, target: usize) {
        self.stats.updates += 1;
        match kind {
            BranchKind::CondDirect => {
                let idx = self.pht_index(pc);
                let counter = &mut self.pht[idx];
                if taken {
                    *counter = (*counter + 1).min(3);
                } else {
                    *counter = counter.saturating_sub(1);
                }
                self.global_history = (self.global_history << 1) | u64::from(taken);
            }
            BranchKind::Indirect | BranchKind::CallIndirect => {
                let idx = self.btb_index(pc);
                self.btb[idx] = Some((pc, target));
            }
            _ => {}
        }
    }

    fn push_return(&mut self, return_pc: usize) {
        if self.rsb.len() == self.rsb_capacity {
            self.rsb.remove(0);
        }
        self.rsb.push(return_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpu() -> BranchPredictionUnit {
        BranchPredictionUnit::new(1024, 64, 8)
    }

    #[test]
    fn loop_branch_learns_taken() {
        let mut b = bpu();
        // Train: taken many times.
        for _ in 0..8 {
            let p = b.predict(10, BranchKind::CondDirect, Some(2), 11);
            b.update(10, BranchKind::CondDirect, true, 2);
            let _ = p;
        }
        let p = b.predict(10, BranchKind::CondDirect, Some(2), 11);
        assert!(p.taken);
        assert_eq!(p.target, Some(2));
    }

    #[test]
    fn never_taken_branch_mispredicts_first_then_learns() {
        let mut b = bpu();
        let first = b.predict(20, BranchKind::CondDirect, Some(99), 21);
        assert!(first.taken, "weakly-taken initial state");
        b.update(20, BranchKind::CondDirect, false, 21);
        b.update(20, BranchKind::CondDirect, false, 21);
        let later = b.predict(20, BranchKind::CondDirect, Some(99), 21);
        assert!(!later.taken);
        assert_eq!(later.target, Some(21));
    }

    #[test]
    fn btb_caches_indirect_targets() {
        let mut b = bpu();
        assert_eq!(b.predict(5, BranchKind::Indirect, None, 6).target, None);
        b.update(5, BranchKind::Indirect, true, 77);
        assert_eq!(b.predict(5, BranchKind::Indirect, None, 6).target, Some(77));
    }

    #[test]
    fn rsb_predicts_matching_returns() {
        let mut b = bpu();
        b.predict(3, BranchKind::Call, Some(50), 4);
        b.predict(60, BranchKind::Call, Some(80), 61);
        assert_eq!(b.predict(81, BranchKind::Return, None, 82).target, Some(61));
        assert_eq!(b.predict(51, BranchKind::Return, None, 52).target, Some(4));
        assert_eq!(
            b.predict(51, BranchKind::Return, None, 52).target,
            None,
            "underflow"
        );
    }

    #[test]
    fn rsb_overflow_drops_oldest() {
        let mut b = BranchPredictionUnit::new(16, 16, 2);
        b.predict(1, BranchKind::Call, Some(100), 2);
        b.predict(3, BranchKind::Call, Some(100), 4);
        b.predict(5, BranchKind::Call, Some(100), 6);
        assert_eq!(b.predict(0, BranchKind::Return, None, 1).target, Some(6));
        assert_eq!(b.predict(0, BranchKind::Return, None, 1).target, Some(4));
        assert_eq!(b.predict(0, BranchKind::Return, None, 1).target, None);
    }

    #[test]
    fn stats_count_lookups() {
        let mut b = bpu();
        b.predict(1, BranchKind::CondDirect, Some(5), 2);
        b.predict(2, BranchKind::Indirect, None, 3);
        b.predict(3, BranchKind::Return, None, 4);
        let s = b.stats();
        assert_eq!(s.pht_lookups, 1);
        assert_eq!(s.btb_lookups, 1);
        assert_eq!(s.rsb_lookups, 1);
    }
}
