//! Page-granular taint bitmap for speculative memory state.
//!
//! The pipeline tracks secret taint per 8-byte memory granule (the store
//! forwarding granularity). A `HashSet<u64>` of granule addresses works but
//! hashes on every load and — worse — must be cloned wholesale to checkpoint
//! around wrong-path excursions. [`TaintSet`] instead mirrors the sparse
//! page layout of [`cassandra_isa::memory::Memory`]: a sorted `Vec` of
//! (page index, 512-bit granule bitmap) pairs with a last-page hint, so the
//! common same-page probe is two array indexings and no hashing, and the
//! whole structure is cheap to scan.

use std::cell::Cell;

/// Bytes per page, matching [`cassandra_isa::memory::PAGE_SIZE`].
const PAGE_SIZE: u64 = 4096;
/// One bit per 8-byte granule: 512 bits = eight `u64` words per page.
const WORDS_PER_PAGE: usize = (PAGE_SIZE / 8 / 64) as usize;

/// Sparse per-granule taint bits, organised as 4 KiB pages.
///
/// Addresses passed in must be granule-aligned (the pipeline always masks
/// with `granule()` first); the low three bits are ignored regardless.
#[derive(Debug, Clone, Default)]
pub struct TaintSet {
    /// (page index, granule bitmap) pairs, sorted by page index.
    pages: Vec<(u64, Box<[u64; WORDS_PER_PAGE]>)>,
    /// Index into `pages` of the most recently probed page. Pure cache,
    /// never observable.
    hint: Cell<usize>,
}

impl TaintSet {
    /// Creates an empty taint set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize, u64) {
        let page = addr / PAGE_SIZE;
        let bit = ((addr % PAGE_SIZE) / 8) as usize;
        (page, bit / 64, 1u64 << (bit % 64))
    }

    #[inline]
    fn page_slot(&self, page: u64) -> Option<usize> {
        let hint = self.hint.get();
        if let Some((p, _)) = self.pages.get(hint) {
            if *p == page {
                return Some(hint);
            }
        }
        match self.pages.binary_search_by_key(&page, |(p, _)| *p) {
            Ok(i) => {
                self.hint.set(i);
                Some(i)
            }
            Err(_) => None,
        }
    }

    /// Whether the granule containing `addr` is tainted.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let (page, word, mask) = Self::split(addr);
        match self.page_slot(page) {
            Some(i) => self.pages[i].1[word] & mask != 0,
            None => false,
        }
    }

    /// Marks the granule containing `addr` as tainted.
    #[inline]
    pub fn insert(&mut self, addr: u64) {
        let (page, word, mask) = Self::split(addr);
        let i = match self.page_slot(page) {
            Some(i) => i,
            None => {
                let i = self
                    .pages
                    .binary_search_by_key(&page, |(p, _)| *p)
                    .unwrap_err();
                self.pages
                    .insert(i, (page, Box::new([0u64; WORDS_PER_PAGE])));
                self.hint.set(i);
                i
            }
        };
        self.pages[i].1[word] |= mask;
    }

    /// Clears the taint of the granule containing `addr`. Emptied pages are
    /// kept: stores churn the same working set, so the page is about to be
    /// reused anyway.
    #[inline]
    pub fn remove(&mut self, addr: u64) {
        let (page, word, mask) = Self::split(addr);
        if let Some(i) = self.page_slot(page) {
            self.pages[i].1[word] &= !mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut t = TaintSet::new();
        assert!(!t.contains(0x1000));
        t.insert(0x1000);
        t.insert(0x1008);
        assert!(t.contains(0x1000));
        assert!(t.contains(0x1008));
        assert!(!t.contains(0x1010));
        t.remove(0x1000);
        assert!(!t.contains(0x1000));
        assert!(t.contains(0x1008));
    }

    #[test]
    fn low_bits_are_ignored() {
        let mut t = TaintSet::new();
        t.insert(0x2000);
        assert!(t.contains(0x2007), "same granule");
        assert!(!t.contains(0x2008), "next granule");
        t.remove(0x2003);
        assert!(!t.contains(0x2000));
    }

    #[test]
    fn spans_many_pages() {
        let mut t = TaintSet::new();
        let addrs: Vec<u64> = (0..32).map(|i| i * 3 * PAGE_SIZE + 8 * i).collect();
        for &a in &addrs {
            t.insert(a);
        }
        for &a in &addrs {
            assert!(t.contains(a));
            assert!(!t.contains(a + 8));
        }
        // Interleave across pages so the hint keeps moving.
        for &a in addrs.iter().rev() {
            t.remove(a);
            assert!(!t.contains(a));
        }
    }
}
