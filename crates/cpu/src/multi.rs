//! Multi-program (consolidated) simulation: N mutually-distrusting tenants
//! round-robin over **one** shared pipeline and Branch Trace Unit.
//!
//! This is the paper's deployment story — many crypto services packed onto
//! one core — made concrete. Each tenant is a distinct [`Program`] with its
//! own encoded traces; the scheduler hands out fixed instruction quanta at
//! the flush-interval boundary and, on every switch, checkpoints the
//! outgoing tenant's full architectural state (PC, registers, memory, taint,
//! call depth, BPU history, access traces) and restores the incoming one's.
//! The caches, the BTU, and the pipeline's timing state are *shared*: that
//! is where the contention the consolidation experiment measures comes from.
//!
//! Tenant isolation invariants (pinned by the determinism tests):
//!
//! * a tenant's committed instruction stream and architectural access trace
//!   are identical to a solo run of the same program — interleaving may
//!   change *when* things happen, never *what* happens;
//! * timing structures never alias across tenants: per-tenant address salts
//!   model distinct physical pages behind equal virtual addresses, so one
//!   tenant's lines and store-queue entries cannot serve another's.

use crate::bpu::BpuStats;
use crate::config::CpuConfig;
use crate::pipeline::{Simulator, TenantCheckpoint};
use crate::stats::SimStats;
use cassandra_btu::encode::EncodedTraces;
use cassandra_btu::unit::{BranchTraceUnit, ContextBtuStats, VictimPolicy};
use cassandra_isa::error::IsaError;
use cassandra_isa::program::Program;

/// Scheduling quantum (committed instructions per turn) when the
/// configuration does not specify a flush interval.
pub const DEFAULT_QUANTUM: u64 = 5_000;

/// How the shared BTU is handed between tenants at a quantum boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPolicy {
    /// Whole-unit flush per switch: the paper's conservative model. With a
    /// single shared Trace Cache partition every context change degrades to
    /// a flush-equivalent, so each incoming tenant starts cold.
    Flush,
    /// Cassandra-part: the Trace Cache is way-partitioned per context and a
    /// switch only reassigns the active partition; the steal victim is the
    /// partition furthest from the active one (round-robin under two
    /// partitions).
    Partition,
    /// Scheduler-driven: way-partitioned like [`SwitchPolicy::Partition`],
    /// but the OS scheduler picks steal victims from the observed
    /// per-context BTU working-set size — the smallest resident set loses
    /// its partition, not whoever is furthest in the rotation.
    WorkingSet,
}

impl SwitchPolicy {
    /// Stable lowercase label for reports and experiment keys.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchPolicy::Flush => "flush",
            SwitchPolicy::Partition => "partition",
            SwitchPolicy::WorkingSet => "scheduler",
        }
    }
}

/// One tenant of a consolidated run: a program plus its own encoded traces
/// for the shared BTU (`None` for defenses that do not replay).
#[derive(Debug)]
pub struct Tenant<'p> {
    /// The tenant's program.
    pub program: &'p Program,
    /// The tenant's own BTU traces, registered under its context id.
    pub traces: Option<EncodedTraces>,
}

/// One tenant's slice of a consolidated run's outcome.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's context id (its index in the tenant list).
    pub context: u64,
    /// Instructions this tenant committed.
    pub committed_instructions: u64,
    /// Core cycles attributed to this tenant: the sum of the cycle deltas
    /// of its quanta. Comparing against a solo run of the same program
    /// gives the tenant's consolidation slowdown.
    pub attributed_cycles: u64,
    /// True if the tenant's program executed its `halt` instruction.
    pub halted: bool,
    /// The tenant's own committed-path data accesses, in order.
    pub architectural_accesses: Vec<u64>,
    /// The tenant's own squashed wrong-path accesses, in order.
    pub transient_accesses: Vec<u64>,
}

/// The outcome of a consolidated multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantOutcome {
    /// Whole-core statistics: totals across every tenant, the shared BTU
    /// and cache counters, and the context-switch count.
    pub stats: SimStats,
    /// Per-tenant slices, indexed by context id.
    pub tenants: Vec<TenantOutcome>,
    /// Per-context BTU statistics (hits, misses, evictions, steals
    /// suffered, working-set estimate), one entry per context the BTU saw.
    pub btu_contexts: Vec<ContextBtuStats>,
}

impl MultiTenantOutcome {
    /// The BTU's per-context statistics for `context`, if the unit saw it.
    pub fn context_stats(&self, context: u64) -> Option<&ContextBtuStats> {
        self.btu_contexts.iter().find(|c| c.context == context)
    }
}

/// The per-tenant address salt: a high-bit tag far above any program text or
/// data address, preserving line/granule alignment under XOR.
fn salt_of(context: usize) -> u64 {
    (context as u64) << 44
}

/// Round-robins N tenants over one shared pipeline + BTU, switching at the
/// configured flush-interval boundary.
///
/// `config.max_instructions` is the *per-tenant* budget (as in a solo run);
/// `config.btu_flush_interval` is the scheduling quantum
/// ([`DEFAULT_QUANTUM`] if zero). The BTU partition count comes from the
/// defense in `config` (one shared partition under plain Cassandra, way-
/// partitioned under Cassandra-part), exactly as in single-tenant runs; the
/// [`SwitchPolicy`] selects the steal-victim policy on top.
#[derive(Debug)]
pub struct MultiTenantSimulator<'p> {
    sim: Simulator<'p>,
    /// `parked[i]` holds tenant `i`'s checkpoint for every `i != active`;
    /// `parked[active]` holds a placeholder whose contents are dead until
    /// the next switch moves the outgoing tenant's state into it.
    parked: Vec<TenantCheckpoint<'p>>,
    active: usize,
    quantum: u64,
    budget_per_tenant: u64,
    committed: Vec<u64>,
    cycles: Vec<u64>,
}

impl<'p> MultiTenantSimulator<'p> {
    /// Builds a consolidated run over `tenants` (at least one). `btu` is the
    /// shared unit (typically constructed from the first tenant's traces);
    /// each tenant's own traces are registered under its context id, and
    /// tenant 0 is the initially active context.
    pub fn new(
        tenants: Vec<Tenant<'p>>,
        config: CpuConfig,
        policy: SwitchPolicy,
        btu: Option<BranchTraceUnit>,
    ) -> Self {
        assert!(!tenants.is_empty(), "a consolidated run needs tenants");
        let quantum = if config.btu_flush_interval > 0 {
            config.btu_flush_interval
        } else {
            DEFAULT_QUANTUM
        };
        let budget_per_tenant = config.max_instructions;
        // The inner pipeline must not also rotate synthetic contexts or
        // flush periodically — the scheduler here drives every switch.
        let mut inner_cfg = config;
        inner_cfg.btu_flush_interval = 0;
        inner_cfg.btu_switch_contexts = 0;
        let n = tenants.len();
        let mut sim = Simulator::new(tenants[0].program, inner_cfg, btu);
        for (context, tenant) in tenants.iter().enumerate() {
            if let Some(traces) = &tenant.traces {
                sim.frontend_mut()
                    .register_btu_context(context as u64, traces.clone());
            }
        }
        if policy == SwitchPolicy::WorkingSet {
            sim.frontend_mut()
                .set_btu_victim_policy(VictimPolicy::SmallestWorkingSet);
        }
        // Tenant 0's first activation registers its context without counting
        // a switch (nothing was running before it).
        let counted = sim.frontend_mut().on_context_switch(0);
        debug_assert!(!counted, "the first activation must not count");
        let parked = tenants
            .iter()
            .map(|t| TenantCheckpoint::fresh(t.program))
            .collect();
        MultiTenantSimulator {
            sim,
            parked,
            active: 0,
            quantum,
            budget_per_tenant,
            committed: vec![0; n],
            cycles: vec![0; n],
        }
    }

    /// Whether tenant `i` still has work and budget.
    fn runnable(&self, i: usize) -> bool {
        let halted = if i == self.active {
            self.sim.active_halted()
        } else {
            self.parked[i].halted()
        };
        !halted && self.committed[i] < self.budget_per_tenant
    }

    /// Parks the active tenant and restores tenant `next`, charging the
    /// switch to the configured policy.
    fn switch_to(&mut self, next: usize) {
        // `parked[next]` holds tenant `next`: one swap makes it live and
        // leaves the outgoing tenant's state in that slot; the slot swap
        // then restores the "`parked[i]` is tenant `i`" invariant.
        self.sim.swap_tenant(&mut self.parked[next], salt_of(next));
        self.parked.swap(self.active, next);
        if self.sim.frontend_mut().on_context_switch(next as u64) {
            self.sim.note_context_switch();
        }
        self.active = next;
    }

    /// Runs every tenant to completion (or its per-tenant budget) and
    /// returns the consolidated outcome.
    ///
    /// # Errors
    ///
    /// Propagates the first tenant's architectural execution error.
    pub fn run(mut self) -> Result<MultiTenantOutcome, IsaError> {
        let n = self.parked.len();
        loop {
            if self.runnable(self.active) {
                let quantum = self
                    .quantum
                    .min(self.budget_per_tenant - self.committed[self.active]);
                let cycle_before = self.sim.current_cycle();
                let done = self.sim.run_bounded(quantum)?;
                self.committed[self.active] += done;
                self.cycles[self.active] += self.sim.current_cycle() - cycle_before;
            }
            // Round-robin to the next runnable tenant; staying on the only
            // remaining one costs no switch.
            let next = (1..=n)
                .map(|k| (self.active + k) % n)
                .find(|&i| self.runnable(i));
            match next {
                None => break,
                Some(i) if i == self.active => {}
                Some(i) => self.switch_to(i),
            }
        }
        self.finish()
    }

    /// Parks the last active tenant and assembles the outcome.
    fn finish(mut self) -> Result<MultiTenantOutcome, IsaError> {
        let active = self.active;
        // The placeholder becomes live and is discarded with the simulator;
        // every tenant's state is now in its own slot.
        self.sim.swap_tenant(&mut self.parked[active], 0);
        let core = self.sim.into_outcome();
        let mut stats = core.stats;
        // The live BPU at finalization was the placeholder's; the real
        // predictors are parked. Aggregate them for the whole-core view.
        let mut bpu = BpuStats::default();
        for slot in &self.parked {
            let s = slot.bpu_stats();
            bpu.pht_lookups += s.pht_lookups;
            bpu.btb_lookups += s.btb_lookups;
            bpu.rsb_lookups += s.rsb_lookups;
            bpu.updates += s.updates;
        }
        stats.bpu = bpu;
        let tenants = self
            .parked
            .into_iter()
            .enumerate()
            .map(|(context, slot)| {
                let halted = slot.halted();
                let (architectural_accesses, transient_accesses) = slot.into_traces();
                TenantOutcome {
                    context: context as u64,
                    committed_instructions: self.committed[context],
                    attributed_cycles: self.cycles[context],
                    halted,
                    architectural_accesses,
                    transient_accesses,
                }
            })
            .collect();
        Ok(MultiTenantOutcome {
            stats,
            tenants,
            btu_contexts: core.btu_contexts,
        })
    }
}

/// Convenience entry point: consolidates `tenants` under `config` and the
/// given switch policy.
///
/// # Errors
///
/// Propagates architectural execution errors.
pub fn simulate_multi<'p>(
    tenants: Vec<Tenant<'p>>,
    config: CpuConfig,
    policy: SwitchPolicy,
    btu: Option<BranchTraceUnit>,
) -> Result<MultiTenantOutcome, IsaError> {
    MultiTenantSimulator::new(tenants, config, policy, btu).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DefenseMode;
    use crate::pipeline::simulate;
    use cassandra_btu::unit::BtuConfig;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1, A2, T0, ZERO};
    use cassandra_trace::genproc::generate_traces;

    fn defense(label: &str) -> DefenseMode {
        label.parse().expect("known defense label")
    }

    /// A crypto loop over `words` data words, `iters` iterations; distinct
    /// `seed`s give tenants distinct data images and footprints.
    fn tenant_program(name: &str, iters: u64, words: u64, seed: u64) -> Program {
        let mut b = ProgramBuilder::new(name);
        b.begin_crypto();
        let data = b.alloc_u64s(
            "data",
            &(0..words).map(|i| i.wrapping_mul(seed)).collect::<Vec<_>>(),
        );
        b.li(A0, iters);
        b.label("outer");
        b.li(A1, data);
        b.li(A2, 0);
        let mut inner = words;
        b.label("inner");
        b.ld(T0, A1, 0);
        b.add(A2, A2, T0);
        b.addi(A1, A1, 8);
        b.addi(A0, A0, 0); // keep the loop body width distinct per program
        let _ = &mut inner;
        b.li(T0, data + 8 * words);
        b.bne(A1, T0, "inner");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "outer");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    fn encoded_for(program: &Program) -> EncodedTraces {
        let bundle = generate_traces(program, None, 10_000_000).unwrap();
        EncodedTraces::from_bundle(program, &bundle)
    }

    fn tenants_for<'p>(programs: &'p [Program]) -> Vec<Tenant<'p>> {
        programs
            .iter()
            .map(|p| Tenant {
                program: p,
                traces: Some(encoded_for(p)),
            })
            .collect()
    }

    fn shared_btu(programs: &[Program]) -> Option<BranchTraceUnit> {
        Some(BranchTraceUnit::new(
            BtuConfig::default(),
            encoded_for(&programs[0]),
        ))
    }

    fn mix() -> Vec<Program> {
        vec![
            tenant_program("t0", 12, 8, 3),
            tenant_program("t1", 9, 16, 5),
            tenant_program("t2", 15, 4, 7),
        ]
    }

    fn consolidation_cfg(defense: DefenseMode) -> CpuConfig {
        CpuConfig::golden_cove_like()
            .with_defense(defense)
            .with_btu_flush_interval(40)
    }

    /// Satellite: interleaving N tenants then taking one context's committed
    /// stream equals running that tenant alone, under both the flush and the
    /// partition switch policies.
    #[test]
    fn interleaved_tenants_match_their_solo_runs() {
        let programs = mix();
        for (policy, label) in [
            (SwitchPolicy::Flush, defense("Cassandra")),
            (SwitchPolicy::Partition, defense("Cassandra-part")),
        ] {
            let cfg = consolidation_cfg(label);
            let outcome =
                simulate_multi(tenants_for(&programs), cfg, policy, shared_btu(&programs)).unwrap();
            assert_eq!(outcome.tenants.len(), programs.len());
            for (i, program) in programs.iter().enumerate() {
                let mut solo_cfg = cfg;
                solo_cfg.btu_flush_interval = 0;
                let solo = simulate(
                    program,
                    solo_cfg,
                    Some(BranchTraceUnit::new(
                        BtuConfig::default(),
                        encoded_for(program),
                    )),
                )
                .unwrap();
                let tenant = &outcome.tenants[i];
                assert!(tenant.halted, "tenant {i} under {policy:?} must finish");
                assert_eq!(
                    tenant.committed_instructions, solo.stats.committed_instructions,
                    "tenant {i} under {policy:?}: committed stream length"
                );
                assert_eq!(
                    tenant.architectural_accesses, solo.architectural_accesses,
                    "tenant {i} under {policy:?}: architectural access trace"
                );
            }
        }
    }

    /// The consolidated run actually switches contexts, agrees with the BTU
    /// on the count, and surfaces per-context statistics for every tenant.
    #[test]
    fn consolidation_counts_switches_and_surfaces_per_context_stats() {
        let programs = mix();
        let cfg = consolidation_cfg(defense("Cassandra-part"));
        let outcome = simulate_multi(
            tenants_for(&programs),
            cfg,
            SwitchPolicy::Partition,
            shared_btu(&programs),
        )
        .unwrap();
        assert!(outcome.stats.context_switches > 1, "switches happened");
        assert_eq!(
            outcome.stats.context_switches, outcome.stats.btu.partition_switches,
            "pipeline and BTU must agree on what counts as a switch"
        );
        for tenant in &outcome.tenants {
            let ctx = outcome
                .context_stats(tenant.context)
                .unwrap_or_else(|| panic!("context {} has BTU stats", tenant.context));
            assert!(ctx.lookups > 0, "context {} replayed", tenant.context);
        }
        let total: u64 = outcome
            .tenants
            .iter()
            .map(|t| t.committed_instructions)
            .sum();
        assert_eq!(total, outcome.stats.committed_instructions);
    }

    /// Under the scheduler-driven policy the victim choice is working-set
    /// aware; the run completes with the same architectural streams.
    #[test]
    fn working_set_policy_preserves_architectural_behaviour() {
        let programs = mix();
        let cfg = consolidation_cfg(defense("Cassandra-part"));
        let partition = simulate_multi(
            tenants_for(&programs),
            cfg,
            SwitchPolicy::Partition,
            shared_btu(&programs),
        )
        .unwrap();
        let scheduler = simulate_multi(
            tenants_for(&programs),
            cfg,
            SwitchPolicy::WorkingSet,
            shared_btu(&programs),
        )
        .unwrap();
        for (p, s) in partition.tenants.iter().zip(&scheduler.tenants) {
            assert_eq!(p.architectural_accesses, s.architectural_accesses);
            assert_eq!(p.committed_instructions, s.committed_instructions);
        }
        assert_eq!(
            scheduler.stats.context_switches,
            partition.stats.context_switches
        );
    }
}
