//! Analytic power and area model (the paper's Figure 9, McPAT/CACTI stand-in).
//!
//! The model assigns each core unit a fixed area and a per-access dynamic
//! energy, plus leakage proportional to area. The absolute numbers are
//! arbitrary units calibrated so the *baseline* proportions resemble a
//! McPAT breakdown of a big out-of-order core; what the experiment reports is
//! relative: Cassandra's BTU adds a small area overhead while crypto branches
//! stop accessing the much larger branch predictor, reducing fetch-unit
//! energy.

use crate::config::{CpuConfig, DefenseMode};
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// Report for one core unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitReport {
    /// Unit name (matches the paper's Figure 9 legend).
    pub name: String,
    /// Area in model units (mm²-like).
    pub area: f64,
    /// Average power in model units (W-like).
    pub power: f64,
}

/// The full power/area report of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerAreaReport {
    /// Per-unit breakdown.
    pub units: Vec<UnitReport>,
    /// Total area.
    pub total_area: f64,
    /// Total power.
    pub total_power: f64,
}

impl PowerAreaReport {
    /// Area of one named unit (0 if absent).
    pub fn unit_area(&self, name: &str) -> f64 {
        self.units
            .iter()
            .find(|u| u.name == name)
            .map_or(0.0, |u| u.area)
    }

    /// Power of one named unit (0 if absent).
    pub fn unit_power(&self, name: &str) -> f64 {
        self.units
            .iter()
            .find(|u| u.name == name)
            .map_or(0.0, |u| u.power)
    }
}

// Baseline unit areas (model units). Proportions loosely follow a McPAT
// breakdown of a wide out-of-order core.
const AREA_FETCH: f64 = 90.0; // instruction fetch incl. the LTAGE-class BPU
const AREA_RENAME: f64 = 45.0;
const AREA_LSU: f64 = 85.0;
const AREA_EXEC: f64 = 120.0;
// The BTU is a 1.74 KiB structure; its area is derived so that it lands near
// the paper's 1.26 % of the core.
const AREA_BTU: f64 = 4.3;

// Per-event dynamic energies (model units).
const ENERGY_FETCH_PER_INSTR: f64 = 1.0;
const ENERGY_BPU_PER_ACCESS: f64 = 1.6;
const ENERGY_BTU_PER_ACCESS: f64 = 0.25;
const ENERGY_RENAME_PER_INSTR: f64 = 0.8;
const ENERGY_LSU_PER_ACCESS: f64 = 1.4;
const ENERGY_EXEC_PER_INSTR: f64 = 1.8;
// Leakage power per unit of area.
const LEAKAGE_PER_AREA: f64 = 0.002;

/// Computes the power/area report for one simulation run.
pub fn power_area_report(config: &CpuConfig, stats: &SimStats) -> PowerAreaReport {
    let cycles = stats.cycles.max(1) as f64;
    let instructions = stats.committed_instructions as f64 + stats.squashed_instructions as f64;
    let bpu_accesses =
        (stats.bpu.pht_lookups + stats.bpu.btb_lookups + stats.bpu.rsb_lookups + stats.bpu.updates)
            as f64;
    let btu_accesses = stats.btu.lookups as f64 + stats.btu.commits as f64;
    let mem_accesses = (stats.caches.l1d.accesses) as f64;

    let has_btu = config.resolved_policy().frontend.uses_btu();

    let fetch_dynamic =
        instructions * ENERGY_FETCH_PER_INSTR + bpu_accesses * ENERGY_BPU_PER_ACCESS;
    let fetch_power = fetch_dynamic / cycles + AREA_FETCH * LEAKAGE_PER_AREA;
    let rename_power =
        instructions * ENERGY_RENAME_PER_INSTR / cycles + AREA_RENAME * LEAKAGE_PER_AREA;
    let lsu_power = mem_accesses * ENERGY_LSU_PER_ACCESS / cycles + AREA_LSU * LEAKAGE_PER_AREA;
    let exec_power = instructions * ENERGY_EXEC_PER_INSTR / cycles + AREA_EXEC * LEAKAGE_PER_AREA;
    let btu_power = if has_btu {
        btu_accesses * ENERGY_BTU_PER_ACCESS / cycles + AREA_BTU * LEAKAGE_PER_AREA
    } else {
        0.0
    };

    let mut units = vec![
        UnitReport {
            name: "Instruction Fetch Unit".to_string(),
            area: AREA_FETCH,
            power: fetch_power,
        },
        UnitReport {
            name: "Renaming Unit".to_string(),
            area: AREA_RENAME,
            power: rename_power,
        },
        UnitReport {
            name: "Load Store Unit".to_string(),
            area: AREA_LSU,
            power: lsu_power,
        },
        UnitReport {
            name: "Execution Unit".to_string(),
            area: AREA_EXEC,
            power: exec_power,
        },
    ];
    if has_btu {
        units.push(UnitReport {
            name: "Branch Trace Unit".to_string(),
            area: AREA_BTU,
            power: btu_power,
        });
    }
    let total_area = units.iter().map(|u| u.area).sum();
    let total_power = units.iter().map(|u| u.power).sum();
    PowerAreaReport {
        units,
        total_area,
        total_power,
    }
}

/// The defense modes that include a BTU report (convenience for figures).
pub fn has_btu_unit(defense: DefenseMode) -> bool {
    defense.uses_btu()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpu::BpuStats;
    use cassandra_btu::unit::BtuStats;

    fn stats_with(bpu_lookups: u64, btu_lookups: u64) -> SimStats {
        SimStats {
            cycles: 10_000,
            committed_instructions: 20_000,
            committed_branches: 2_000,
            bpu: BpuStats {
                pht_lookups: bpu_lookups,
                updates: bpu_lookups,
                ..BpuStats::default()
            },
            btu: BtuStats {
                lookups: btu_lookups,
                commits: btu_lookups,
                ..BtuStats::default()
            },
            ..SimStats::default()
        }
    }

    #[test]
    fn btu_area_overhead_is_small() {
        let base_cfg = CpuConfig::golden_cove_like();
        let cass_cfg = base_cfg.with_defense(DefenseMode::Cassandra);
        let base = power_area_report(&base_cfg, &stats_with(2000, 0));
        let cass = power_area_report(&cass_cfg, &stats_with(0, 2000));
        let overhead = (cass.total_area - base.total_area) / base.total_area;
        assert!(
            overhead > 0.0 && overhead < 0.03,
            "area overhead {overhead:.4}"
        );
    }

    #[test]
    fn replacing_bpu_accesses_with_btu_accesses_saves_power() {
        let base_cfg = CpuConfig::golden_cove_like();
        let cass_cfg = base_cfg.with_defense(DefenseMode::Cassandra);
        let base = power_area_report(&base_cfg, &stats_with(2000, 0));
        let cass = power_area_report(&cass_cfg, &stats_with(0, 2000));
        assert!(
            cass.unit_power("Instruction Fetch Unit") < base.unit_power("Instruction Fetch Unit")
        );
        assert!(cass.total_power < base.total_power);
    }

    #[test]
    fn baseline_has_no_btu_unit() {
        let cfg = CpuConfig::golden_cove_like();
        let report = power_area_report(&cfg, &stats_with(100, 0));
        assert_eq!(report.unit_area("Branch Trace Unit"), 0.0);
        assert!(has_btu_unit(DefenseMode::Cassandra));
        assert!(!has_btu_unit(DefenseMode::UnsafeBaseline));
    }
}
