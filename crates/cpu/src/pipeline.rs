//! The cycle-approximate out-of-order pipeline model.
//!
//! The model is *functional-directed*: instructions are executed functionally
//! in fetch order against a speculative architectural state (so wrong-path
//! execution, cache pollution and transient leaks are real), while timing is
//! computed with per-instruction ready-time scheduling constrained by fetch
//! and commit width, frontend depth, ROB occupancy, cache latencies and the
//! defense policy in effect. Mispredicted branches trigger a bounded
//! wrong-path excursion whose memory accesses pollute the caches and are
//! recorded as transient observations; the squash restores the speculative
//! state and charges the redirect penalty.
//!
//! The absolute cycle counts are not gem5's, but every mechanism the paper's
//! evaluation depends on is present: branch misprediction penalties, frontend
//! stalls, BTU-driven fetch redirection, store-to-load forwarding (and its
//! removal), SPT-style transmitter delays and ProSpeCT-style taint blocking.

use crate::cache::CacheHierarchy;
use crate::config::CpuConfig;
use crate::frontend::{
    self, BranchEvent, BranchSource, FetchOutcome, ProgramProfile, TenantFrontendState,
};
use crate::policy::DefensePolicy;
use crate::stats::SimStats;
use crate::taint::TaintSet;
use cassandra_btu::unit::{BranchTraceUnit, ContextBtuStats};
use cassandra_isa::error::IsaError;
use cassandra_isa::instr::{BranchKind, Instr};
use cassandra_isa::memory::Memory;
use cassandra_isa::program::{Program, STACK_TOP};
use cassandra_isa::reg::{Reg, NUM_REGS, SP};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Maximum number of wrong-path instructions executed per misprediction.
const WRONG_PATH_CAP: u64 = 64;

/// The result of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Timing and event statistics.
    pub stats: SimStats,
    /// Data addresses touched by committed (architectural) execution, in
    /// order. Part of the attacker-visible trace.
    pub architectural_accesses: Vec<u64>,
    /// Data addresses touched only by squashed wrong-path execution, in
    /// order. The transient side channel.
    pub transient_accesses: Vec<u64>,
    /// True if the program executed its `halt` instruction within the budget.
    pub halted: bool,
    /// Per-context BTU statistics, populated only when the run registered
    /// application contexts on the BTU (context-switching and multi-tenant
    /// runs); empty — and omitted from the serialized form — otherwise, so
    /// single-tenant outcomes are byte-identical to pre-multi-tenant ones.
    #[serde(skip_if_default)]
    pub btu_contexts: Vec<ContextBtuStats>,
}

impl SimOutcome {
    /// The full attacker-visible sequence of data-cache accesses
    /// (architectural and transient, in program order of occurrence).
    ///
    /// Borrows both underlying traces — callers that only compare or scan
    /// the sequence (the security differ does this once per run) allocate
    /// nothing; collect explicitly if an owned `Vec` is needed.
    pub fn attacker_visible_accesses(&self) -> impl Iterator<Item = u64> + '_ {
        self.architectural_accesses
            .iter()
            .chain(&self.transient_accesses)
            .copied()
    }
}

#[derive(Debug, Clone, Copy)]
struct InflightStore {
    granule: u64,
    data_ready: u64,
    commit_cycle: u64,
}

/// One wrong-path store's rollback record: the overwritten bytes, inline.
///
/// Wrong-path writes are at most 8 bytes (the widest store, or the return
/// address pushed by `call`), so the snapshot fits in a fixed array and the
/// undo log is a flat `Vec<UndoEntry>` the simulator reuses across
/// squashes — truncated, never reallocated, on the per-misprediction path.
#[derive(Debug, Clone, Copy)]
struct UndoEntry {
    addr: u64,
    len: u8,
    bytes: [u8; 8],
}

/// One parked tenant's per-context state in a multi-program run: everything
/// its architectural stream depends on (registers, memory, taint, PC, call
/// depth), its private slice of the frontend (the BPU), and its own access
/// traces. Exchanged with the live pipeline state by
/// [`Simulator::swap_tenant`] on each context switch.
#[derive(Debug)]
pub(crate) struct TenantCheckpoint<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS + 1],
    reg_taint: [bool; NUM_REGS + 1],
    mem: Memory,
    mem_taint: TaintSet,
    call_depth: u64,
    pc: usize,
    halted: bool,
    architectural_accesses: Vec<u64>,
    transient_accesses: Vec<u64>,
    frontend_state: TenantFrontendState,
}

impl<'p> TenantCheckpoint<'p> {
    /// A not-yet-started tenant: zeroed registers with SP at the stack top,
    /// the program's initial data image, PC 0 — exactly the state
    /// [`Simulator::new`] starts from, so an interleaved tenant's first
    /// quantum begins where a solo run would.
    pub(crate) fn fresh(program: &'p Program) -> Self {
        let mut mem = Memory::new();
        for region in &program.data {
            mem.write_bytes(region.addr, &region.bytes);
        }
        let mut regs = [0u64; NUM_REGS + 1];
        regs[SP.index()] = STACK_TOP;
        TenantCheckpoint {
            program,
            regs,
            reg_taint: [false; NUM_REGS + 1],
            mem,
            mem_taint: TaintSet::new(),
            call_depth: 0,
            pc: 0,
            halted: false,
            architectural_accesses: Vec::new(),
            transient_accesses: Vec::new(),
            frontend_state: TenantFrontendState::default(),
        }
    }

    /// Whether this tenant's program has halted.
    pub(crate) fn halted(&self) -> bool {
        self.halted
    }

    /// The parked BPU's statistics (zeroed before the tenant's first
    /// activation).
    pub(crate) fn bpu_stats(&self) -> crate::bpu::BpuStats {
        self.frontend_state
            .bpu
            .as_ref()
            .map(|bpu| bpu.stats())
            .unwrap_or_default()
    }

    /// Consumes the checkpoint into the tenant's two access traces.
    pub(crate) fn into_traces(self) -> (Vec<u64>, Vec<u64>) {
        (self.architectural_accesses, self.transient_accesses)
    }
}

/// Functional + timing state of one simulated core.
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    config: CpuConfig,
    /// The defense policy, resolved once from `config.defense`; the pipeline
    /// consults only this (and the frontend below), never the mode itself.
    policy: DefensePolicy,
    /// The pluggable branch source steering fetch at branches.
    frontend: Box<dyn BranchSource>,
    caches: CacheHierarchy,
    stats: SimStats,

    // Speculative architectural state (correct path).
    //
    // The register file carries one extra slot: writes to the architectural
    // zero register land in slot `NUM_REGS` (a write sink) instead of being
    // guarded by a data-dependent `is_zero` branch, so reads are plain
    // loads — slot 0 provably stays `0`/untainted. Operand registers vary
    // per instruction, which made the old read-side guard an unpredictable
    // host branch on the interpreter's hottest path.
    regs: [u64; NUM_REGS + 1],
    reg_taint: [bool; NUM_REGS + 1],
    mem: Memory,
    mem_taint: TaintSet,
    call_depth: u64,
    pc: usize,
    halted: bool,
    /// Reusable wrong-path store undo log; always empty between excursions.
    mem_undo: Vec<UndoEntry>,

    // Timing state.
    fetch_cycle: u64,
    fetch_slots_used: u64,
    /// `log2(l1i.line_bytes)` when that is a power of two — enables the
    /// same-line fetch short-circuit in [`Self::fetch_slot`].
    fetch_line_shift: Option<u32>,
    /// The L1I line of the most recent correct-path fetch. Mirrors the
    /// L1I's MRU line exactly (every instruction access flows through
    /// `fetch_slot`), so a fetch staying on this line is a guaranteed hit
    /// at base latency and skips the cache model entirely.
    cur_fetch_line: u64,
    /// Same-line fetch hits not yet folded into the L1I counters; drained
    /// once at the end of `run` via `CacheHierarchy::note_instr_hits`.
    pending_fetch_hits: u64,
    reg_ready: [u64; NUM_REGS],
    /// Commit cycles of the last `rob_entries` instructions, as a flat ring:
    /// `rob[rob_head]` is the slot of the instruction `rob_entries` back
    /// (zero while the window is still filling — a no-op under `max`), so
    /// the "stall dispatch until the oldest ROB entry retires" rule is one
    /// read and one write per instruction instead of `VecDeque` traffic.
    rob: Vec<u64>,
    rob_head: usize,
    commit_cycle: u64,
    commits_in_cycle: u64,
    inflight_stores: VecDeque<InflightStore>,
    /// Counting filter over `inflight_stores` granules: bucket
    /// [`Self::filter_bucket`] holds how many queued stores hash there. A
    /// load whose bucket is zero provably has no forwarding match and skips
    /// the store-queue scan entirely (the queue sits at `sq_entries` ≈ 100
    /// in steady state, so the scan — not the cache — dominated load cost).
    store_filter: Vec<u32>,
    /// Per-bucket upper bound on the `commit_cycle` of the bucket's queued
    /// stores: monotone under pushes and deliberately left stale on
    /// eviction, so it only ever over-approximates. A load whose bucket
    /// bound is `<= start` provably cannot match the scan's
    /// `commit_cycle > start` condition — this is what filters the common
    /// "reload of a long-retired spill slot" case a membership count alone
    /// cannot.
    store_filter_bound: Vec<u64>,
    older_branches_resolved: u64,
    committed_since_flush: u64,
    /// The application context currently "running" for the periodic
    /// context-switch experiment (Q4 partition-reassignment variant).
    current_context: u64,
    /// XORed into every address before it reaches a *timing* structure (the
    /// caches, the store-queue granules, the same-line fetch filter). Zero
    /// for single-tenant runs — a no-op. The multi-tenant simulator sets a
    /// distinct high-bit salt per tenant so tenants whose programs reuse the
    /// same virtual addresses do not alias in the shared caches or forward
    /// stores to each other; functional state and the recorded access traces
    /// always use the real addresses.
    addr_salt: u64,

    // Attacker-visible traces.
    architectural_accesses: Vec<u64>,
    transient_accesses: Vec<u64>,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `program` with traces pre-loaded into the BTU
    /// when the configured defense uses one.
    pub fn new(program: &'p Program, config: CpuConfig, btu: Option<BranchTraceUnit>) -> Self {
        let mut mem = Memory::new();
        for region in &program.data {
            mem.write_bytes(region.addr, &region.bytes);
        }
        let mut regs = [0u64; NUM_REGS + 1];
        regs[SP.index()] = STACK_TOP;
        let policy = config.resolved_policy();
        let mut frontend = frontend::build_source(program, &config, &policy, btu);
        if config.btu_switch_contexts > 0 {
            // Register the initial context on its partition up front, so the
            // first periodic switch cannot hand context 0's warm partition
            // to the incoming context.
            frontend.on_context_switch(0);
        }
        // Pre-size every hot-loop collection so the steady state never
        // grows: the access traces gain at most one entry per committed /
        // squashed instruction (capped so a huge budget cannot balloon the
        // up-front reservation), the ROB and store queue are bounded by
        // their configured depths, and the undo log by the wrong-path cap.
        let access_hint = config.max_instructions.min(1 << 16) as usize;
        Simulator {
            program,
            frontend,
            policy,
            caches: CacheHierarchy::new(&config),
            stats: SimStats::default(),
            regs,
            reg_taint: [false; NUM_REGS + 1],
            mem,
            mem_taint: TaintSet::new(),
            call_depth: 0,
            pc: 0,
            halted: false,
            mem_undo: Vec::with_capacity(2 * WRONG_PATH_CAP as usize),
            fetch_cycle: 0,
            fetch_slots_used: 0,
            fetch_line_shift: (config.l1i.line_bytes as u64)
                .is_power_of_two()
                .then(|| (config.l1i.line_bytes as u64).trailing_zeros()),
            cur_fetch_line: u64::MAX,
            pending_fetch_hits: 0,
            reg_ready: [0; NUM_REGS],
            rob: vec![0; config.rob_entries.max(1)],
            rob_head: 0,
            commit_cycle: 0,
            commits_in_cycle: 0,
            inflight_stores: VecDeque::with_capacity(config.sq_entries + 1),
            store_filter: vec![0; Self::FILTER_BUCKETS],
            store_filter_bound: vec![0; Self::FILTER_BUCKETS],
            older_branches_resolved: 0,
            committed_since_flush: 0,
            current_context: 0,
            addr_salt: 0,
            architectural_accesses: Vec::with_capacity(access_hint),
            transient_accesses: Vec::with_capacity(access_hint),
            config,
        }
    }

    /// Runs the program to completion (or until the instruction budget is
    /// exhausted) and returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns an error if the architectural path leaves the program text or
    /// underflows the call stack (wrong-path faults are swallowed, as in
    /// hardware).
    pub fn run(mut self) -> Result<SimOutcome, IsaError> {
        while !self.halted && self.stats.committed_instructions < self.config.max_instructions {
            self.step_correct_path()?;
        }
        Ok(self.into_outcome())
    }

    /// Runs up to `budget` more committed instructions (or until the active
    /// program halts) and returns how many were committed. The multi-tenant
    /// simulator drives one quantum at a time through this.
    pub(crate) fn run_bounded(&mut self, budget: u64) -> Result<u64, IsaError> {
        let start = self.stats.committed_instructions;
        while !self.halted && self.stats.committed_instructions - start < budget {
            self.step_correct_path()?;
        }
        Ok(self.stats.committed_instructions - start)
    }

    /// Folds the deferred counters into the statistics and consumes the
    /// simulator into its outcome.
    pub(crate) fn into_outcome(mut self) -> SimOutcome {
        self.stats.cycles = self.commit_cycle.max(self.fetch_cycle);
        self.caches.note_instr_hits(self.pending_fetch_hits);
        self.pending_fetch_hits = 0;
        self.stats.bpu = self.frontend.bpu_stats();
        if let Some(btu) = self.frontend.btu_stats() {
            self.stats.btu = btu;
        }
        self.stats.caches = self.caches.stats();
        SimOutcome {
            stats: self.stats,
            architectural_accesses: self.architectural_accesses,
            transient_accesses: self.transient_accesses,
            halted: self.halted,
            btu_contexts: self.frontend.btu_context_stats(),
        }
    }

    /// The cycle the run has reached so far (commit or fetch, whichever is
    /// further); monotone, so quantum deltas attribute cycles to tenants.
    pub(crate) fn current_cycle(&self) -> u64 {
        self.commit_cycle.max(self.fetch_cycle)
    }

    /// Whether the active program has halted.
    pub(crate) fn active_halted(&self) -> bool {
        self.halted
    }

    /// Direct access to the branch source (the multi-tenant simulator
    /// registers tenant contexts, switches them and installs the steal-victim
    /// policy through this).
    pub(crate) fn frontend_mut(&mut self) -> &mut dyn BranchSource {
        &mut *self.frontend
    }

    /// Records one counted context switch in the statistics.
    pub(crate) fn note_context_switch(&mut self) {
        self.stats.context_switches += 1;
    }

    /// Exchanges the live per-tenant state with a parked checkpoint (a
    /// multi-tenant context switch): the running tenant's architectural
    /// state, access traces and BPU move into the slot, and the slot's
    /// become live. Shared structures — the caches, the BTU, the timing
    /// state (ROB ring, store queue, register ready times) — deliberately
    /// stay put: the model switches without draining the machine, and the
    /// per-tenant `salt` keeps the tenants' cache lines and store-queue
    /// granules disjoint (distinct physical pages behind equal virtual
    /// addresses).
    pub(crate) fn swap_tenant(&mut self, slot: &mut TenantCheckpoint<'p>, salt: u64) {
        std::mem::swap(&mut self.program, &mut slot.program);
        std::mem::swap(&mut self.regs, &mut slot.regs);
        std::mem::swap(&mut self.reg_taint, &mut slot.reg_taint);
        std::mem::swap(&mut self.mem, &mut slot.mem);
        std::mem::swap(&mut self.mem_taint, &mut slot.mem_taint);
        std::mem::swap(&mut self.call_depth, &mut slot.call_depth);
        std::mem::swap(&mut self.pc, &mut slot.pc);
        std::mem::swap(&mut self.halted, &mut slot.halted);
        std::mem::swap(
            &mut self.architectural_accesses,
            &mut slot.architectural_accesses,
        );
        std::mem::swap(&mut self.transient_accesses, &mut slot.transient_accesses);
        self.frontend.swap_tenant_state(&mut slot.frontend_state);
        self.frontend
            .retarget_program(ProgramProfile::of(self.program));
        self.addr_salt = salt;
        // The same-line fetch filter mirrors the L1I's MRU line for the
        // *previous* tenant's salted text; invalidate it so the incoming
        // tenant's first fetch consults the cache model.
        self.cur_fetch_line = u64::MAX;
    }

    // ------------------------------------------------------------ registers

    #[inline(always)]
    fn reg(&self, r: Reg) -> u64 {
        // Slot 0 is never written (zero-register writes go to the sink slot),
        // so the architectural "reads as zero" rule needs no branch here.
        self.regs[r.index()]
    }

    #[inline(always)]
    fn set_reg(&mut self, r: Reg, value: u64, tainted: bool) {
        // Redirect zero-register writes to the sink slot `NUM_REGS`; the
        // index select compiles to a cmov instead of a data-dependent branch.
        let slot = if r.is_zero() { NUM_REGS } else { r.index() };
        self.regs[slot] = value;
        self.reg_taint[slot] = tainted;
    }

    #[inline(always)]
    fn taint_of(&self, r: Reg) -> bool {
        self.reg_taint[r.index()]
    }

    fn granule(addr: u64) -> u64 {
        addr & !7
    }

    /// The address as the *timing* structures (caches, store queue, fetch
    /// filter) see it. The per-tenant salt is zero outside multi-tenant
    /// runs — a no-op; with it, tenants' equal virtual addresses land on
    /// disjoint lines and granules, like distinct physical pages.
    #[inline(always)]
    fn salted(&self, addr: u64) -> u64 {
        addr ^ self.addr_salt
    }

    /// Number of `store_filter` buckets; power of two, ~36× the configured
    /// store-queue depth so collision-driven false positives stay rare.
    const FILTER_BUCKETS: usize = 4096;

    /// The `store_filter` bucket of a granule (Fibonacci hash of the high
    /// bits; counts, so false positives only cost a scan — never wrong
    /// timing).
    #[inline]
    fn filter_bucket(granule: u64) -> usize {
        ((granule >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize
    }

    // ------------------------------------------------------------- frontend

    /// Allocates a fetch slot for the instruction at `pc`, accounting for
    /// fetch width and instruction-cache misses. Returns the fetch cycle.
    fn fetch_slot(&mut self, pc: usize) -> u64 {
        let addr = self.salted(Program::byte_addr(pc));
        if let Some(shift) = self.fetch_line_shift {
            if addr >> shift == self.cur_fetch_line {
                // Same line as the previous fetch: a guaranteed L1I hit at
                // base latency (the line is the L1I's MRU line and repeated
                // MRU accesses change no replacement state), so only the
                // fetch-width bookkeeping and a deferred hit count remain.
                self.pending_fetch_hits += 1;
                if self.fetch_slots_used >= self.config.fetch_width {
                    self.fetch_cycle += 1;
                    self.fetch_slots_used = 0;
                }
                self.fetch_slots_used += 1;
                return self.fetch_cycle;
            }
            self.cur_fetch_line = addr >> shift;
        }
        let latency = self.caches.access_instr(addr);
        let extra = latency.saturating_sub(self.config.l1i.latency);
        if extra > 0 {
            self.fetch_cycle += extra;
            self.fetch_slots_used = 0;
        }
        if self.fetch_slots_used >= self.config.fetch_width {
            self.fetch_cycle += 1;
            self.fetch_slots_used = 0;
        }
        self.fetch_slots_used += 1;
        self.fetch_cycle
    }

    /// Redirects fetch to resume at `cycle` (stall or squash recovery).
    fn redirect_fetch(&mut self, cycle: u64) {
        if cycle > self.fetch_cycle {
            self.fetch_cycle = cycle;
            self.fetch_slots_used = 0;
        }
    }

    // ------------------------------------------------------------ main step

    /// Issue cycle of an instruction dispatched at `dispatch` whose operands
    /// are ready at `ready`, applying the defense policies that delay
    /// execution while speculative. `is_mem_or_branch` and `tainted_source`
    /// are the per-instruction predicates those policies test (the caller
    /// knows them statically per opcode, so no opcode re-dispatch happens
    /// here).
    #[inline(always)]
    fn issue_at(
        &mut self,
        dispatch: u64,
        ready: u64,
        is_mem_or_branch: bool,
        tainted_source: bool,
    ) -> u64 {
        let mut start = dispatch.max(ready);
        if self.policy.delay_transmitters
            && is_mem_or_branch
            && start < self.older_branches_resolved
        {
            start = self.older_branches_resolved;
            self.stats.defense_delayed_instructions += 1;
        }
        if self.policy.block_tainted && tainted_source && start < self.older_branches_resolved {
            start = self.older_branches_resolved;
            self.stats.defense_delayed_instructions += 1;
        }
        start
    }

    /// Fetches, functionally executes and times one correct-path instruction.
    ///
    /// The opcode is dispatched exactly once: every arm computes its own
    /// operand readiness, defense delay, latency and functional effect
    /// inline. The interpreter's cost is dominated by indirect-branch
    /// mispredictions on the host, so folding the former `sources()` /
    /// `is_mem()` / `base_latency()` pre-passes into the one `match` — they
    /// each re-dispatched on the opcode — is a measured win, not a style
    /// choice.
    fn step_correct_path(&mut self) -> Result<(), IsaError> {
        let pc = self.pc;
        let instr = *self.program.instr(pc).ok_or(IsaError::PcOutOfRange {
            pc,
            len: self.program.len(),
        })?;
        let fetch_cycle = self.fetch_slot(pc);

        // Dispatch is limited by the frontend depth and ROB occupancy: the
        // slot about to be overwritten holds the commit cycle of the
        // instruction `rob_entries` back (0 while the window fills).
        let dispatch = (fetch_cycle + self.config.frontend_depth).max(self.rob[self.rob_head]);
        let brl = self.config.branch_resolve_latency;

        let complete;
        let mut next_pc = pc + 1;
        let mut branch_outcome: Option<(BranchKind, bool, usize, Option<usize>)> = None;

        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let ready = self.reg_ready[rs1.index()].max(self.reg_ready[rs2.index()]);
                let t = self.taint_of(rs1) || self.taint_of(rs2);
                let start = self.issue_at(dispatch, ready, false, t);
                complete = start + op.latency();
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v, t);
                self.reg_ready[rd.index()] = complete;
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let ready = self.reg_ready[rs1.index()];
                let t = self.taint_of(rs1);
                let start = self.issue_at(dispatch, ready, false, t);
                complete = start + op.latency();
                let v = op.apply(self.reg(rs1), imm as u64);
                self.set_reg(rd, v, t);
                self.reg_ready[rd.index()] = complete;
            }
            Instr::LoadImm { rd, imm } => {
                let start = self.issue_at(dispatch, 0, false, false);
                complete = start + 1;
                self.set_reg(rd, imm, false);
                self.reg_ready[rd.index()] = complete;
            }
            Instr::Declassify { rd, rs1 } => {
                let ready = self.reg_ready[rs1.index()];
                let start = self.issue_at(dispatch, ready, false, self.taint_of(rs1));
                complete = start + 1;
                let v = self.reg(rs1);
                self.set_reg(rd, v, false);
                self.reg_ready[rd.index()] = complete;
            }
            Instr::Load {
                rd,
                base,
                offset,
                width,
            } => {
                let ready = self.reg_ready[base.index()];
                let start = self.issue_at(dispatch, ready, true, self.taint_of(base));
                let addr = self.reg(base).wrapping_add(offset as u64);
                let v = self.mem.read(addr, width);
                let tainted = self.program.is_secret_addr(addr)
                    || self.mem_taint.contains(Self::granule(addr));
                self.set_reg(rd, v, tainted);
                complete = self.time_load(start, addr);
                self.reg_ready[rd.index()] = complete;
                self.architectural_accesses.push(addr);
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                let ready = self.reg_ready[src.index()].max(self.reg_ready[base.index()]);
                let t = self.taint_of(src) || self.taint_of(base);
                let start = self.issue_at(dispatch, ready, true, t);
                let addr = self.reg(base).wrapping_add(offset as u64);
                let v = self.reg(src);
                self.mem.write(addr, v, width);
                if self.taint_of(src) {
                    self.mem_taint.insert(Self::granule(addr));
                } else {
                    self.mem_taint.remove(Self::granule(addr));
                }
                complete = start + 1;
                self.record_store(addr, complete);
                let timing_addr = self.salted(addr);
                let _ = self.caches.access_data(timing_addr);
                self.architectural_accesses.push(addr);
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let ready = self.reg_ready[rs1.index()].max(self.reg_ready[rs2.index()]);
                let t = self.taint_of(rs1) || self.taint_of(rs2);
                let start = self.issue_at(dispatch, ready, true, t);
                complete = start + brl;
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                next_pc = if taken { target } else { pc + 1 };
                branch_outcome = Some((BranchKind::CondDirect, taken, next_pc, Some(target)));
            }
            Instr::Jump { target } => {
                let start = self.issue_at(dispatch, 0, true, false);
                complete = start + brl;
                next_pc = target;
                branch_outcome = Some((BranchKind::UncondDirect, true, target, Some(target)));
            }
            Instr::JumpIndirect { rs1 } => {
                let ready = self.reg_ready[rs1.index()];
                let start = self.issue_at(dispatch, ready, true, self.taint_of(rs1));
                complete = start + brl;
                next_pc = self.reg(rs1) as usize;
                branch_outcome = Some((BranchKind::Indirect, true, next_pc, None));
            }
            Instr::Call { target } => {
                let ready = self.reg_ready[SP.index()];
                let start = self.issue_at(dispatch, ready, true, false);
                complete = start + brl;
                next_pc = target;
                let sp = self.reg(SP).wrapping_sub(8);
                self.set_reg(SP, sp, false);
                self.mem.write_u64(sp, (pc + 1) as u64);
                self.call_depth += 1;
                self.record_store(sp, complete);
                let timing_sp = self.salted(sp);
                let _ = self.caches.access_data(timing_sp);
                self.architectural_accesses.push(sp);
                self.reg_ready[SP.index()] = complete;
                branch_outcome = Some((BranchKind::Call, true, target, Some(target)));
            }
            Instr::CallIndirect { rs1 } => {
                let ready = self.reg_ready[rs1.index()].max(self.reg_ready[SP.index()]);
                let start = self.issue_at(dispatch, ready, true, self.taint_of(rs1));
                complete = start + brl;
                next_pc = self.reg(rs1) as usize;
                let sp = self.reg(SP).wrapping_sub(8);
                self.set_reg(SP, sp, false);
                self.mem.write_u64(sp, (pc + 1) as u64);
                self.call_depth += 1;
                self.record_store(sp, complete);
                let timing_sp = self.salted(sp);
                let _ = self.caches.access_data(timing_sp);
                self.architectural_accesses.push(sp);
                self.reg_ready[SP.index()] = complete;
                branch_outcome = Some((BranchKind::CallIndirect, true, next_pc, None));
            }
            Instr::Ret => {
                if self.call_depth == 0 {
                    return Err(IsaError::ReturnWithoutCall { pc });
                }
                let ready = self.reg_ready[SP.index()];
                let start = self.issue_at(dispatch, ready, true, false);
                self.call_depth -= 1;
                let sp = self.reg(SP);
                let ret = self.mem.read_u64(sp) as usize;
                self.set_reg(SP, sp.wrapping_add(8), false);
                complete = (start + brl).max(self.time_load(start, sp));
                self.reg_ready[SP.index()] = complete;
                self.architectural_accesses.push(sp);
                next_pc = ret;
                branch_outcome = Some((BranchKind::Return, true, ret, None));
            }
            Instr::Nop => {
                let start = self.issue_at(dispatch, 0, false, false);
                complete = start + 1;
            }
            Instr::Halt => {
                let start = self.issue_at(dispatch, 0, false, false);
                complete = start + 1;
                self.halted = true;
            }
        }

        // Branch handling: frontend redirection, prediction and penalties.
        if let Some((kind, taken, actual_target, direct_target)) = branch_outcome {
            // Only branches consult the crypto ranges; keep the range scan
            // off the straight-line path.
            let is_crypto = self.program.is_crypto_pc(pc);
            self.stats.committed_branches += 1;
            if is_crypto {
                self.stats.committed_crypto_branches += 1;
            }
            let event = BranchEvent {
                pc,
                kind,
                taken,
                actual_target,
                direct_target,
                fallthrough: pc + 1,
                is_crypto,
            };
            self.handle_branch_frontend(&event, fetch_cycle, complete);
        }

        // In-order commit with commit-width constraint. Written with
        // conditional moves rather than an if/else ladder: whether an
        // instruction advances the commit cycle alternates data-dependently,
        // which made this branch a steady source of host mispredictions.
        let proposed = complete + 1;
        let advanced = proposed > self.commit_cycle;
        let width_full = !advanced && self.commits_in_cycle >= self.config.commit_width;
        self.commit_cycle = if advanced {
            proposed
        } else {
            self.commit_cycle + u64::from(width_full)
        };
        self.commits_in_cycle = if advanced || width_full {
            1
        } else {
            self.commits_in_cycle + 1
        };
        self.rob[self.rob_head] = self.commit_cycle;
        self.rob_head += 1;
        if self.rob_head == self.rob.len() {
            self.rob_head = 0;
        }
        self.stats.committed_instructions += 1;

        // Periodic context-switch experiment (Q4): price each switch either
        // as a whole-unit flush (the paper's model) or as a BTU partition
        // reassignment rotating through `btu_switch_contexts` applications.
        if self.config.btu_flush_interval > 0 {
            self.committed_since_flush += 1;
            if self.committed_since_flush >= self.config.btu_flush_interval {
                self.committed_since_flush = 0;
                if self.config.btu_switch_contexts > 0 {
                    self.current_context =
                        (self.current_context + 1) % self.config.btu_switch_contexts;
                    if self.frontend.on_context_switch(self.current_context) {
                        self.stats.context_switches += 1;
                    }
                } else if self.frontend.flush() {
                    self.stats.periodic_btu_flushes += 1;
                }
            }
        }

        self.pc = next_pc;
        Ok(())
    }

    /// Store-to-load forwarding / memory timing for a load starting at
    /// `start` and accessing `addr`.
    fn time_load(&mut self, start: u64, addr: u64) -> u64 {
        let addr = self.salted(addr);
        let granule = Self::granule(addr);
        // Zero bucket ⇒ no queued store shares this granule; bound ≤ start
        // ⇒ no member can pass the scan's `commit_cycle > start` test. In
        // either case the scan below provably cannot match; otherwise it
        // falls through to the exact scan, so the filter never changes
        // which store (if any) forwards.
        let bucket = Self::filter_bucket(granule);
        let forwarding =
            if self.store_filter[bucket] == 0 || self.store_filter_bound[bucket] <= start {
                None
            } else {
                self.inflight_stores
                    .iter()
                    .rev()
                    .find(|s| s.granule == granule && s.commit_cycle > start)
            };
        let latency = self.caches.access_data(addr);
        match forwarding {
            Some(store) if self.policy.stl_forwarding => {
                self.stats.stl_forwards += 1;
                start.max(store.data_ready) + 1
            }
            Some(store) => {
                // Forwarding disabled (Cassandra+STL): the load always sends a
                // request to the cache and may not bypass the unresolved
                // store — it waits until the store's data is available and
                // then pays the cache access latency.
                start.max(store.data_ready) + latency
            }
            None => start + latency,
        }
    }

    fn record_store(&mut self, addr: u64, data_ready: u64) {
        let addr = self.salted(addr);
        let commit_cycle = data_ready + self.config.frontend_depth;
        if self.inflight_stores.len() >= self.config.sq_entries {
            if let Some(evicted) = self.inflight_stores.pop_front() {
                self.store_filter[Self::filter_bucket(evicted.granule)] -= 1;
            }
        }
        let granule = Self::granule(addr);
        let bucket = Self::filter_bucket(granule);
        self.store_filter[bucket] += 1;
        self.store_filter_bound[bucket] = self.store_filter_bound[bucket].max(commit_cycle);
        self.inflight_stores.push_back(InflightStore {
            granule,
            data_ready,
            commit_cycle,
        });
    }

    /// Frontend behaviour at a branch: the configured [`BranchSource`]
    /// decides (replay, prediction, integrity stall, fence); the pipeline
    /// only interprets the decision — redirects, wrong-path excursions and
    /// squash recovery. No defense-specific branching lives here.
    fn handle_branch_frontend(&mut self, event: &BranchEvent, fetch_cycle: u64, resolve: u64) {
        let decision = self.frontend.on_branch(event);
        let mut squash_after_commit = false;
        match decision.outcome {
            FetchOutcome::Proceed { extra_latency } => {
                if extra_latency > 0 {
                    self.redirect_fetch(fetch_cycle + extra_latency);
                }
            }
            FetchOutcome::Mispredict { wrong_target } => {
                // Misprediction: execute a bounded wrong path, then squash.
                self.stats.mispredictions += 1;
                let window = (resolve.saturating_sub(fetch_cycle) + 1) * self.config.fetch_width;
                let budget = window
                    .min(WRONG_PATH_CAP)
                    .min(self.config.rob_entries as u64);
                self.run_wrong_path(wrong_target, budget);
                self.redirect_fetch(resolve + self.config.mispredict_redirect_penalty);
                squash_after_commit = true;
            }
            FetchOutcome::Stall => {
                // No usable target: fetch waits for the branch to resolve.
                self.stats.fetch_stalls += 1;
                self.redirect_fetch(resolve + 1);
            }
        }
        // The mispredicted branch itself retires architecturally: commit its
        // frontend state *before* the squash, so sources whose crypto
        // branches can mispredict (a cold tournament branch) roll their
        // speculative cursors back to a checkpoint that already includes
        // this execution.
        self.frontend.on_commit(event);
        if squash_after_commit {
            self.frontend.on_squash();
        }
        // Replayed branches do not open a speculation window (§6.2); every
        // other branch keeps younger instructions speculative until resolve.
        if decision.opens_speculation_window {
            self.older_branches_resolved = self.older_branches_resolved.max(resolve);
        }
    }

    /// Records the bytes a wrong-path store is about to overwrite in the
    /// reusable undo log.
    #[inline]
    fn snapshot_for_undo(&mut self, addr: u64, len: usize) {
        let mut bytes = [0u8; 8];
        self.mem.read_into(addr, &mut bytes[..len]);
        self.mem_undo.push(UndoEntry {
            addr,
            len: len as u8,
            bytes,
        });
    }

    /// Executes up to `budget` wrong-path instructions starting at `start_pc`
    /// with full state rollback afterwards. Their data accesses pollute the
    /// caches and are recorded as transient observations.
    ///
    /// Register state is checkpointed by value; memory writes are undone
    /// from the flat `mem_undo` log. `mem_taint` needs no checkpoint at all:
    /// wrong-path loads only *read* it and wrong-path stores deliberately
    /// skip the taint update (a squashed store must not change which
    /// granules the architectural path considers secret), so the taint
    /// delta of an excursion is empty by construction.
    fn run_wrong_path(&mut self, start_pc: usize, budget: u64) {
        let saved_regs = self.regs;
        let saved_taint = self.reg_taint;
        let saved_call_depth = self.call_depth;
        debug_assert!(self.mem_undo.is_empty());

        let mut pc = start_pc;
        let mut executed = 0u64;
        while executed < budget {
            let Some(&instr) = self.program.instr(pc) else {
                break;
            };
            executed += 1;
            // SPT delays transmitters until they are non-speculative, so
            // wrong-path loads, stores and branches never execute before the
            // squash — the excursion ends at the first one.
            if self.policy.delay_transmitters && (instr.is_mem() || instr.is_branch()) {
                break;
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let v = op.apply(self.reg(rs1), self.reg(rs2));
                    let t = self.taint_of(rs1) || self.taint_of(rs2);
                    self.set_reg(rd, v, t);
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let v = op.apply(self.reg(rs1), imm as u64);
                    let t = self.taint_of(rs1);
                    self.set_reg(rd, v, t);
                }
                Instr::LoadImm { rd, imm } => self.set_reg(rd, imm, false),
                Instr::Declassify { rd, rs1 } => {
                    let v = self.reg(rs1);
                    self.set_reg(rd, v, false);
                }
                Instr::Load {
                    rd,
                    base,
                    offset,
                    width,
                } => {
                    let addr = self.reg(base).wrapping_add(offset as u64);
                    // ProSpeCT blocks speculative execution of instructions
                    // with tainted operands, so a wrong-path load with a
                    // tainted address never reaches the cache.
                    if self.policy.block_tainted && self.taint_of(base) {
                        break;
                    }
                    let v = self.mem.read(addr, width);
                    let tainted = self.program.is_secret_addr(addr)
                        || self.mem_taint.contains(Self::granule(addr));
                    self.set_reg(rd, v, tainted);
                    let timing_addr = self.salted(addr);
                    let _ = self.caches.access_data(timing_addr);
                    self.transient_accesses.push(addr);
                }
                Instr::Store {
                    src,
                    base,
                    offset,
                    width,
                } => {
                    let addr = self.reg(base).wrapping_add(offset as u64);
                    // Stores do not modify the cache or memory before commit;
                    // record the old bytes for rollback of the speculative
                    // memory image.
                    self.snapshot_for_undo(addr, width.bytes() as usize);
                    let v = self.reg(src);
                    self.mem.write(addr, v, width);
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                    next_pc = if taken { target } else { pc + 1 };
                }
                Instr::Jump { target } => next_pc = target,
                Instr::JumpIndirect { rs1 } => next_pc = self.reg(rs1) as usize,
                Instr::Call { target } => {
                    let sp = self.reg(SP).wrapping_sub(8);
                    self.snapshot_for_undo(sp, 8);
                    self.set_reg(SP, sp, false);
                    self.mem.write_u64(sp, (pc + 1) as u64);
                    self.call_depth += 1;
                    next_pc = target;
                }
                Instr::CallIndirect { rs1 } => {
                    let sp = self.reg(SP).wrapping_sub(8);
                    self.snapshot_for_undo(sp, 8);
                    let target = self.reg(rs1) as usize;
                    self.set_reg(SP, sp, false);
                    self.mem.write_u64(sp, (pc + 1) as u64);
                    self.call_depth += 1;
                    next_pc = target;
                }
                Instr::Ret => {
                    if self.call_depth == 0 {
                        break;
                    }
                    self.call_depth -= 1;
                    let sp = self.reg(SP);
                    let ret = self.mem.read_u64(sp) as usize;
                    self.set_reg(SP, sp.wrapping_add(8), false);
                    self.transient_accesses.push(sp);
                    let timing_sp = self.salted(sp);
                    let _ = self.caches.access_data(timing_sp);
                    next_pc = ret;
                }
                Instr::Nop => {}
                Instr::Halt => break,
            }
            // A wrong-path branch may advance speculative frontend state
            // (the BTU's fetch cursor); the squash below rolls it back.
            if instr.is_branch() {
                self.frontend
                    .on_wrong_path_branch(pc, self.program.is_crypto_pc(pc));
            }
            self.stats.squashed_instructions += 1;
            pc = next_pc;
        }

        // Roll back the speculative state. The undo log is drained in
        // reverse so overlapping wrong-path stores unwind correctly, then
        // handed back to keep its buffer for the next excursion.
        let mut undo = std::mem::take(&mut self.mem_undo);
        for entry in undo.drain(..).rev() {
            self.mem
                .write_bytes(entry.addr, &entry.bytes[..entry.len as usize]);
        }
        self.mem_undo = undo;
        self.regs = saved_regs;
        self.reg_taint = saved_taint;
        self.call_depth = saved_call_depth;
    }
}

/// Convenience entry point: simulates `program` under `config`, loading the
/// provided BTU traces when the defense uses them.
///
/// # Errors
///
/// Propagates architectural execution errors.
pub fn simulate(
    program: &Program,
    config: CpuConfig,
    btu: Option<BranchTraceUnit>,
) -> Result<SimOutcome, IsaError> {
    Simulator::new(program, config, btu).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DefenseMode as Mode;
    use cassandra_btu::encode::EncodedTraces;
    use cassandra_btu::unit::BtuConfig;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::exec::Executor;
    use cassandra_isa::reg::{A0, A1, A2, ZERO};
    use cassandra_trace::genproc::generate_traces;

    /// Defenses are selected by label here, round-tripping the `FromStr`
    /// impl — and keeping this file free of per-mode references.
    fn defense(label: &str) -> Mode {
        label.parse().expect("known defense label")
    }

    fn loop_program(iters: u64) -> Program {
        let mut b = ProgramBuilder::new("timing-loop");
        b.begin_crypto();
        let data = b.alloc_u64s("data", &(0..64u64).collect::<Vec<_>>());
        b.li(A0, iters);
        b.li(A1, data);
        b.li(A2, 0);
        b.label("l");
        b.ld(cassandra_isa::reg::T0, A1, 0);
        b.add(A2, A2, cassandra_isa::reg::T0);
        b.addi(A1, A1, 8);
        b.andi(A1, A1, !7);
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "l");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    fn btu_for(program: &Program) -> BranchTraceUnit {
        let bundle = generate_traces(program, None, 10_000_000).unwrap();
        let encoded = EncodedTraces::from_bundle(program, &bundle);
        BranchTraceUnit::new(BtuConfig::default(), encoded)
    }

    #[test]
    fn functional_result_matches_the_reference_executor() {
        // The pipeline's speculative state must end architecturally identical
        // to the sequential executor (stores committed, registers final).
        let program = loop_program(20);
        let mut reference = Executor::new(&program);
        reference.run(1_000_000).unwrap();

        let outcome = simulate(&program, CpuConfig::golden_cove_like(), None).unwrap();
        assert!(outcome.halted);
        // The committed instruction count matches the executor's step count.
        assert_eq!(outcome.stats.committed_instructions, reference.steps());
    }

    #[test]
    fn all_defenses_commit_the_same_instructions() {
        let program = loop_program(32);
        let baseline = simulate(&program, CpuConfig::golden_cove_like(), None).unwrap();
        for mode in Mode::ALL {
            let cfg = CpuConfig::golden_cove_like().with_defense(mode);
            let btu = if mode.uses_btu() {
                Some(btu_for(&program))
            } else {
                None
            };
            let outcome = simulate(&program, cfg, btu).unwrap();
            assert_eq!(
                outcome.stats.committed_instructions, baseline.stats.committed_instructions,
                "{mode:?} must not change architectural behaviour"
            );
            assert_eq!(
                outcome.architectural_accesses, baseline.architectural_accesses,
                "{mode:?} must not change the architectural access trace"
            );
            assert!(outcome.halted);
        }
    }

    #[test]
    fn cassandra_has_no_crypto_mispredictions() {
        let program = loop_program(64);
        let cfg = CpuConfig::golden_cove_like().with_defense(defense("Cassandra"));
        let outcome = simulate(&program, cfg, Some(btu_for(&program))).unwrap();
        assert_eq!(outcome.stats.mispredictions, 0);
        assert_eq!(outcome.stats.squashed_instructions, 0);
        assert!(outcome.stats.btu.lookups > 0);
    }

    #[test]
    fn fence_stalls_every_branch_and_never_speculates() {
        let program = loop_program(64);
        let base = simulate(&program, CpuConfig::golden_cove_like(), None).unwrap();
        let cfg = CpuConfig::golden_cove_like().with_defense(defense("Fence"));
        let fence = simulate(&program, cfg, None).unwrap();
        assert_eq!(fence.stats.mispredictions, 0);
        assert_eq!(fence.stats.squashed_instructions, 0);
        assert!(fence.transient_accesses.is_empty());
        assert_eq!(
            fence.stats.fetch_stalls, fence.stats.committed_branches,
            "every branch stalls fetch until resolve"
        );
        assert!(fence.stats.cycles > base.stats.cycles);
    }

    #[test]
    fn zero_entry_trace_cache_pays_the_miss_penalty_per_lookup() {
        let program = loop_program(64);
        let full = simulate(
            &program,
            CpuConfig::golden_cove_like().with_defense(defense("Cassandra")),
            Some(btu_for(&program)),
        )
        .unwrap();
        let no_tc = simulate(
            &program,
            CpuConfig::golden_cove_like().with_defense(defense("Cassandra-noTC")),
            Some(btu_for(&program)),
        )
        .unwrap();
        // Replay is still exact (no mispredictions), but every multi-target
        // lookup misses and the runtime pays for the streaming.
        assert_eq!(no_tc.stats.mispredictions, 0);
        assert!(no_tc.stats.btu.misses > full.stats.btu.misses);
        assert_eq!(no_tc.stats.btu.hits, 0);
        assert!(no_tc.stats.cycles > full.stats.cycles);
    }

    #[test]
    fn tournament_promotes_the_hot_loop_branch() {
        let program = loop_program(64);
        let baseline = simulate(&program, CpuConfig::golden_cove_like(), None).unwrap();
        let cfg = CpuConfig::golden_cove_like().with_defense(defense("Tournament"));
        let outcome = simulate(&program, cfg, Some(btu_for(&program))).unwrap();
        // Architectural behaviour is untouched; both components saw work.
        assert_eq!(
            outcome.stats.committed_instructions,
            baseline.stats.committed_instructions
        );
        assert_eq!(
            outcome.architectural_accesses,
            baseline.architectural_accesses
        );
        assert!(outcome.stats.btu.lookups > 0, "hot executions replay");
        assert!(
            outcome.stats.bpu.pht_lookups > 0,
            "cold executions hit the BPU"
        );
        // The hot loop branch is promoted long before the mispredicted exit,
        // so the tournament avoids the baseline's loop-exit squash.
        assert!(outcome.stats.mispredictions <= baseline.stats.mispredictions);
    }

    #[test]
    fn partition_reassignment_is_cheaper_than_whole_flushes() {
        let program = loop_program(64);
        let base = CpuConfig::golden_cove_like();
        let flush_cfg = base
            .with_defense(defense("Cassandra"))
            .with_btu_flush_interval(50);
        let flushed = simulate(&program, flush_cfg, Some(btu_for(&program))).unwrap();
        let part_cfg = base
            .with_defense(defense("Cassandra-part"))
            .with_btu_flush_interval(50)
            .with_btu_switch_contexts(2);
        let partitioned = simulate(&program, part_cfg, Some(btu_for(&program))).unwrap();

        assert!(flushed.stats.periodic_btu_flushes > 1, "flushes happened");
        assert_eq!(partitioned.stats.periodic_btu_flushes, 0);
        assert!(partitioned.stats.context_switches > 1, "switches happened");
        assert!(partitioned.stats.btu.partition_switches > 1);
        // Same architectural behaviour, and the reassignment variant never
        // pays more Trace Cache misses than the whole-unit flush.
        assert_eq!(
            partitioned.stats.committed_instructions,
            flushed.stats.committed_instructions
        );
        assert_eq!(
            partitioned.architectural_accesses,
            flushed.architectural_accesses
        );
        assert!(partitioned.stats.btu.misses <= flushed.stats.btu.misses);
        assert!(partitioned.stats.cycles <= flushed.stats.cycles);
    }

    #[test]
    fn single_context_rotation_counts_no_switches() {
        // `btu_switch_contexts: 1` rotates through one context: every
        // periodic "switch" re-activates the already-active context, which
        // must count nothing anywhere — the pipeline's `context_switches`
        // and the BTU's `partition_switches` agree at zero, and the run is
        // timing-identical to one with no rotation at all.
        let program = loop_program(64);
        let base = CpuConfig::golden_cove_like();
        let cfg = base
            .with_defense(defense("Cassandra-part"))
            .with_btu_flush_interval(50)
            .with_btu_switch_contexts(1);
        let outcome = simulate(&program, cfg, Some(btu_for(&program))).unwrap();
        assert_eq!(outcome.stats.context_switches, 0);
        assert_eq!(outcome.stats.btu.partition_switches, 0);
        assert_eq!(outcome.stats.periodic_btu_flushes, 0);
        assert_eq!(outcome.stats.btu.flushes, 0);

        let quiet_cfg = base.with_defense(defense("Cassandra-part"));
        let quiet = simulate(&program, quiet_cfg, Some(btu_for(&program))).unwrap();
        assert_eq!(outcome.stats.cycles, quiet.stats.cycles);
        assert_eq!(outcome.stats.btu.misses, quiet.stats.btu.misses);
    }

    #[test]
    fn baseline_mispredicts_at_least_the_loop_exit() {
        let program = loop_program(64);
        let outcome = simulate(&program, CpuConfig::golden_cove_like(), None).unwrap();
        assert!(outcome.stats.mispredictions >= 1);
        assert!(outcome.stats.bpu.pht_lookups > 0);
    }

    #[test]
    fn spt_is_slower_than_baseline_on_branchy_code() {
        let program = loop_program(128);
        let base = simulate(&program, CpuConfig::golden_cove_like(), None).unwrap();
        let spt = simulate(
            &program,
            CpuConfig::golden_cove_like().with_defense(defense("SPT")),
            None,
        )
        .unwrap();
        assert!(spt.stats.cycles >= base.stats.cycles);
        assert!(spt.stats.defense_delayed_instructions > 0);
        assert!(
            spt.transient_accesses.is_empty(),
            "SPT never executes wrong-path transmitters"
        );
    }

    #[test]
    fn cassandra_lite_stalls_multi_target_branches() {
        let program = loop_program(64);
        let lite = simulate(
            &program,
            CpuConfig::golden_cove_like().with_defense(defense("Cassandra-lite")),
            Some(btu_for(&program)),
        )
        .unwrap();
        let full = simulate(
            &program,
            CpuConfig::golden_cove_like().with_defense(defense("Cassandra")),
            Some(btu_for(&program)),
        )
        .unwrap();
        assert!(lite.stats.fetch_stalls > 0);
        assert!(lite.stats.cycles >= full.stats.cycles);
    }

    #[test]
    fn instruction_budget_is_respected() {
        let mut b = ProgramBuilder::new("spin");
        b.label("l");
        b.j("l");
        let program = b.build().unwrap();
        let mut cfg = CpuConfig::golden_cove_like();
        cfg.max_instructions = 1000;
        let outcome = simulate(&program, cfg, None).unwrap();
        assert!(!outcome.halted);
        assert_eq!(outcome.stats.committed_instructions, 1000);
    }
}
