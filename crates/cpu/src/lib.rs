//! # cassandra-cpu
//!
//! A cycle-approximate out-of-order processor model for the Cassandra
//! reproduction: branch prediction (PHT/BTB/RSB), a four-level cache
//! hierarchy, the Cassandra Branch Trace Unit integration, the defense models
//! compared in the paper's evaluation (unsafe baseline, Cassandra,
//! Cassandra+STL, Cassandra-lite, SPT, ProSpeCT, Cassandra+ProSpeCT, plus
//! the Fence and Cassandra-noTC scenarios) and an analytic power/area model.
//!
//! Defenses are layered: a [`config::DefenseMode`] is only a *name*; the
//! mechanisms it enables live in a [`policy::DefensePolicy`] (resolved once
//! at pipeline construction) and the frontend behaviour behind the
//! [`frontend::BranchSource`] trait. The pipeline core never matches on the
//! mode — new defense scenarios are new policy values / branch sources.
//!
//! The main entry point is [`pipeline::simulate`]:
//!
//! ```
//! use cassandra_cpu::config::{CpuConfig, DefenseMode};
//! use cassandra_cpu::pipeline::simulate;
//! use cassandra_isa::builder::ProgramBuilder;
//! use cassandra_isa::reg::{A0, ZERO};
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let mut b = ProgramBuilder::new("count");
//! b.li(A0, 100);
//! b.label("l");
//! b.addi(A0, A0, -1);
//! b.bne(A0, ZERO, "l");
//! b.halt();
//! let program = b.build()?;
//!
//! let outcome = simulate(&program, CpuConfig::golden_cove_like(), None)?;
//! assert!(outcome.halted);
//! assert!(outcome.stats.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod bpu;
pub mod cache;
pub mod config;
pub mod frontend;
pub mod multi;
pub mod pipeline;
pub mod policy;
pub mod power;
pub mod stats;
pub mod taint;

pub use config::{CpuConfig, DefenseMode, ParseDefenseModeError};
pub use frontend::{BranchEvent, BranchSource, FetchOutcome, FrontendDecision};
pub use multi::{
    simulate_multi, MultiTenantOutcome, MultiTenantSimulator, SwitchPolicy, Tenant, TenantOutcome,
};
pub use pipeline::{simulate, SimOutcome, Simulator};
pub use policy::{DefensePolicy, FrontendKind};
pub use power::{power_area_report, PowerAreaReport};
pub use stats::SimStats;
