//! The defense-policy layer.
//!
//! A [`DefensePolicy`] is the structured, mechanism-level description of a
//! secure-speculation design: which [frontend](FrontendKind) steers fetch at
//! branches, whether store-to-load forwarding is allowed, and which
//! execution-delay rules apply to speculative instructions. The pipeline
//! resolves a [`crate::config::DefenseMode`] into a policy **once** at
//! `Simulator::new` and never matches on the mode again — adding a new
//! defense scenario means describing it as a policy value, not editing the
//! pipeline core.

use serde::{Deserialize, Serialize};

/// Which branch source steers fetch at branches (see [`crate::frontend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrontendKind {
    /// The branch prediction unit (PHT/BTB/RSB) predicts every branch.
    Bpu,
    /// Crypto branches are replayed from the Branch Trace Unit; non-crypto
    /// branches use the BPU guarded by the crypto-range integrity check.
    Btu,
    /// Only single-target crypto hints are honoured; multi-target crypto
    /// branches stall fetch until they resolve (Cassandra-lite, Q3).
    BtuLite,
    /// Serializing baseline: every branch stalls fetch until it resolves.
    /// The classic speculation-free lower bound.
    Fence,
    /// Hybrid tournament: per-PC confidence counters arbitrate each crypto
    /// branch between BTU replay (hot branches that earned a trace) and the
    /// speculative BPU (cold branches); non-crypto branches use the guarded
    /// BPU as under Cassandra.
    Tournament,
}

impl FrontendKind {
    /// True if this frontend consumes BTU traces / hints for crypto branches.
    pub fn uses_btu(self) -> bool {
        matches!(
            self,
            FrontendKind::Btu | FrontendKind::BtuLite | FrontendKind::Tournament
        )
    }
}

/// How the execution core treats speculative instructions under a defense.
///
/// The pipeline consults only this value (resolved once from the configured
/// [`crate::config::DefenseMode`]); the flag methods on `DefenseMode` are
/// thin views over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DefensePolicy {
    /// The branch source steering fetch at branches.
    pub frontend: FrontendKind,
    /// Whether loads may forward from older in-flight stores. Disabled by
    /// the data-flow protection of Cassandra+STL.
    pub stl_forwarding: bool,
    /// SPT-style rule: transmitters (loads and branches) may not execute
    /// while speculative, and never execute on the wrong path.
    pub delay_transmitters: bool,
    /// ProSpeCT-style rule: instructions with tainted (secret-derived)
    /// operands may not execute while speculative.
    pub block_tainted: bool,
    /// Overrides the Trace Cache entry count of the BTU (e.g. `Some(0)` for
    /// the zero-entry `Cassandra-noTC` scenario where every multi-target
    /// lookup streams its trace from the data pages).
    pub trace_cache_entries: Option<usize>,
    /// Splits the BTU's Trace Cache ways into this many per-context
    /// partitions (the Q4 partition-reassignment scenario); `None` keeps the
    /// unpartitioned unit of the paper's Table 3.
    pub btu_partitions: Option<usize>,
    /// Overrides the tournament frontend's promotion threshold: how many
    /// executions a crypto branch needs before its BTU trace is trusted over
    /// the BPU. `None` uses [`crate::frontend::TOURNAMENT_PROMOTE_THRESHOLD`].
    pub tournament_threshold: Option<u32>,
}

impl DefensePolicy {
    /// The unprotected out-of-order baseline: BPU everywhere, forwarding on,
    /// nothing delayed.
    pub const fn baseline() -> Self {
        DefensePolicy {
            frontend: FrontendKind::Bpu,
            stl_forwarding: true,
            delay_transmitters: false,
            block_tainted: false,
            trace_cache_entries: None,
            btu_partitions: None,
            tournament_threshold: None,
        }
    }

    /// The same policy with a different frontend.
    #[must_use]
    pub const fn with_frontend(mut self, frontend: FrontendKind) -> Self {
        self.frontend = frontend;
        self
    }

    /// The same policy with store-to-load forwarding disabled.
    #[must_use]
    pub const fn without_stl_forwarding(mut self) -> Self {
        self.stl_forwarding = false;
        self
    }

    /// The same policy with the SPT transmitter-delay rule enabled.
    #[must_use]
    pub const fn delaying_transmitters(mut self) -> Self {
        self.delay_transmitters = true;
        self
    }

    /// The same policy with the ProSpeCT taint-blocking rule enabled.
    #[must_use]
    pub const fn blocking_tainted(mut self) -> Self {
        self.block_tainted = true;
        self
    }

    /// The same policy with a Trace Cache entry-count override.
    #[must_use]
    pub const fn with_trace_cache_entries(mut self, entries: usize) -> Self {
        self.trace_cache_entries = Some(entries);
        self
    }

    /// The same policy with the BTU's ways split into per-context partitions.
    #[must_use]
    pub const fn with_btu_partitions(mut self, partitions: usize) -> Self {
        self.btu_partitions = Some(partitions);
        self
    }

    /// The same policy with a tournament promotion-threshold override.
    #[must_use]
    pub const fn with_tournament_threshold(mut self, threshold: u32) -> Self {
        self.tournament_threshold = Some(threshold);
        self
    }
}

impl Default for DefensePolicy {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_policy_is_permissive() {
        let p = DefensePolicy::baseline();
        assert_eq!(p.frontend, FrontendKind::Bpu);
        assert!(p.stl_forwarding);
        assert!(!p.delay_transmitters);
        assert!(!p.block_tainted);
        assert_eq!(p.trace_cache_entries, None);
        assert_eq!(p.btu_partitions, None);
        assert_eq!(p.tournament_threshold, None);
    }

    #[test]
    fn builders_compose() {
        let p = DefensePolicy::baseline()
            .with_frontend(FrontendKind::Btu)
            .without_stl_forwarding()
            .with_trace_cache_entries(0)
            .with_btu_partitions(2)
            .with_tournament_threshold(8);
        assert_eq!(p.frontend, FrontendKind::Btu);
        assert!(!p.stl_forwarding);
        assert_eq!(p.trace_cache_entries, Some(0));
        assert_eq!(p.btu_partitions, Some(2));
        assert_eq!(p.tournament_threshold, Some(8));
    }

    #[test]
    fn frontend_btu_usage() {
        assert!(FrontendKind::Btu.uses_btu());
        assert!(FrontendKind::BtuLite.uses_btu());
        assert!(FrontendKind::Tournament.uses_btu());
        assert!(!FrontendKind::Bpu.uses_btu());
        assert!(!FrontendKind::Fence.uses_btu());
    }
}
