//! Analyzer ground-truth checks against the real `cassandra-kernels`
//! programs: every Spectre gadget that transmits a secret must be flagged
//! transient, the declassified-register gadgets must not be, and the
//! constant-time kernels must certify clean.

use cassandra_analysis::{analyze, StaticVerdict};
use cassandra_kernels::gadgets::{self, BranchSite, LeakGadget};

#[test]
fn gadget_scenarios_get_the_expected_verdicts() {
    for g in gadgets::all_scenarios(0x5a5a_5a5a) {
        let report = analyze(&g.program);
        // R2 leaks only the declassified public value: no secret flows to a
        // sink on either path, so the analyzer must not cry wolf.
        let expected = if g.gadget == LeakGadget::NonCryptoRegister {
            StaticVerdict::CtClean
        } else {
            StaticVerdict::TransientLeak
        };
        assert_eq!(
            report.verdict(),
            expected,
            "{} ({:?}->{:?}): {:#?}",
            report.program_name,
            g.branch_site,
            g.gadget,
            report.findings
        );
        if expected == StaticVerdict::TransientLeak {
            // Attribution points at the marked mispredictable branch.
            assert!(
                report
                    .transient_findings()
                    .any(|f| f.branch_pc == Some(g.branch_pc)),
                "{}: no finding attributed to branch {}",
                report.program_name,
                g.branch_pc
            );
        }
    }
}

#[test]
fn listing1_skip_loop_is_a_transient_transmitter() {
    let g = gadgets::listing1_decrypt(0xdead_beef, 8);
    let report = analyze(&g.program);
    assert_eq!(
        report.verdict(),
        StaticVerdict::TransientLeak,
        "{report:#?}"
    );
}

#[test]
fn single_scenario_smoke() {
    let g = gadgets::scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, 7);
    let report = analyze(&g.program);
    assert_eq!(report.verdict(), StaticVerdict::TransientLeak);
    // Architecturally the program only touches declassified data.
    assert_eq!(report.arch_findings().count(), 0);
}

#[test]
fn ct_kernels_certify_clean_and_aes_is_flagged() {
    for w in cassandra_kernels::suite::full_suite() {
        let report = analyze(&w.kernel.program);
        let name = &w.name;
        if name.contains("AES") || name.contains("CBC") {
            // Table-based AES: secret-indexed S-box lookups are real
            // architectural constant-time violations.
            assert_eq!(
                report.verdict(),
                StaticVerdict::ArchLeak,
                "{name}: {:#?}",
                report.findings
            );
        } else {
            assert_eq!(
                report.verdict(),
                StaticVerdict::CtClean,
                "{name}: {:#?}",
                report.findings
            );
        }
    }
}
