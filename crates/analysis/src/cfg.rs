//! Control-flow graph construction over a flat [`Program`] instruction list.
//!
//! The CFG is the substrate of both taint passes: architectural dataflow
//! iterates its edges to a fixpoint, and the speculative pass walks bounded
//! wrong-path windows along them. Edges **over-approximate** dynamic control
//! flow — every edge the [`cassandra_isa::exec::Executor`] can take is
//! present, plus possibly more:
//!
//! * conditional branches contribute both the taken and the fall-through
//!   edge;
//! * indirect jumps and calls
//!   ([`BranchKind::is_potentially_multi_target`](cassandra_isa::instr::BranchKind::is_potentially_multi_target))
//!   whose target register is not a build-time constant get the full
//!   indirect-target set — every label position, since the builder's
//!   [`li_label`](cassandra_isa::builder::ProgramBuilder::li_label) is the
//!   only way programs materialise code addresses;
//! * `ret` edges go to the return sites of every call that targets a
//!   function entry from which the `ret` is intraprocedurally reachable —
//!   not just the dynamically matching one. This is still sound: any
//!   dynamically executed `ret` pops the return address of its most recent
//!   unmatched call, and the path from that call's target to the `ret`
//!   (with nested call/return pairs collapsed) is exactly an
//!   intraprocedural path, so the edge is present. Restricting to the
//!   containing function keeps abstract states of unrelated functions from
//!   merging at every call's return site, which matters for taint
//!   precision.
//!
//! The over-approximation direction matters: the differential property
//! tests assert `dynamic edges ⊆ static edges`, never the converse.

use cassandra_isa::instr::Instr;
use cassandra_isa::program::Program;
use std::collections::BTreeSet;

/// A maximal straight-line instruction sequence `[start, end)` with control
/// transfers only at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index of the block.
    pub start: usize,
    /// One past the last instruction index of the block.
    pub end: usize,
    /// Start indices of the successor blocks.
    pub successors: Vec<usize>,
}

/// The static control-flow graph of one program: per-instruction successor
/// sets plus the derived basic-block partition.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    blocks: Vec<BasicBlock>,
    return_sites: Vec<usize>,
    indirect_targets: Vec<usize>,
    ret_targets: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        // Indirect control transfers can land on any label: `li_label` is
        // the only constructor of code addresses in the builder API.
        let indirect_targets: Vec<usize> = program
            .labels
            .values()
            .copied()
            .filter(|&t| t < n)
            .collect();
        let return_sites: Vec<usize> = program
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::Call { .. } | Instr::CallIndirect { .. }))
            .map(|(pc, _)| pc + 1)
            .filter(|&t| t < n)
            .collect();

        let ret_targets = compute_ret_targets(program, &indirect_targets, &return_sites);

        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (pc, instr) in program.instrs.iter().enumerate() {
            let fall = pc + 1;
            let mut out: Vec<usize> = match instr {
                Instr::Branch { target, .. } => vec![fall, *target],
                Instr::Jump { target } | Instr::Call { target } => vec![*target],
                Instr::JumpIndirect { .. } | Instr::CallIndirect { .. } => indirect_targets.clone(),
                Instr::Ret => ret_targets[pc].clone(),
                Instr::Halt => Vec::new(),
                _ => vec![fall],
            };
            out.retain(|&t| t < n);
            out.sort_unstable();
            out.dedup();
            succs.push(out);
        }

        let blocks = build_blocks(n, &succs);
        Cfg {
            succs,
            blocks,
            return_sites,
            indirect_targets,
            ret_targets,
        }
    }

    /// Number of instructions (CFG nodes).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor instruction indices of `pc` (empty for `halt` or an
    /// out-of-range index).
    pub fn successors(&self, pc: usize) -> &[usize] {
        self.succs.get(pc).map_or(&[], Vec::as_slice)
    }

    /// True if the static graph contains the edge `from → to`.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.successors(from).contains(&to)
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The basic-block partition, ordered by start index.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All return sites (the instruction after each call).
    pub fn return_sites(&self) -> &[usize] {
        &self.return_sites
    }

    /// Targets of a `ret` at `pc`: the return sites of every call whose
    /// target function intraprocedurally reaches this `ret` (empty for a
    /// non-`ret` or out-of-range pc).
    pub fn ret_targets(&self, pc: usize) -> &[usize] {
        self.ret_targets.get(pc).map_or(&[], Vec::as_slice)
    }

    /// The indirect-target set: every label position, the over-approximated
    /// target set of `jr`/`callr` with a non-constant register.
    pub fn indirect_targets(&self) -> &[usize] {
        &self.indirect_targets
    }
}

/// For every `ret` instruction, the set of return sites it may transfer
/// to: the union, over all function entries that intraprocedurally reach
/// the `ret`, of the return sites of calls targeting that entry.
///
/// Intraprocedural reachability walks fall-through, branch and jump edges
/// from a call target, and *steps over* nested calls (a `call` continues
/// at its own return site — the nested body is the callee's business).
/// `CallIndirect` counts as a call site of every indirect target.
fn compute_ret_targets(
    program: &Program,
    indirect_targets: &[usize],
    return_sites: &[usize],
) -> Vec<Vec<usize>> {
    let n = program.len();
    // entry pc → return sites of calls targeting it.
    let mut callers: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (pc, instr) in program.instrs.iter().enumerate() {
        match instr {
            Instr::Call { target } if *target < n && pc + 1 < n => {
                callers.entry(*target).or_default().push(pc + 1);
            }
            Instr::CallIndirect { .. } => {
                for &t in indirect_targets {
                    if pc + 1 < n {
                        callers.entry(t).or_default().push(pc + 1);
                    }
                }
            }
            _ => {}
        }
    }

    let mut ret_targets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (&entry, sites) in &callers {
        // BFS over intraprocedural edges from the function entry.
        let mut seen = vec![false; n];
        let mut stack = vec![entry];
        seen[entry] = true;
        while let Some(pc) = stack.pop() {
            let nexts: Vec<usize> = match &program.instrs[pc] {
                Instr::Branch { target, .. } => vec![pc + 1, *target],
                Instr::Jump { target } => vec![*target],
                // Step over the callee: execution resumes after the call.
                Instr::Call { .. } | Instr::CallIndirect { .. } => vec![pc + 1],
                Instr::JumpIndirect { .. } => indirect_targets.to_vec(),
                Instr::Ret => {
                    ret_targets[pc].extend(sites.iter().copied());
                    Vec::new()
                }
                Instr::Halt => Vec::new(),
                _ => vec![pc + 1],
            };
            for t in nexts {
                if t < n && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
    }

    program
        .instrs
        .iter()
        .enumerate()
        .map(|(pc, instr)| {
            if !matches!(instr, Instr::Ret) {
                return Vec::new();
            }
            if ret_targets[pc].is_empty() {
                // Reached by no known call entry (e.g. only via fall-through
                // from straight-line code): fall back to every return site.
                return_sites.to_vec()
            } else {
                ret_targets[pc].iter().copied().collect()
            }
        })
        .collect()
}

/// Partitions `[0, n)` into basic blocks given per-instruction successors.
fn build_blocks(n: usize, succs: &[Vec<usize>]) -> Vec<BasicBlock> {
    if n == 0 {
        return Vec::new();
    }
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(0);
    for (pc, out) in succs.iter().enumerate() {
        // An instruction with anything but a single fall-through successor
        // ends its block; all its targets start one.
        let diverts = out.len() != 1 || out[0] != pc + 1;
        if diverts {
            for &t in out {
                leaders.insert(t);
            }
            if pc + 1 < n {
                leaders.insert(pc + 1);
            }
        }
    }
    let starts: Vec<usize> = leaders.into_iter().collect();
    let mut blocks = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(n);
        let mut successors: Vec<usize> = succs[end - 1].clone();
        successors.sort_unstable();
        successors.dedup();
        blocks.push(BasicBlock {
            start,
            end,
            successors,
        });
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1, ZERO};

    fn diamond() -> Program {
        let mut b = ProgramBuilder::new("diamond");
        b.li(A0, 1);
        b.beq(A0, ZERO, "else"); // 1
        b.li(A1, 10); // 2
        b.j("join"); // 3
        b.label("else");
        b.li(A1, 20); // 4
        b.label("join");
        b.halt(); // 5
        b.build().unwrap()
    }

    #[test]
    fn branch_has_both_edges_and_halt_none() {
        let cfg = Cfg::build(&diamond());
        assert_eq!(cfg.successors(1), &[2, 4]);
        assert_eq!(cfg.successors(3), &[5]);
        assert!(cfg.successors(5).is_empty());
        assert!(cfg.has_edge(1, 4));
        assert!(!cfg.has_edge(1, 5));
    }

    #[test]
    fn blocks_partition_the_program() {
        let cfg = Cfg::build(&diamond());
        let covered: usize = cfg.blocks().iter().map(|b| b.end - b.start).sum();
        assert_eq!(covered, cfg.len());
        assert_eq!(cfg.blocks()[0].start, 0);
        // Block boundaries sit at the branch targets.
        assert!(cfg.blocks().iter().any(|b| b.start == 4));
        assert!(cfg.blocks().iter().any(|b| b.start == 5));
    }

    #[test]
    fn ret_targets_every_return_site() {
        let mut b = ProgramBuilder::new("calls");
        b.call("f"); // 0 → return site 1
        b.call("f"); // 1 → return site 2
        b.halt(); // 2
        b.func("f");
        b.ret(); // 3
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.return_sites(), &[1, 2]);
        assert_eq!(cfg.successors(3), &[1, 2]);
    }

    #[test]
    fn indirect_jump_targets_all_labels() {
        let mut b = ProgramBuilder::new("indirect");
        b.li_label(A0, "t1"); // 0
        b.jr(A0); // 1
        b.label("t1");
        b.nop(); // 2
        b.label("t2");
        b.halt(); // 3
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.successors(1), &[2, 3]);
        assert_eq!(cfg.indirect_targets(), &[2, 3]);
    }
}
