//! Static constant-time and speculative-leakage analysis over
//! [`cassandra_isa`] programs.
//!
//! The crate answers, without running a single simulated cycle, the two
//! questions the dynamic harness in `cassandra-core` can only sample:
//!
//! 1. **Architectural constant-time** — can any branch condition or
//!    load/store address depend on a secret on *any* architecturally
//!    reachable path? A forward taint dataflow over the static CFG
//!    ([`Cfg`]) answers this with a sound over-approximation: registers
//!    and region-granular memory carry taint seeded from the program's
//!    `secret_ranges`, states join at merge points, and the iteration runs
//!    to a fixpoint.
//! 2. **Speculative transmission** — even if architecturally clean, does a
//!    bounded wrong-path window after some conditional (a Spectre-PHT
//!    mispredict) reach a secret-tainted sink? The speculative pass
//!    re-runs the same transfer function down both successors of every
//!    reachable conditional, with the ProSpeCT rule that a transient
//!    `declassify` does not launder taint.
//!
//! The contract, relied on by the differential tests against the
//! simulator, is **over-approximate, never under-approximate**: a
//! [`StaticVerdict::CtClean`] program never produces a secret-dependent
//! attacker-visible trace dynamically, while a flagged program may or may
//! not leak in practice (false positives are allowed, false negatives are
//! a bug).
//!
//! ```
//! use cassandra_isa::builder::ProgramBuilder;
//! use cassandra_isa::reg::{A0, T0, ZERO};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let key = b.alloc_secret_u64s("key", &[7]);
//! b.li(T0, key);
//! b.ld(A0, T0, 0);
//! b.beq(A0, ZERO, "end"); // branches on the secret
//! b.label("end");
//! b.halt();
//! let report = cassandra_analysis::analyze(&b.build().unwrap());
//! assert_eq!(report.verdict(), cassandra_analysis::StaticVerdict::ArchLeak);
//! ```

#![deny(missing_docs)]

pub mod cfg;
pub mod report;
pub mod speculative;
pub mod taint;

pub use cfg::{BasicBlock, Cfg};
pub use report::{Finding, FindingKind, StaticReport, StaticVerdict};

use cassandra_isa::instr::Instr;
use cassandra_isa::program::Program;

/// Default speculative window length in instructions — sized like a
/// generous reorder-buffer wrong-path budget, and comfortably longer than
/// every gadget in `cassandra-kernels`.
pub const DEFAULT_SPECULATIVE_WINDOW: usize = 64;

/// Analyzes `program` with the [`DEFAULT_SPECULATIVE_WINDOW`].
pub fn analyze(program: &Program) -> StaticReport {
    analyze_with(program, DEFAULT_SPECULATIVE_WINDOW)
}

/// Analyzes `program` with an explicit speculative window length.
///
/// Runs CFG construction, the architectural taint fixpoint and the
/// bounded wrong-path pass, and assembles the [`StaticReport`].
pub fn analyze_with(program: &Program, window: usize) -> StaticReport {
    let cfg = Cfg::build(program);
    let (map, _) = taint::MemoryMap::build(program);
    let arch = taint::arch_fixpoint(program, &map, &cfg);
    let transient = speculative::speculative_pass(program, &map, &cfg, &arch, window);

    let mut findings: Vec<Finding> = arch
        .events
        .iter()
        .map(|e| Finding {
            pc: e.pc,
            kind: e.kind,
            transient: false,
            branch_pc: None,
        })
        .collect();
    // One transient finding per sink, attributed to the lowest-pc branch
    // whose window reaches it (TransientEvent order is (event, branch_pc)).
    let mut seen_transient: Vec<taint::Event> = Vec::new();
    for t in &transient {
        if seen_transient.contains(&t.event) {
            continue;
        }
        seen_transient.push(t.event);
        findings.push(Finding {
            pc: t.event.pc,
            kind: t.event.kind,
            transient: true,
            branch_pc: Some(t.branch_pc),
        });
    }
    findings.sort();

    let tainted_branches: Vec<usize> = arch
        .branch_taint
        .iter()
        .filter(|&(_, &t)| t)
        .map(|(&pc, _)| pc)
        .collect();
    let conditional_branches = program
        .instrs
        .iter()
        .filter(|i| matches!(i, Instr::Branch { .. }))
        .count();

    StaticReport {
        program_name: program.name.clone(),
        instructions: program.len(),
        cfg_blocks: cfg.blocks().len(),
        cfg_edges: cfg.edge_count(),
        conditional_branches,
        tainted_branches,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, T0, ZERO};

    #[test]
    fn straight_line_public_program_is_ct_clean() {
        let mut b = ProgramBuilder::new("clean");
        let data = b.alloc_u64s("data", &[1, 2, 3]);
        b.li(T0, data);
        b.ld(A0, T0, 0);
        b.beq(A0, ZERO, "end");
        b.label("end");
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert_eq!(report.verdict(), StaticVerdict::CtClean);
        assert!(report.is_ct_clean());
        assert!(!report.is_transient_transmitter());
        assert!(report.tainted_branches.is_empty());
    }

    #[test]
    fn report_serializes_round_trip() {
        let mut b = ProgramBuilder::new("roundtrip");
        let key = b.alloc_secret_u64s("key", &[7]);
        b.li(T0, key);
        b.ld(A0, T0, 0);
        b.beq(A0, ZERO, "end");
        b.label("end");
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert_eq!(report.verdict(), StaticVerdict::ArchLeak);
        let json = serde_json::to_string(&report).unwrap();
        let back: StaticReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn verdict_ordering_prefers_arch_over_transient() {
        let finding = |transient| Finding {
            pc: 1,
            kind: FindingKind::LoadAddress,
            transient,
            branch_pc: transient.then_some(0),
        };
        let mut report = StaticReport {
            program_name: "x".into(),
            instructions: 2,
            cfg_blocks: 1,
            cfg_edges: 1,
            conditional_branches: 0,
            tainted_branches: Vec::new(),
            findings: vec![finding(true)],
        };
        assert_eq!(report.verdict(), StaticVerdict::TransientLeak);
        report.findings.push(finding(false));
        assert_eq!(report.verdict(), StaticVerdict::ArchLeak);
    }
}
