//! The speculative extension: bounded wrong-path taint windows.
//!
//! After every architecturally reachable conditional branch the analyzer
//! models a Spectre-PHT mispredict by re-running the taint transfer from
//! **both** successors — including an edge the architectural pass pruned
//! as constant-infeasible, which is exactly how the `gadgets.rs` trigger
//! branches (`beq` on constants, never taken) smuggle execution onto their
//! transient paths. Each window walks up to `window` instructions with
//! wrong-path semantics: [`Declassify`](cassandra_isa::instr::Instr) does
//! **not** clear taint, because declassification is an architectural
//! commitment and a squashed window that touched the secret has already
//! transmitted it (the ProSpeCT rule).
//!
//! Windows start from the branch's architectural in-state, so values the
//! program declassified *before* the branch stay public inside the window
//! — a transiently executed leak of already-public data is not a finding.

use crate::cfg::Cfg;
use crate::taint::{
    bypass_merge, ArchAnalysis, Event, Interproc, MemoryMap, Next, State, Transfer,
};
use cassandra_isa::instr::Instr;
use cassandra_isa::program::Program;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A leak event found only inside a speculative window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TransientEvent {
    /// The underlying sink event.
    pub event: Event,
    /// The conditional branch whose mispredict opens the window.
    pub branch_pc: usize,
}

/// Runs bounded wrong-path windows after every architecturally reachable
/// conditional branch and returns the events seen inside them.
///
/// Events the architectural pass already reported are filtered out — a
/// transient finding is one *only* reachable down a wrong path.
pub fn speculative_pass(
    program: &Program,
    map: &MemoryMap,
    cfg: &Cfg,
    arch: &ArchAnalysis,
    window: usize,
) -> Vec<TransientEvent> {
    let n = program.len();
    let transfer = Transfer::new(program, map, true);
    let interproc = Interproc::build(program, cfg);
    let mut out: BTreeSet<TransientEvent> = BTreeSet::new();

    for pc in 0..n {
        let Some(Instr::Branch { target, .. }) = program.instr(pc) else {
            continue;
        };
        let Some(in_state) = arch.in_states[pc].as_ref() else {
            continue;
        };
        // A mispredict can send execution down either edge regardless of
        // what the condition evaluates to.
        let mut seeds: Vec<usize> = Vec::new();
        if pc + 1 < n {
            seeds.push(pc + 1);
        }
        if *target < n && *target != pc + 1 {
            seeds.push(*target);
        }
        for seed in seeds {
            run_window(
                &transfer, cfg, &interproc, seed, in_state, window, pc, arch, &mut out,
            );
        }
    }
    out.into_iter().collect()
}

/// Walks one wrong-path window from `seed`, joining states per pc, and
/// records sink events not already known architecturally.
///
/// Return edges get the same interprocedural bypass as the architectural
/// pass: registers the callee never writes come from the caller's state at
/// the call — the window's own state when the call happened inside the
/// window, the architectural in-state otherwise.
#[allow(clippy::too_many_arguments)]
fn run_window(
    transfer: &Transfer<'_>,
    cfg: &Cfg,
    interproc: &Interproc,
    seed: usize,
    in_state: &State,
    window: usize,
    branch_pc: usize,
    arch: &ArchAnalysis,
    out: &mut BTreeSet<TransientEvent>,
) {
    // Per-pc joined state and the largest remaining budget it was reached
    // with; re-visit only when either improves, so the walk terminates.
    let mut visited: BTreeMap<usize, (State, usize)> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    visited.insert(seed, (in_state.clone(), window));
    queue.push_back(seed);

    let mut events = Vec::new();
    let mut succs = Vec::new();
    while let Some(pc) = queue.pop_front() {
        let (state, budget) = visited.get(&pc).cloned().expect("queued pc is visited");
        if budget == 0 {
            continue;
        }
        let mut state = state;
        events.clear();
        let next = transfer.apply(pc, &mut state, &mut events);
        for e in &events {
            if !arch.events.contains(e) {
                out.insert(TransientEvent {
                    event: *e,
                    branch_pc,
                });
            }
        }

        let remaining = budget - 1;
        let enqueue = |succ: usize,
                       incoming: &State,
                       visited: &mut BTreeMap<usize, (State, usize)>,
                       queue: &mut VecDeque<usize>| {
            let revisit = match visited.get_mut(&succ) {
                Some((existing, depth)) => {
                    let grew = existing.join_from(incoming, transfer.memory_map());
                    let deeper = remaining > *depth;
                    if deeper {
                        *depth = remaining;
                    }
                    grew || deeper
                }
                None => {
                    visited.insert(succ, (incoming.clone(), remaining));
                    true
                }
            };
            if revisit {
                queue.push_back(succ);
            }
        };

        if matches!(next, Next::Ret) {
            if let Some(edges) = interproc.ret_edges.get(&pc) {
                for &(site, writeset) in edges {
                    let caller = visited
                        .get(&(site - 1))
                        .map(|(s, _)| s.clone())
                        .or_else(|| arch.in_states[site - 1].clone());
                    let Some(caller) = caller else { continue };
                    let merged = bypass_merge(&caller, &state, writeset, transfer.memory_map());
                    enqueue(site, &merged, &mut visited, &mut queue);
                }
                continue;
            }
        }
        transfer.successors(pc, next, cfg, &mut succs);
        for &succ in &succs {
            enqueue(succ, &state, &mut visited, &mut queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FindingKind;
    use crate::taint::arch_fixpoint;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1, T0, ZERO};

    fn transient_events(program: &Program, window: usize) -> Vec<TransientEvent> {
        let cfg = Cfg::build(program);
        let (map, _) = MemoryMap::build(program);
        let arch = arch_fixpoint(program, &map, &cfg);
        assert!(arch.events.is_empty(), "arch-clean precondition");
        speculative_pass(program, &map, &cfg, &arch, window)
    }

    /// The canonical gadget shape: a constant never-taken branch guarding a
    /// secret-indexed load. Architecturally dead, transiently reachable.
    #[test]
    fn never_taken_branch_guards_transient_transmitter() {
        let mut b = ProgramBuilder::new("transient-gadget");
        let s = b.alloc_secret_u64s("key", &[0x5a]);
        let probe = b.alloc_zeros("probe", 128);
        b.li(T0, 1);
        let branch_pc = b.here();
        b.beq(T0, ZERO, "transient"); // provably never taken
        b.halt();
        b.label("transient");
        b.li(T0, s);
        b.ld(A0, T0, 0); // secret
        b.li(A1, probe);
        b.add(A1, A1, A0);
        let leak_pc = b.here();
        b.lb(A0, A1, 0); // transmit
        b.halt();
        let p = b.build().unwrap();
        let events = transient_events(&p, 64);
        assert!(events.iter().any(|t| t.event.pc == leak_pc
            && t.event.kind == FindingKind::LoadAddress
            && t.branch_pc == branch_pc));
    }

    /// Declassification inside the window does not launder taint.
    #[test]
    fn transient_declassify_keeps_taint() {
        let mut b = ProgramBuilder::new("transient-declass");
        let s = b.alloc_secret_u64s("key", &[0x77]);
        let probe = b.alloc_zeros("probe", 128);
        b.li(T0, 1);
        b.beq(T0, ZERO, "transient");
        b.halt();
        b.label("transient");
        b.li(T0, s);
        b.ld(A0, T0, 0);
        b.declassify(A0, A0); // architectural no-op on the wrong path
        b.li(A1, probe);
        b.add(A1, A1, A0);
        b.lb(A0, A1, 0);
        b.halt();
        let p = b.build().unwrap();
        let events = transient_events(&p, 64);
        assert!(!events.is_empty());
    }

    /// Values declassified *before* the branch stay public in the window.
    #[test]
    fn pre_branch_declassified_value_is_public_in_window() {
        let mut b = ProgramBuilder::new("public-window");
        let s = b.alloc_secret_u64s("key", &[0x11]);
        let probe = b.alloc_zeros("probe", 128);
        b.li(T0, s);
        b.ld(A0, T0, 0);
        b.declassify(A0, A0); // public from here on
        b.li(T0, 1);
        b.beq(T0, ZERO, "transient");
        b.halt();
        b.label("transient");
        b.li(A1, probe);
        b.add(A1, A1, A0);
        b.lb(A0, A1, 0); // leaks a declassified (public) value
        b.halt();
        let p = b.build().unwrap();
        let events = transient_events(&p, 64);
        assert!(events.is_empty(), "{events:?}");
    }

    /// The window bound is honoured: a transmitter beyond it is not
    /// reached.
    #[test]
    fn window_bound_limits_the_walk() {
        let mut b = ProgramBuilder::new("deep-gadget");
        let s = b.alloc_secret_u64s("key", &[0x5a]);
        let probe = b.alloc_zeros("probe", 128);
        b.li(T0, 1);
        b.beq(T0, ZERO, "transient");
        b.halt();
        b.label("transient");
        for _ in 0..32 {
            b.nop();
        }
        b.li(T0, s);
        b.ld(A0, T0, 0);
        b.li(A1, probe);
        b.add(A1, A1, A0);
        b.lb(A0, A1, 0);
        b.halt();
        let p = b.build().unwrap();
        assert!(transient_events(&p, 8).is_empty());
        assert!(!transient_events(&p, 64).is_empty());
    }
}
