//! The forward secret-taint dataflow: abstract domain, transfer function
//! and the architectural fixpoint.
//!
//! The analysis runs a classic worklist iteration over the [`Cfg`], joining
//! abstract states at merge points until nothing changes. The domain tracks,
//! per register, a taint bit plus a small value lattice
//! (`Const ⊑ Region ⊑ Unknown`) — the constant layer folds immediates
//! through [`AluOp::apply`](cassandra_isa::instr::AluOp::apply) so
//! statically-dead branch edges (a gadget's
//! never-taken `beq` on constants) are pruned from the architectural pass,
//! and the region layer keeps pointer-plus-counter address arithmetic
//! precise enough to certify real constant-time kernels.
//!
//! Memory is abstracted at data-region granularity: one taint bit per
//! builder-allocated [`DataRegion`](cassandra_isa::program::DataRegion)
//! (plus a synthetic stack region below
//! [`STACK_TOP`]), seeded from the
//! program's ProSpeCT-style `secret_ranges`, with a global bit for tainted
//! stores through unresolvable pointers. Loads through pointers the
//! analysis cannot attribute to any region conservatively return taint
//! whenever the program holds any secret at all. The one deliberate
//! unsoundness is the standard object-bounds assumption: pointer arithmetic
//! is assumed to stay inside its region (a `Region`-valued pointer never
//! silently walks into a neighbouring secret region).
//!
//! Leak events follow the constant-time contract: a **secret-tainted branch
//! condition** (or indirect-jump target) and a **secret-tainted load/store
//! address** are the only sinks; tainted *values* may flow freely through
//! registers and memory.

use crate::cfg::Cfg;
use crate::report::FindingKind;
use cassandra_isa::instr::Instr;
use cassandra_isa::program::{Program, STACK_TOP};
use cassandra_isa::reg::{Reg, NUM_REGS, SP};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Bytes of stack modelled below `STACK_TOP` as the synthetic stack region.
const STACK_SPAN: u64 = 1 << 16;

/// The value half of the abstract domain: a known constant, a pointer into
/// a *set* of tracked memory regions, or anything.
///
/// The region set is a bitmask over [`MemoryMap`] indices (bit `i` =
/// region `i`), which keeps joins cheap and — crucially — keeps functions
/// called with different buffer pointers precise: the merged argument is
/// "one of these regions" rather than `Unknown`, so a tainted store
/// through it taints those regions only instead of poisoning all memory.
/// Programs with more than 64 data regions degrade gracefully to
/// `Unknown` (see [`MemoryMap::region_mask`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsValue {
    /// Exactly this 64-bit value.
    Const(u64),
    /// Some address inside one of the regions in this non-empty bitmask.
    Regions(u64),
    /// No information.
    Unknown,
}

/// One abstract register: taint bit × abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsReg {
    /// Whether the value may depend on a secret.
    pub tainted: bool,
    /// What is known about the value itself.
    pub value: AbsValue,
}

impl AbsReg {
    const fn untainted(value: AbsValue) -> AbsReg {
        AbsReg {
            tainted: false,
            value,
        }
    }
}

/// The region table: address ranges of every builder-allocated data region
/// plus the synthetic stack region (always the last entry).
#[derive(Debug, Clone)]
pub struct MemoryMap {
    ranges: Vec<(u64, u64)>,
    secret_any: bool,
}

impl MemoryMap {
    /// Builds the region table of `program` and the initial per-region
    /// taint (true where the region overlaps a declared secret range).
    pub fn build(program: &Program) -> (MemoryMap, Vec<bool>) {
        let mut ranges: Vec<(u64, u64)> = program
            .data
            .iter()
            .map(|r| (r.addr, r.addr + r.bytes.len() as u64))
            .collect();
        ranges.push((STACK_TOP - STACK_SPAN, STACK_TOP));
        let initial: Vec<bool> = ranges
            .iter()
            .map(|&(start, end)| {
                program
                    .secret_ranges
                    .iter()
                    .any(|s| s.start < end && start < s.end)
            })
            .collect();
        let map = MemoryMap {
            ranges,
            secret_any: !program.secret_ranges.is_empty(),
        };
        (map, initial)
    }

    /// Index of the region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<usize> {
        self.ranges
            .iter()
            .position(|&(start, end)| (start..end).contains(&addr))
    }

    /// Bitmask of the region containing `addr` — `None` when the address
    /// is outside every region or the region index exceeds the 64-bit
    /// mask (the graceful-degradation path for huge programs).
    pub fn region_mask(&self, addr: u64) -> Option<u64> {
        let i = self.region_of(addr)?;
        (i < 64).then(|| 1u64 << i)
    }

    /// Bitmask of region index `i`, if representable.
    pub fn mask_of(&self, i: usize) -> Option<u64> {
        (i < 64 && i < self.ranges.len()).then(|| 1u64 << i)
    }

    /// Number of tracked regions (data regions + stack).
    pub fn region_count(&self) -> usize {
        self.ranges.len()
    }

    /// Index of the synthetic stack region.
    pub fn stack_region(&self) -> usize {
        self.ranges.len() - 1
    }

    /// True if the program declares any secret range at all.
    pub fn has_secrets(&self) -> bool {
        self.secret_any
    }
}

/// One abstract machine state: registers plus the region-granular memory
/// taint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    regs: [AbsReg; NUM_REGS],
    region_tainted: Vec<bool>,
    /// A tainted value was stored through a pointer the analysis could not
    /// attribute to any region — from here on every load may be tainted.
    unknown_tainted: bool,
}

impl State {
    /// The program entry state: registers zero, `sp` pointing into the
    /// stack region, memory taint seeded from the secret ranges.
    pub fn entry(map: &MemoryMap, initial_taint: &[bool]) -> State {
        let mut regs = [AbsReg::untainted(AbsValue::Const(0)); NUM_REGS];
        regs[SP.index()] = AbsReg::untainted(stack_value(map));
        State {
            regs,
            region_tainted: initial_taint.to_vec(),
            unknown_tainted: false,
        }
    }

    /// The abstract value of `r` (`r0` is pinned to constant zero).
    pub fn reg(&self, r: Reg) -> AbsReg {
        if r.is_zero() {
            AbsReg::untainted(AbsValue::Const(0))
        } else {
            self.regs[r.index()]
        }
    }

    fn set_reg(&mut self, r: Reg, v: AbsReg) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Joins `other` into `self`; true if anything changed.
    pub(crate) fn join_from(&mut self, other: &State, map: &MemoryMap) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.regs.iter_mut().zip(other.regs.iter()) {
            let joined = AbsReg {
                tainted: mine.tainted || theirs.tainted,
                value: join_value(mine.value, theirs.value, map),
            };
            if joined != *mine {
                *mine = joined;
                changed = true;
            }
        }
        for (mine, theirs) in self
            .region_tainted
            .iter_mut()
            .zip(other.region_tainted.iter())
        {
            if *theirs && !*mine {
                *mine = true;
                changed = true;
            }
        }
        if other.unknown_tainted && !self.unknown_tainted {
            self.unknown_tainted = true;
            changed = true;
        }
        changed
    }

    /// Taint of a load through the abstract address `addr`.
    fn load_taint(&self, addr: AbsValue, map: &MemoryMap, program: &Program) -> bool {
        if self.unknown_tainted {
            return true;
        }
        match addr {
            AbsValue::Const(a) => {
                program.is_secret_addr(a)
                    || map.region_of(a).is_some_and(|i| self.region_tainted[i])
            }
            AbsValue::Regions(mask) => self.any_region_tainted(mask),
            // A wild load may read anything: tainted as soon as any region
            // is (secret seeding included) or the program has secrets the
            // regions do not cover.
            AbsValue::Unknown => map.has_secrets() || self.region_tainted.iter().any(|&t| t),
        }
    }

    /// Records a store of a value with taint `tainted` through `addr`.
    fn store(&mut self, addr: AbsValue, tainted: bool, map: &MemoryMap) {
        if !tainted {
            return;
        }
        match addr {
            AbsValue::Const(a) => match map.region_of(a) {
                Some(i) => self.region_tainted[i] = true,
                None => self.unknown_tainted = true,
            },
            AbsValue::Regions(mask) => {
                for (i, t) in self.region_tainted.iter_mut().enumerate() {
                    if i < 64 && mask & (1 << i) != 0 {
                        *t = true;
                    }
                }
            }
            AbsValue::Unknown => self.unknown_tainted = true,
        }
    }

    /// Per-region memory taint, indexed like the [`MemoryMap`].
    pub fn region_taint(&self) -> &[bool] {
        &self.region_tainted
    }

    /// True once a tainted store went through an unresolvable pointer.
    pub fn unknown_taint(&self) -> bool {
        self.unknown_tainted
    }

    /// True if any region in `mask` is currently tainted.
    fn any_region_tainted(&self, mask: u64) -> bool {
        self.region_tainted
            .iter()
            .enumerate()
            .any(|(i, &t)| t && i < 64 && mask & (1 << i) != 0)
    }
}

/// The abstract `sp` value: a pointer into the synthetic stack region
/// (or `Unknown` if the region table overflows the 64-bit mask).
fn stack_value(map: &MemoryMap) -> AbsValue {
    map.mask_of(map.stack_region())
        .map_or(AbsValue::Unknown, AbsValue::Regions)
}

/// The value-lattice join (`Const ⊑ Regions ⊑ Unknown`): equal constants
/// stay constant, region-resident addresses generalise to the union of
/// their region sets, anything else loses to `Unknown`.
fn join_value(a: AbsValue, b: AbsValue, map: &MemoryMap) -> AbsValue {
    use AbsValue::*;
    match (a, b) {
        (Const(x), Const(y)) if x == y => Const(x),
        (Const(x), Const(y)) => match (map.region_mask(x), map.region_mask(y)) {
            (Some(i), Some(j)) => Regions(i | j),
            _ => Unknown,
        },
        (Regions(i), Regions(j)) => Regions(i | j),
        (Const(x), Regions(j)) | (Regions(j), Const(x)) => match map.region_mask(x) {
            Some(i) => Regions(i | j),
            None => Unknown,
        },
        _ => Unknown,
    }
}

/// ALU combine: fold constants through [`AluOp::apply`], keep add/sub
/// pointer arithmetic inside its region set, give up otherwise.
///
/// A `Const` operand that happens to live inside a tracked region is
/// treated as a pointer when combined with a non-constant offset
/// (`table_base + computed_index` must stay a pointer into the table, or
/// every computed-offset access in a called function degrades to
/// `Unknown` and a single tainted store poisons all of memory).
fn combine(op: cassandra_isa::instr::AluOp, a: AbsReg, b: AbsReg, map: &MemoryMap) -> AbsReg {
    use cassandra_isa::instr::AluOp;
    use AbsValue::*;
    let additive = matches!(op, AluOp::Add | AluOp::Sub);
    let value = match (a.value, b.value) {
        (Const(x), Const(y)) => Const(op.apply(x, y)),
        // Pointer ± offset stays in the object (the documented bounds
        // assumption); only the left operand may be the pointer for `sub`,
        // and pointer + pointer is meaningless, so `Unknown`.
        (Regions(_), Regions(_)) => Unknown,
        (Regions(i), _) if additive => Regions(i),
        (_, Regions(i)) if op == AluOp::Add => Regions(i),
        (Const(x), _) if additive && map.region_mask(x).is_some() => {
            Regions(map.region_mask(x).expect("checked"))
        }
        (_, Const(y)) if op == AluOp::Add && map.region_mask(y).is_some() => {
            Regions(map.region_mask(y).expect("checked"))
        }
        _ => Unknown,
    };
    AbsReg {
        tainted: a.tainted || b.tainted,
        value,
    }
}

/// The abstract address of a `base + offset` access.
fn address(base: AbsValue, offset: i64) -> AbsValue {
    match base {
        AbsValue::Const(a) => AbsValue::Const(a.wrapping_add(offset as u64)),
        other => other,
    }
}

/// Which successor edges of a conditional branch the abstract state admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// The condition is not statically decided: both edges live.
    Both,
    /// Constant operands prove the branch taken: only the target edge.
    TakenOnly,
    /// Constant operands prove the branch not taken: only fall-through.
    FallOnly,
}

/// Control successor of one abstract step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Fall through to `pc + 1`.
    Fall,
    /// `halt` — no successor.
    Halted,
    /// Conditional branch with its target and edge feasibility.
    CondBranch {
        /// Taken-edge target.
        target: usize,
        /// Which edges the in-state admits.
        feasible: Feasibility,
    },
    /// Direct jump: the single target.
    Jump(usize),
    /// Direct call: the function entry.
    Call(usize),
    /// Indirect jump: the constant target when the register value is
    /// known, otherwise the full indirect-target set applies.
    Indirect(Option<usize>),
    /// Indirect call, same target resolution as [`Next::Indirect`].
    IndirectCall(Option<usize>),
    /// Return: the matching return sites (see [`Cfg::ret_targets`]).
    Ret,
}

/// A leak event observed while stepping the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Instruction index of the sink.
    pub pc: usize,
    /// Which kind of sink fired.
    pub kind: FindingKind,
}

/// The shared abstract transfer function. `transient` switches to
/// wrong-path semantics: a transient `declassify` does **not** clear taint
/// (ProSpeCT semantics — declassification is an architectural commitment,
/// so a mispredicted window still handles the secret).
pub struct Transfer<'a> {
    program: &'a Program,
    map: &'a MemoryMap,
    transient: bool,
}

impl<'a> Transfer<'a> {
    /// A transfer function with architectural (`transient = false`) or
    /// wrong-path (`transient = true`) semantics.
    pub fn new(program: &'a Program, map: &'a MemoryMap, transient: bool) -> Transfer<'a> {
        Transfer {
            program,
            map,
            transient,
        }
    }

    /// The region table this transfer function resolves addresses with.
    pub fn memory_map(&self) -> &'a MemoryMap {
        self.map
    }

    /// Steps `state` over the instruction at `pc`, appending leak events
    /// and returning the control successor.
    pub fn apply(&self, pc: usize, state: &mut State, events: &mut Vec<Event>) -> Next {
        let Some(instr) = self.program.instr(pc) else {
            return Next::Halted;
        };
        match *instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = combine(op, state.reg(rs1), state.reg(rs2), self.map);
                state.set_reg(rd, v);
                Next::Fall
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = combine(
                    op,
                    state.reg(rs1),
                    AbsReg::untainted(AbsValue::Const(imm as u64)),
                    self.map,
                );
                state.set_reg(rd, v);
                Next::Fall
            }
            Instr::LoadImm { rd, imm } => {
                state.set_reg(rd, AbsReg::untainted(AbsValue::Const(imm)));
                Next::Fall
            }
            Instr::Declassify { rd, rs1 } => {
                let src = state.reg(rs1);
                state.set_reg(
                    rd,
                    AbsReg {
                        tainted: self.transient && src.tainted,
                        value: src.value,
                    },
                );
                Next::Fall
            }
            Instr::Load {
                rd, base, offset, ..
            } => {
                let b = state.reg(base);
                if b.tainted {
                    events.push(Event {
                        pc,
                        kind: FindingKind::LoadAddress,
                    });
                }
                let addr = address(b.value, offset);
                let tainted = state.load_taint(addr, self.map, self.program);
                state.set_reg(
                    rd,
                    AbsReg {
                        tainted,
                        value: AbsValue::Unknown,
                    },
                );
                Next::Fall
            }
            Instr::Store {
                src, base, offset, ..
            } => {
                let b = state.reg(base);
                if b.tainted {
                    events.push(Event {
                        pc,
                        kind: FindingKind::StoreAddress,
                    });
                }
                let addr = address(b.value, offset);
                let tainted = state.reg(src).tainted;
                state.store(addr, tainted, self.map);
                Next::Fall
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = state.reg(rs1);
                let b = state.reg(rs2);
                if a.tainted || b.tainted {
                    events.push(Event {
                        pc,
                        kind: FindingKind::BranchCondition,
                    });
                }
                let feasible = match (a.value, b.value) {
                    (AbsValue::Const(x), AbsValue::Const(y)) => {
                        if cond.eval(x, y) {
                            Feasibility::TakenOnly
                        } else {
                            Feasibility::FallOnly
                        }
                    }
                    _ => Feasibility::Both,
                };
                Next::CondBranch { target, feasible }
            }
            Instr::Jump { target } => Next::Jump(target),
            Instr::Call { target } => {
                // The call pushes an untainted return address; `sp` keeps
                // pointing into the stack region.
                state.set_reg(SP, AbsReg::untainted(stack_value(self.map)));
                Next::Call(target)
            }
            Instr::JumpIndirect { rs1 } | Instr::CallIndirect { rs1 } => {
                let v = state.reg(rs1);
                if v.tainted {
                    events.push(Event {
                        pc,
                        kind: FindingKind::BranchCondition,
                    });
                }
                let is_call = matches!(instr, Instr::CallIndirect { .. });
                if is_call {
                    state.set_reg(SP, AbsReg::untainted(stack_value(self.map)));
                }
                let target = match v.value {
                    AbsValue::Const(t) if (t as usize) < self.program.len() => Some(t as usize),
                    _ => None,
                };
                if is_call {
                    Next::IndirectCall(target)
                } else {
                    Next::Indirect(target)
                }
            }
            Instr::Ret => {
                state.set_reg(SP, AbsReg::untainted(stack_value(self.map)));
                Next::Ret
            }
            Instr::Nop => Next::Fall,
            Instr::Halt => Next::Halted,
        }
    }

    /// Expands a [`Next`] into concrete successor indices, honouring
    /// constant-pruned branch edges.
    pub fn successors(&self, pc: usize, next: Next, cfg: &Cfg, out: &mut Vec<usize>) {
        out.clear();
        let n = self.program.len();
        match next {
            Next::Fall => {
                if pc + 1 < n {
                    out.push(pc + 1);
                }
            }
            Next::Halted => {}
            Next::CondBranch { target, feasible } => {
                if feasible != Feasibility::TakenOnly && pc + 1 < n {
                    out.push(pc + 1);
                }
                if feasible != Feasibility::FallOnly && target < n {
                    out.push(target);
                }
            }
            Next::Jump(t) | Next::Call(t) => {
                if t < n {
                    out.push(t);
                }
            }
            Next::Indirect(Some(t)) | Next::IndirectCall(Some(t)) => {
                if t < n {
                    out.push(t);
                }
            }
            Next::Indirect(None) | Next::IndirectCall(None) => {
                out.extend_from_slice(cfg.indirect_targets())
            }
            Next::Ret => out.extend_from_slice(cfg.ret_targets(pc)),
        }
    }
}

/// The result of the architectural fixpoint.
#[derive(Debug, Clone)]
pub struct ArchAnalysis {
    /// Per-instruction in-state (`None` where unreachable).
    pub in_states: Vec<Option<State>>,
    /// Deduplicated architectural leak events.
    pub events: BTreeSet<Event>,
    /// Per reachable conditional branch: whether its condition is tainted.
    pub branch_taint: BTreeMap<usize, bool>,
}

impl ArchAnalysis {
    /// True if the branch at `pc` was reached with an untainted condition
    /// only (unreachable branches count as untainted).
    pub fn branch_is_untainted(&self, pc: usize) -> bool {
        !self.branch_taint.get(&pc).copied().unwrap_or(false)
    }
}

/// Runs the architectural taint dataflow to a fixpoint.
pub fn arch_fixpoint(program: &Program, map: &MemoryMap, cfg: &Cfg) -> ArchAnalysis {
    let n = program.len();
    let (_, initial_taint) = MemoryMap::build(program);
    let transfer = Transfer::new(program, map, false);
    let interproc = Interproc::build(program, cfg);
    let mut in_states: Vec<Option<State>> = vec![None; n];
    let mut events: BTreeSet<Event> = BTreeSet::new();
    let mut branch_taint: BTreeMap<usize, bool> = BTreeMap::new();
    let mut worklist: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; n];

    if n == 0 {
        return ArchAnalysis {
            in_states,
            events,
            branch_taint,
        };
    }
    in_states[0] = Some(State::entry(map, &initial_taint));
    worklist.push_back(0);
    queued[0] = true;

    let mut step_events = Vec::new();
    let mut succ_buf = Vec::new();
    while let Some(pc) = worklist.pop_front() {
        queued[pc] = false;
        let Some(in_state) = in_states[pc].clone() else {
            continue;
        };
        let mut state = in_state;
        step_events.clear();
        let next = transfer.apply(pc, &mut state, &mut step_events);
        events.extend(step_events.iter().copied());
        if let Some(Instr::Branch { rs1, rs2, .. }) = program.instr(pc) {
            let tainted = state.reg(*rs1).tainted || state.reg(*rs2).tainted;
            let entry = branch_taint.entry(pc).or_insert(false);
            *entry = *entry || tainted;
        }

        let enqueue = |succ: usize,
                       incoming: &State,
                       in_states: &mut Vec<Option<State>>,
                       worklist: &mut VecDeque<usize>,
                       queued: &mut Vec<bool>| {
            let changed = match &mut in_states[succ] {
                Some(existing) => existing.join_from(incoming, map),
                slot @ None => {
                    *slot = Some(incoming.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                worklist.push_back(succ);
                queued[succ] = true;
            }
        };

        // Return edges are interprocedural: registers the callee (and its
        // transitive callees) never write bypass the function body and
        // flow from the matching call site instead; memory taint flows
        // through the callee. Everything else uses plain CFG successors.
        if matches!(next, Next::Ret) {
            if let Some(edges) = interproc.ret_edges.get(&pc) {
                for &(site, writeset) in edges {
                    let Some(call_in) = in_states[site - 1].as_ref() else {
                        continue; // the matching call is (so far) unreachable
                    };
                    let merged = bypass_merge(call_in, &state, writeset, map);
                    enqueue(site, &merged, &mut in_states, &mut worklist, &mut queued);
                }
            } else {
                // No known caller reaches this ret: conservative fallback
                // to every return site with the full state.
                transfer.successors(pc, next, cfg, &mut succ_buf);
                for &succ in &succ_buf {
                    enqueue(succ, &state, &mut in_states, &mut worklist, &mut queued);
                }
            }
        } else {
            transfer.successors(pc, next, cfg, &mut succ_buf);
            for &succ in &succ_buf {
                enqueue(succ, &state, &mut in_states, &mut worklist, &mut queued);
            }
            // A call site's state feeds its own return site through the
            // bypass merge, so when it changes the callee's rets must be
            // reconsidered even if the callee itself has stabilised.
            if matches!(next, Next::Call(_) | Next::IndirectCall(_)) {
                if let Some(rets) = interproc.call_rets.get(&pc) {
                    for &ret_pc in rets {
                        if in_states[ret_pc].is_some() && !queued[ret_pc] {
                            worklist.push_back(ret_pc);
                            queued[ret_pc] = true;
                        }
                    }
                }
            }
        }
    }

    ArchAnalysis {
        in_states,
        events,
        branch_taint,
    }
}

/// The return-site state of a call with callee write-set `writeset`:
/// written registers come from the callee's `ret` state, everything else
/// from the caller's state at the call (with `sp` restored to the stack
/// pointer the call discipline guarantees); memory taint flows through
/// the callee.
pub(crate) fn bypass_merge(
    call_in: &State,
    ret_out: &State,
    writeset: u32,
    map: &MemoryMap,
) -> State {
    let mut merged = ret_out.clone();
    for i in 0..NUM_REGS {
        if writeset & (1 << i) == 0 {
            merged.regs[i] = call_in.regs[i];
        }
    }
    merged.regs[SP.index()] = AbsReg::untainted(stack_value(map));
    merged
}

/// Interprocedural structure: which return sites each `ret` serves, and
/// which registers each function (transitively) writes.
pub(crate) struct Interproc {
    /// `ret` pc → (return site, callee register write-set) pairs.
    pub(crate) ret_edges: BTreeMap<usize, Vec<(usize, u32)>>,
    /// Call pc → `ret` pcs of the called function(s).
    pub(crate) call_rets: BTreeMap<usize, Vec<usize>>,
}

impl Interproc {
    pub(crate) fn build(program: &Program, cfg: &Cfg) -> Interproc {
        let n = program.len();
        let indirect = cfg.indirect_targets();

        // Call sites per entry (direct targets; an indirect call may enter
        // any label).
        let mut sites: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut call_targets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pc, instr) in program.instrs.iter().enumerate() {
            let targets: Vec<usize> = match instr {
                Instr::Call { target } if *target < n => vec![*target],
                Instr::CallIndirect { .. } => indirect.to_vec(),
                _ => continue,
            };
            for &t in &targets {
                if pc + 1 < n {
                    sites.entry(t).or_default().push(pc + 1);
                }
            }
            call_targets.insert(pc, targets);
        }

        // Per entry: intraprocedurally reachable pcs, direct register
        // writes, contained rets and nested call targets.
        struct Func {
            rets: Vec<usize>,
            writes: u32,
            nested: Vec<usize>,
        }
        let mut funcs: BTreeMap<usize, Func> = BTreeMap::new();
        for &entry in sites.keys() {
            let mut seen = vec![false; n];
            let mut stack = vec![entry];
            seen[entry] = true;
            let mut f = Func {
                rets: Vec::new(),
                writes: 0,
                nested: Vec::new(),
            };
            while let Some(pc) = stack.pop() {
                let instr = &program.instrs[pc];
                if let Some(rd) = instr.dest() {
                    f.writes |= 1 << rd.index();
                }
                let nexts: Vec<usize> = match instr {
                    Instr::Branch { target, .. } => vec![pc + 1, *target],
                    Instr::Jump { target } => vec![*target],
                    Instr::Call { .. } | Instr::CallIndirect { .. } => {
                        f.nested.extend(call_targets[&pc].iter().copied());
                        vec![pc + 1]
                    }
                    Instr::JumpIndirect { .. } => indirect.to_vec(),
                    Instr::Ret => {
                        f.rets.push(pc);
                        Vec::new()
                    }
                    Instr::Halt => Vec::new(),
                    _ => vec![pc + 1],
                };
                for t in nexts {
                    if t < n && !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            funcs.insert(entry, f);
        }

        // Transitive write-sets over the call graph.
        let mut writesets: BTreeMap<usize, u32> =
            funcs.iter().map(|(&e, f)| (e, f.writes)).collect();
        loop {
            let mut changed = false;
            for (&entry, f) in &funcs {
                let mut w = writesets[&entry];
                for t in &f.nested {
                    w |= writesets.get(t).copied().unwrap_or(u32::MAX);
                }
                if w != writesets[&entry] {
                    writesets.insert(entry, w);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut ret_edges: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
        for (&entry, f) in &funcs {
            for &ret_pc in &f.rets {
                let edges = ret_edges.entry(ret_pc).or_default();
                for &site in &sites[&entry] {
                    edges.push((site, writesets[&entry]));
                }
            }
        }
        for edges in ret_edges.values_mut() {
            edges.sort_unstable();
            edges.dedup();
        }

        let call_rets: BTreeMap<usize, Vec<usize>> = call_targets
            .iter()
            .map(|(&pc, targets)| {
                let mut rets: Vec<usize> = targets
                    .iter()
                    .filter_map(|t| funcs.get(t))
                    .flat_map(|f| f.rets.iter().copied())
                    .collect();
                rets.sort_unstable();
                rets.dedup();
                (pc, rets)
            })
            .collect();

        Interproc {
            ret_edges,
            call_rets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::reg::{A0, A1, A2, T0, ZERO};

    fn analyze(program: &Program) -> ArchAnalysis {
        let cfg = Cfg::build(program);
        let (map, _) = MemoryMap::build(program);
        arch_fixpoint(program, &map, &cfg)
    }

    #[test]
    fn secret_branch_condition_is_flagged() {
        let mut b = ProgramBuilder::new("leaky-branch");
        let s = b.alloc_secret_u64s("key", &[42]);
        b.li(T0, s);
        b.ld(A0, T0, 0);
        let branch_pc = b.here();
        b.beq(A0, ZERO, "end");
        b.nop();
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        assert!(a.events.contains(&Event {
            pc: branch_pc,
            kind: FindingKind::BranchCondition
        }));
        assert!(!a.branch_is_untainted(branch_pc));
    }

    #[test]
    fn secret_indexed_load_is_flagged() {
        let mut b = ProgramBuilder::new("leaky-load");
        let s = b.alloc_secret_u64s("key", &[3]);
        let table = b.alloc_bytes("table", &[0; 64]);
        b.li(T0, s);
        b.ld(A0, T0, 0); // A0 = secret
        b.li(A1, table);
        b.add(A1, A1, A0); // secret-indexed pointer
        let load_pc = b.here();
        b.lb(A2, A1, 0);
        b.halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        assert!(a.events.contains(&Event {
            pc: load_pc,
            kind: FindingKind::LoadAddress
        }));
    }

    #[test]
    fn public_table_lookup_with_counter_index_is_clean() {
        let mut b = ProgramBuilder::new("ct-lookup");
        let _s = b.alloc_secret_u64s("key", &[9]);
        let table = b.alloc_bytes("table", &[1; 16]);
        b.li(A1, table);
        b.li(A2, 16);
        b.label("loop");
        b.lb(A0, A1, 0);
        b.addi(A1, A1, 1); // pointer joins to Region(table)
        b.addi(A2, A2, -1);
        b.bne(A2, ZERO, "loop");
        b.halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        assert!(a.events.is_empty(), "{:?}", a.events);
    }

    #[test]
    fn constant_branch_prunes_the_dead_edge() {
        let mut b = ProgramBuilder::new("dead-edge");
        let s = b.alloc_secret_u64s("key", &[1]);
        b.li(T0, 1);
        b.beq(T0, ZERO, "dead"); // provably not taken
        b.halt();
        b.label("dead");
        // Architecturally unreachable secret-dependent load.
        b.li(T0, s);
        b.ld(A0, T0, 0);
        b.li(A1, 0);
        b.add(A1, A1, A0);
        b.ld(A2, A1, 0);
        b.halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        assert!(a.events.is_empty(), "{:?}", a.events);
        // The dead block has no in-state.
        assert!(a.in_states[p.label("dead").unwrap()].is_none());
    }

    #[test]
    fn declassified_value_is_untainted_architecturally() {
        let mut b = ProgramBuilder::new("declass");
        let s = b.alloc_secret_u64s("key", &[7]);
        b.li(T0, s);
        b.ld(A0, T0, 0);
        b.declassify(A0, A0);
        b.beq(A0, ZERO, "end"); // branching on declassified data is fine
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        assert!(a.events.is_empty(), "{:?}", a.events);
    }

    #[test]
    fn tainted_store_taints_the_target_region_only() {
        let mut b = ProgramBuilder::new("store-taint");
        let s = b.alloc_secret_u64s("key", &[7]);
        let out = b.alloc_zeros("out", 8);
        let clean = b.alloc_u64s("clean", &[5]);
        b.li(T0, s);
        b.ld(A0, T0, 0); // tainted
        b.li(T0, out);
        b.sd(A0, T0, 0); // out region now tainted
        b.li(T0, out);
        b.ld(A1, T0, 0); // tainted load back
        b.beq(A1, ZERO, "x"); // flagged
        b.label("x");
        b.li(T0, clean);
        b.ld(A2, T0, 0); // still clean
        b.beq(A2, ZERO, "end"); // not flagged
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        let flagged: Vec<usize> = a
            .events
            .iter()
            .filter(|e| e.kind == FindingKind::BranchCondition)
            .map(|e| e.pc)
            .collect();
        assert_eq!(flagged.len(), 1, "{:?}", a.events);
    }
}
