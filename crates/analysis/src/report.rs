//! The per-program output of the analyzer: findings, the three-way
//! verdict and the [`StaticReport`] summary consumed by the registry's
//! `lint` experiment and the server's `Lint` request.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of constant-time sink a finding fired on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FindingKind {
    /// A branch condition (or indirect jump/call target register) may
    /// depend on a secret.
    BranchCondition,
    /// A load address may depend on a secret.
    LoadAddress,
    /// A store address may depend on a secret.
    StoreAddress,
}

impl FindingKind {
    /// Short lowercase name used by the text and CSV renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::BranchCondition => "branch-condition",
            FindingKind::LoadAddress => "load-address",
            FindingKind::StoreAddress => "store-address",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One potential leak site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Finding {
    /// Instruction index of the sink.
    pub pc: usize,
    /// What kind of sink fired.
    pub kind: FindingKind,
    /// `false`: reachable architecturally. `true`: only inside a bounded
    /// wrong-path window (a transient transmitter).
    pub transient: bool,
    /// For transient findings, the conditional branch whose mispredict
    /// opens the window the sink was found in.
    pub branch_pc: Option<usize>,
}

/// The three-way static verdict on one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StaticVerdict {
    /// No secret-tainted sink, architecturally or transiently.
    CtClean,
    /// Clean architecturally, but a bounded wrong-path window reaches a
    /// secret-tainted sink: a speculative (Spectre-PHT) transmitter.
    TransientLeak,
    /// A secret-tainted sink is architecturally reachable: the program is
    /// not constant-time even without speculation.
    ArchLeak,
}

impl StaticVerdict {
    /// Short hyphenated name used by the table renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            StaticVerdict::CtClean => "ct-clean",
            StaticVerdict::TransientLeak => "transient-leak",
            StaticVerdict::ArchLeak => "arch-leak",
        }
    }
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The full static analysis result for one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticReport {
    /// Name of the analyzed program.
    pub program_name: String,
    /// Instruction count.
    pub instructions: usize,
    /// Basic blocks in the static CFG.
    pub cfg_blocks: usize,
    /// Edges in the static CFG.
    pub cfg_edges: usize,
    /// Conditional branches in the program.
    pub conditional_branches: usize,
    /// Instruction indices of architecturally reachable conditional
    /// branches whose condition may be secret-tainted.
    pub tainted_branches: Vec<usize>,
    /// All findings, architectural first, sorted by `(pc, kind)`.
    pub findings: Vec<Finding>,
}

impl StaticReport {
    /// The three-way verdict: any architectural finding ⇒
    /// [`ArchLeak`](StaticVerdict::ArchLeak), else any transient finding ⇒
    /// [`TransientLeak`](StaticVerdict::TransientLeak), else
    /// [`CtClean`](StaticVerdict::CtClean).
    pub fn verdict(&self) -> StaticVerdict {
        if self.findings.iter().any(|f| !f.transient) {
            StaticVerdict::ArchLeak
        } else if self.findings.is_empty() {
            StaticVerdict::CtClean
        } else {
            StaticVerdict::TransientLeak
        }
    }

    /// True when the program has no findings at all.
    pub fn is_ct_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when a wrong-path window reaches a secret-tainted sink — the
    /// program transmits transiently (it may *also* leak architecturally).
    pub fn is_transient_transmitter(&self) -> bool {
        self.findings.iter().any(|f| f.transient)
    }

    /// True when the architectural pass found the branch at `pc` reachable
    /// with a possibly secret-tainted condition.
    pub fn branch_is_tainted(&self, pc: usize) -> bool {
        self.tainted_branches.binary_search(&pc).is_ok()
    }

    /// Findings of the architectural pass only.
    pub fn arch_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.transient)
    }

    /// Findings seen only inside speculative windows.
    pub fn transient_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.transient)
    }
}
