//! Experiment drivers that regenerate every table and figure of the paper's
//! evaluation (§7) plus the discussion experiments (Q3, Q4).
//!
//! Each driver has two forms:
//!
//! * `*_with(&mut Evaluator, ..)` — the session form used by the
//!   [`crate::registry`] experiments: analyses are shared through the
//!   evaluator's memoization cache, so running several experiments over the
//!   same suite analyzes each program exactly once;
//! * a free function with the original stateless signature (`table1`,
//!   `figure7`, …) — a **deprecated-path shim** that spins up a one-shot
//!   [`Evaluator`] and delegates. Prefer the session form.
//!
//! Each driver takes the list of workloads to evaluate so that tests can use
//! small inputs while the benches and the `full_evaluation` example use the
//! paper-sized suite from [`cassandra_kernels::suite::full_suite`].

use crate::eval::Evaluator;
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_cpu::power::{power_area_report, PowerAreaReport};
use cassandra_cpu::stats::SimStats;
use cassandra_isa::error::IsaError;
use cassandra_kernels::suite;
use cassandra_kernels::synthetic::{self, CryptoVariant, MixPoint};
use cassandra_kernels::workload::{Workload, WorkloadGroup};
use cassandra_trace::stats::{summary_row, BranchAnalysisRow};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// The four designs compared in Figure 7.
pub const FIG7_DESIGNS: [DefenseMode; 4] = [
    DefenseMode::UnsafeBaseline,
    DefenseMode::Cassandra,
    DefenseMode::CassandraStl,
    DefenseMode::Spt,
];

// ---------------------------------------------------------------- Table 1

/// One Table-1 row together with its workload group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload group (BearSSL / OpenSSL / PQC).
    pub group: WorkloadGroup,
    /// The branch-analysis statistics.
    pub row: BranchAnalysisRow,
}

/// The complete Table-1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Per-workload rows.
    pub rows: Vec<Table1Row>,
    /// The aggregated "All" row.
    pub all: BranchAnalysisRow,
}

/// Regenerates Table 1 (branch analysis / trace compression) through an
/// evaluation session.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn table1_with(ev: &mut Evaluator, workloads: &[Workload]) -> Result<Table1Result, IsaError> {
    let mut rows = Vec::new();
    for w in workloads {
        let analysis = ev.analysis(w)?;
        let mut row = BranchAnalysisRow::from_bundle(&analysis.bundle);
        row.program = w.name.clone();
        rows.push(Table1Row {
            group: w.group,
            row,
        });
    }
    let all = summary_row(&rows.iter().map(|r| r.row.clone()).collect::<Vec<_>>());
    Ok(Table1Result { rows, all })
}

/// Regenerates Table 1 for the given workloads (one-shot shim; prefer
/// [`table1_with`]).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn table1(workloads: &[Workload]) -> Result<Table1Result, IsaError> {
    table1_with(&mut Evaluator::new(), workloads)
}

// ---------------------------------------------------------------- Figure 7

/// One workload's execution times under the Figure-7 designs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: String,
    /// Workload group.
    pub group: WorkloadGroup,
    /// Cycle counts per design label.
    pub cycles: BTreeMap<String, u64>,
    /// Execution time normalised to the unsafe baseline.
    pub normalized: BTreeMap<String, f64>,
}

/// The complete Figure-7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Per-workload rows.
    pub rows: Vec<Fig7Row>,
    /// Geometric mean of the normalised execution time per design.
    pub geomean: BTreeMap<String, f64>,
}

impl Fig7Result {
    /// The average speedup (negative = slowdown) of a design versus the
    /// unsafe baseline, in percent.
    pub fn speedup_pct(&self, design: DefenseMode) -> f64 {
        self.speedup_pct_of(design.label())
    }

    /// [`Fig7Result::speedup_pct`] by design label — the one place the
    /// speedup formula lives (reports reuse it per swept design).
    pub fn speedup_pct_of(&self, label: &str) -> f64 {
        self.geomean
            .get(label)
            .map_or(0.0, |norm| (1.0 - norm) * 100.0)
    }
}

/// Regenerates Figure 7 (normalised execution time of the crypto benchmarks)
/// through an evaluation session.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn figure7_with(
    ev: &mut Evaluator,
    workloads: &[Workload],
    designs: &[DefenseMode],
) -> Result<Fig7Result, IsaError> {
    let base_cfg = CpuConfig::golden_cove_like();
    let mut rows = Vec::new();
    for w in workloads {
        let mut cycles = BTreeMap::new();
        for design in designs {
            let cfg = base_cfg.with_defense(*design);
            let outcome = ev.simulate_cached(w, &cfg)?;
            cycles.insert(design.label().to_string(), outcome.stats.cycles);
        }
        let base = *cycles
            .get(DefenseMode::UnsafeBaseline.label())
            .unwrap_or(&1)
            .max(&1);
        let normalized = cycles
            .iter()
            .map(|(k, v)| (k.clone(), *v as f64 / base as f64))
            .collect();
        rows.push(Fig7Row {
            workload: w.name.clone(),
            group: w.group,
            cycles,
            normalized,
        });
    }
    let mut geomean = BTreeMap::new();
    for design in designs {
        let label = design.label().to_string();
        let product: f64 = rows
            .iter()
            .filter_map(|r| r.normalized.get(&label))
            .map(|v| v.ln())
            .sum();
        let count = rows.len().max(1) as f64;
        geomean.insert(label, (product / count).exp());
    }
    Ok(Fig7Result { rows, geomean })
}

/// Regenerates Figure 7 for the given workloads and designs (one-shot shim;
/// prefer [`figure7_with`]).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn figure7(workloads: &[Workload], designs: &[DefenseMode]) -> Result<Fig7Result, IsaError> {
    figure7_with(&mut Evaluator::new(), workloads, designs)
}

// ---------------------------------------------------------------- Figure 8

/// One point of Figure 8: a sandbox/crypto mix under one crypto variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Crypto variant ("chacha20" with a public stack, "curve25519" with a
    /// secret stack).
    pub variant: String,
    /// Mix label ("90s/10c" … "all-crypto").
    pub mix: String,
    /// ProSpeCT execution-time overhead versus the unsafe baseline (percent;
    /// negative values are speedups).
    pub prospect_overhead_pct: f64,
    /// Cassandra+ProSpeCT overhead versus the unsafe baseline (percent).
    pub cassandra_prospect_overhead_pct: f64,
}

/// Regenerates Figure 8 (synthetic SpectreGuard-style benchmarks) through an
/// evaluation session.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn figure8_with(ev: &mut Evaluator, scale: u32) -> Result<Vec<Fig8Point>, IsaError> {
    let base_cfg = CpuConfig::golden_cove_like();
    let mut points = Vec::new();
    for variant in [CryptoVariant::ChaChaLike, CryptoVariant::CurveLike] {
        for mix in MixPoint::figure8_points() {
            let kernel = synthetic::build_mix(variant, mix, scale);
            let workload = Workload::new(
                format!("{}-{}", variant.label(), mix.label()),
                WorkloadGroup::Synthetic,
                kernel,
            );
            let mut cycles = BTreeMap::new();
            for design in [
                DefenseMode::UnsafeBaseline,
                DefenseMode::Prospect,
                DefenseMode::CassandraProspect,
            ] {
                let cfg = base_cfg.with_defense(design);
                let outcome = ev.simulate_cached(&workload, &cfg)?;
                cycles.insert(design, outcome.stats.cycles);
            }
            let base = cycles[&DefenseMode::UnsafeBaseline].max(1) as f64;
            let overhead = |d: DefenseMode| (cycles[&d] as f64 / base - 1.0) * 100.0;
            points.push(Fig8Point {
                variant: variant.label().to_string(),
                mix: mix.label(),
                prospect_overhead_pct: overhead(DefenseMode::Prospect),
                cassandra_prospect_overhead_pct: overhead(DefenseMode::CassandraProspect),
            });
        }
    }
    Ok(points)
}

/// Regenerates Figure 8 (one-shot shim; prefer [`figure8_with`]).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn figure8(scale: u32) -> Result<Vec<Fig8Point>, IsaError> {
    figure8_with(&mut Evaluator::new(), scale)
}

// ---------------------------------------------------------------- Figure 9

/// The power/area comparison of Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Power/area of the unsafe baseline (aggregated over the workloads).
    pub baseline: PowerAreaReport,
    /// Power/area of the Cassandra design.
    pub cassandra: PowerAreaReport,
    /// Relative power change of Cassandra versus the baseline (percent;
    /// negative = reduction).
    pub power_delta_pct: f64,
    /// Area overhead of the BTU relative to the baseline core (percent).
    pub area_overhead_pct: f64,
}

fn accumulate(total: &mut SimStats, s: &SimStats) {
    total.cycles += s.cycles;
    total.committed_instructions += s.committed_instructions;
    total.committed_branches += s.committed_branches;
    total.squashed_instructions += s.squashed_instructions;
    total.mispredictions += s.mispredictions;
    total.bpu.pht_lookups += s.bpu.pht_lookups;
    total.bpu.btb_lookups += s.bpu.btb_lookups;
    total.bpu.rsb_lookups += s.bpu.rsb_lookups;
    total.bpu.updates += s.bpu.updates;
    total.btu.lookups += s.btu.lookups;
    total.btu.commits += s.btu.commits;
    total.caches.l1d.accesses += s.caches.l1d.accesses;
    total.caches.l1d.hits += s.caches.l1d.hits;
    total.caches.l1d.misses += s.caches.l1d.misses;
}

/// Regenerates Figure 9 (power and area of Cassandra vs the baseline)
/// through an evaluation session.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn figure9_with(ev: &mut Evaluator, workloads: &[Workload]) -> Result<Fig9Result, IsaError> {
    let base_cfg = CpuConfig::golden_cove_like();
    let cass_cfg = base_cfg.with_defense(DefenseMode::Cassandra);
    let mut base_stats = SimStats::default();
    let mut cass_stats = SimStats::default();
    for w in workloads {
        accumulate(&mut base_stats, &ev.simulate_cached(w, &base_cfg)?.stats);
        accumulate(&mut cass_stats, &ev.simulate_cached(w, &cass_cfg)?.stats);
    }
    let baseline = power_area_report(&base_cfg, &base_stats);
    let cassandra = power_area_report(&cass_cfg, &cass_stats);
    let power_delta_pct = (cassandra.total_power / baseline.total_power - 1.0) * 100.0;
    let area_overhead_pct = (cassandra.total_area / baseline.total_area - 1.0) * 100.0;
    Ok(Fig9Result {
        baseline,
        cassandra,
        power_delta_pct,
        area_overhead_pct,
    })
}

/// Regenerates Figure 9 (one-shot shim; prefer [`figure9_with`]).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn figure9(workloads: &[Workload]) -> Result<Fig9Result, IsaError> {
    figure9_with(&mut Evaluator::new(), workloads)
}

// ----------------------------------------- Q3: restricted-frontend variants

/// The restricted-frontend variants the Q3 experiment compares against full
/// Cassandra by default: the paper's Cassandra-lite, plus the serializing
/// Fence lower bound and the zero-Trace-Cache Cassandra-noTC scenario.
pub const Q3_VARIANTS: [DefenseMode; 3] = [
    DefenseMode::CassandraLite,
    DefenseMode::Fence,
    DefenseMode::CassandraNoTc,
];

/// One row of the restricted-frontend comparison (discussion Q3): a
/// workload under one variant, versus full Cassandra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Q3Row {
    /// Workload name.
    pub workload: String,
    /// Workload group.
    pub group: WorkloadGroup,
    /// Label of the compared variant.
    pub design: String,
    /// Cycles under full Cassandra.
    pub cassandra_cycles: u64,
    /// Cycles under the variant.
    pub variant_cycles: u64,
    /// Slowdown of the variant over Cassandra, in percent.
    pub slowdown_pct: f64,
}

/// Regenerates the Q3 comparison through an evaluation session: every
/// workload under full Cassandra versus each `variant`. New frontend
/// policies run through here unchanged — pass their modes.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn q3_with(
    ev: &mut Evaluator,
    workloads: &[Workload],
    variants: &[DefenseMode],
) -> Result<Vec<Q3Row>, IsaError> {
    let base_cfg = CpuConfig::golden_cove_like();
    let mut rows = Vec::new();
    for w in workloads {
        let full = ev.simulate_cached(w, &base_cfg.with_defense(DefenseMode::Cassandra))?;
        for variant in variants {
            let restricted = ev.simulate_cached(w, &base_cfg.with_defense(*variant))?;
            rows.push(Q3Row {
                workload: w.name.clone(),
                group: w.group,
                design: variant.label().to_string(),
                cassandra_cycles: full.stats.cycles,
                variant_cycles: restricted.stats.cycles,
                slowdown_pct: (restricted.stats.cycles as f64 / full.stats.cycles.max(1) as f64
                    - 1.0)
                    * 100.0,
            });
        }
    }
    Ok(rows)
}

/// The paper's original Q3 shape — Cassandra-lite only — on a one-shot
/// session (deprecated-path shim; prefer [`q3_with`]).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn q3_cassandra_lite(workloads: &[Workload]) -> Result<Vec<Q3Row>, IsaError> {
    q3_with(
        &mut Evaluator::new(),
        workloads,
        &[DefenseMode::CassandraLite],
    )
}

// ----------------------------------------------- Q4: context-switch pricing

/// Default number of application contexts the Q4 partition-reassignment
/// variant rotates through — one per partition of the `Cassandra-part`
/// design point, so the rotation never steals.
pub const Q4_PARTITION_CONTEXTS: u64 = DefenseMode::PARTITIONED_BTU_CONTEXTS as u64;

/// The Q4 result: Cassandra's speedup without context switches, and with
/// context switches priced two ways — as whole-BTU flushes (the paper's Q4
/// model) and as per-context partition reassignments (the partitioned-BTU
/// deployment), side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Q4Result {
    /// Geomean speedup of Cassandra without context switches (percent).
    pub speedup_no_flush_pct: f64,
    /// Geomean speedup when every context switch flushes the whole BTU
    /// (percent).
    pub speedup_with_flush_pct: f64,
    /// Geomean speedup when every context switch is a partition
    /// reassignment on the way-partitioned BTU (percent).
    pub speedup_with_partition_pct: f64,
    /// The context-switch interval used (committed instructions).
    pub flush_interval: u64,
    /// Number of application contexts rotated through by the partition
    /// variant.
    pub partition_contexts: u64,
}

/// Regenerates the Q4 experiment through an evaluation session: Cassandra's
/// speedup with context switches priced as whole-unit flushes versus as
/// partition reassignments rotating through `partition_contexts` contexts.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn q4_with(
    ev: &mut Evaluator,
    workloads: &[Workload],
    flush_interval: u64,
    partition_contexts: u64,
) -> Result<Q4Result, IsaError> {
    let base_cfg = CpuConfig::golden_cove_like();
    let flush_cfg = base_cfg
        .with_defense(DefenseMode::Cassandra)
        .with_btu_flush_interval(flush_interval);
    let part_cfg = base_cfg
        .with_defense(DefenseMode::CassandraPartitioned)
        .with_btu_flush_interval(flush_interval)
        .with_btu_switch_contexts(partition_contexts.max(1));
    let mut log_sum_no_flush = 0.0;
    let mut log_sum_flush = 0.0;
    let mut log_sum_part = 0.0;
    for w in workloads {
        let base = ev.simulate_cached(w, &base_cfg)?.stats.cycles.max(1);
        let cass = ev
            .simulate_cached(w, &base_cfg.with_defense(DefenseMode::Cassandra))?
            .stats
            .cycles
            .max(1);
        let flushed = ev.simulate_cached(w, &flush_cfg)?.stats.cycles.max(1);
        let partitioned = ev.simulate_cached(w, &part_cfg)?.stats.cycles.max(1);
        log_sum_no_flush += (cass as f64 / base as f64).ln();
        log_sum_flush += (flushed as f64 / base as f64).ln();
        log_sum_part += (partitioned as f64 / base as f64).ln();
    }
    let n = workloads.len().max(1) as f64;
    let speedup = |log_sum: f64| (1.0 - (log_sum / n).exp()) * 100.0;
    Ok(Q4Result {
        speedup_no_flush_pct: speedup(log_sum_no_flush),
        speedup_with_flush_pct: speedup(log_sum_flush),
        speedup_with_partition_pct: speedup(log_sum_part),
        flush_interval,
        partition_contexts: partition_contexts.max(1),
    })
}

/// Regenerates the Q4 experiment: context switches every `flush_interval`
/// committed instructions (modelling a 250 Hz timer), priced as whole-BTU
/// flushes and as partition reassignments over [`Q4_PARTITION_CONTEXTS`]
/// contexts (one-shot shim; prefer [`q4_with`]).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn q4_btu_flush(workloads: &[Workload], flush_interval: u64) -> Result<Q4Result, IsaError> {
    q4_with(
        &mut Evaluator::new(),
        workloads,
        flush_interval,
        Q4_PARTITION_CONTEXTS,
    )
}

// --------------------------------------------------- §7.5: trace generation

/// Per-workload trace-generation timing (the paper's §7.5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGenRow {
    /// Workload name.
    pub workload: String,
    /// Static branch detection (step A).
    pub detect: Duration,
    /// Raw trace collection (step B).
    pub collect: Duration,
    /// Vanilla trace construction (step C).
    pub vanilla: Duration,
    /// DNA encoding + k-mers compression (steps D-E).
    pub kmers: Duration,
    /// Number of analyzed branches.
    pub branches: usize,
}

/// Measures the trace-generation procedure for each workload through an
/// evaluation session. Workloads already analyzed by the session report
/// their cached timing.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn trace_generation_timing_with(
    ev: &mut Evaluator,
    workloads: &[Workload],
) -> Result<Vec<TraceGenRow>, IsaError> {
    let mut rows = Vec::new();
    for w in workloads {
        let analysis = ev.analysis(w)?;
        let t = analysis.bundle.timing;
        rows.push(TraceGenRow {
            workload: w.name.clone(),
            detect: t.detect,
            collect: t.collect,
            vanilla: t.vanilla,
            kmers: t.kmers,
            branches: analysis.bundle.analyzed_branches(),
        });
    }
    Ok(rows)
}

/// Measures the trace-generation procedure for each workload (one-shot shim;
/// prefer [`trace_generation_timing_with`]).
///
/// # Errors
///
/// Propagates analysis errors.
pub fn trace_generation_timing(workloads: &[Workload]) -> Result<Vec<TraceGenRow>, IsaError> {
    trace_generation_timing_with(&mut Evaluator::new(), workloads)
}

/// A small subset of the suite used by tests and quick demos.
pub fn quick_workloads() -> Vec<Workload> {
    vec![
        suite::chacha20_workload(128),
        suite::sha256_workload(128),
        suite::poly1305_workload(64),
        suite::des_workload(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_suite_compresses_traces() {
        let result = table1(&quick_workloads()).unwrap();
        assert_eq!(result.rows.len(), 4);
        assert!(result.all.compression_avg >= 1.0);
        assert!(result.all.vanilla_max >= result.all.kmers_max);
        // The headline property: compressed traces are small.
        assert!(
            result.all.kmers_avg < 64.0,
            "kmers avg {}",
            result.all.kmers_avg
        );
    }

    #[test]
    fn figure7_quick_suite_shapes() {
        let workloads = vec![suite::chacha20_workload(128), suite::sha256_workload(128)];
        let result = figure7(&workloads, &FIG7_DESIGNS).unwrap();
        assert_eq!(result.rows.len(), 2);
        // The baseline normalises to 1.0 by construction.
        for row in &result.rows {
            assert!((row.normalized[DefenseMode::UnsafeBaseline.label()] - 1.0).abs() < 1e-12);
        }
        // Cassandra must not be slower than the baseline on crypto kernels
        // (the paper reports a small speedup).
        let cass = result.geomean[DefenseMode::Cassandra.label()];
        assert!(cass <= 1.02, "Cassandra normalised time {cass}");
        // SPT must not be faster than Cassandra.
        assert!(result.geomean[DefenseMode::Spt.label()] >= cass - 1e-9);
    }

    #[test]
    fn figure9_reports_small_area_and_power_effects() {
        let workloads = vec![suite::chacha20_workload(64)];
        let f9 = figure9(&workloads).unwrap();
        assert!(f9.area_overhead_pct > 0.0 && f9.area_overhead_pct < 3.0);
        assert!(
            f9.power_delta_pct < 1.0,
            "power delta {}",
            f9.power_delta_pct
        );
    }

    #[test]
    fn q3_lite_is_not_faster_than_full_cassandra() {
        let rows = q3_cassandra_lite(&[suite::sha256_workload(96)]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].design, DefenseMode::CassandraLite.label());
        assert!(rows[0].slowdown_pct >= 0.0);
    }

    #[test]
    fn q3_compares_every_restricted_variant_against_cassandra() {
        let workloads = [suite::chacha20_workload(64)];
        let rows = q3_with(&mut Evaluator::new(), &workloads, &Q3_VARIANTS).unwrap();
        assert_eq!(rows.len(), Q3_VARIANTS.len());
        for (row, variant) in rows.iter().zip(Q3_VARIANTS) {
            assert_eq!(row.design, variant.label());
            assert!(
                row.slowdown_pct >= 0.0,
                "{}: a restricted frontend cannot beat full Cassandra",
                row.design
            );
        }
        // The serializing Fence baseline is strictly slower than Cassandra.
        let fence = rows
            .iter()
            .find(|r| r.design == DefenseMode::Fence.label())
            .unwrap();
        assert!(fence.variant_cycles > fence.cassandra_cycles);
    }

    #[test]
    fn q4_flush_costs_at_most_a_little() {
        let workloads = vec![suite::chacha20_workload(64)];
        let q4 = q4_btu_flush(&workloads, 5_000).unwrap();
        assert!(q4.speedup_with_flush_pct <= q4.speedup_no_flush_pct + 1e-9);
        assert_eq!(q4.partition_contexts, Q4_PARTITION_CONTEXTS);
    }

    #[test]
    fn q4_partition_reassignment_beats_whole_flushes() {
        // A short switch interval makes the whole-unit flush pay many Trace
        // Cache refills; the partitioned BTU keeps every context's partition
        // warm across switches and must not be slower.
        let workloads = vec![suite::chacha20_workload(64)];
        let q4 = q4_with(&mut Evaluator::new(), &workloads, 2_000, 2).unwrap();
        assert!(
            q4.speedup_with_partition_pct >= q4.speedup_with_flush_pct - 1e-9,
            "partition {} vs flush {}",
            q4.speedup_with_partition_pct,
            q4.speedup_with_flush_pct
        );
        assert!(q4.speedup_with_partition_pct <= q4.speedup_no_flush_pct + 1e-9);
    }

    #[test]
    fn trace_generation_timing_is_collected() {
        let rows = trace_generation_timing(&[suite::des_workload(4)]).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].branches > 0);
    }

    #[test]
    fn session_drivers_share_one_analysis_per_workload() {
        let workloads = quick_workloads();
        let mut ev = Evaluator::new();
        table1_with(&mut ev, &workloads).unwrap();
        figure7_with(&mut ev, &workloads, &FIG7_DESIGNS).unwrap();
        figure9_with(&mut ev, &workloads).unwrap();
        q3_with(&mut ev, &workloads, &Q3_VARIANTS).unwrap();
        q4_with(&mut ev, &workloads, 50_000, Q4_PARTITION_CONTEXTS).unwrap();
        trace_generation_timing_with(&mut ev, &workloads).unwrap();
        assert_eq!(
            ev.cache_stats().misses,
            workloads.len() as u64,
            "each workload analyzed exactly once across six experiments"
        );
        assert!(ev.cache_stats().hits > 0);
    }
}
