//! Empirical security analysis: the paper's Figure 6 / Table 2 scenarios and
//! a testable form of Theorem 1.
//!
//! The adversary model matches §6: the attacker observes the microarchitectural
//! context — here the sequence of data-cache accesses, including those made by
//! squashed wrong-path instructions. A program *leaks* under a design if two
//! runs that differ only in a secret produce different attacker-visible
//! access sequences.

use crate::eval::Evaluator;
use crate::{analyze_program, simulate_program, AnalysisBundle};
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_cpu::pipeline::SimOutcome;
use cassandra_isa::error::IsaError;
use cassandra_isa::exec::contract_trace;
use cassandra_isa::observe::ContractTrace;
use cassandra_isa::program::Program;
use cassandra_kernels::gadgets::{scenario, BranchSite, GadgetProgram, LeakGadget};
use serde::{Deserialize, Serialize};

/// The attacker-visible result of running one program build. Holds the
/// simulation outcome by value — the access traces are borrowed from it, so
/// building and comparing observations allocates nothing beyond the run
/// itself (the security differ compares one pair per sweep cell).
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageObservation {
    /// Sequential (architectural) contract trace under the ct leakage model.
    pub contract: ContractTrace,
    /// The full simulation outcome, including both access traces.
    pub outcome: SimOutcome,
}

impl LeakageObservation {
    /// Attacker-visible data-access sequence (architectural + transient),
    /// borrowed — compare with `Iterator::eq`, collect only if needed.
    pub fn attacker_accesses(&self) -> impl Iterator<Item = u64> + '_ {
        self.outcome.attacker_visible_accesses()
    }

    /// Accesses made only by squashed wrong-path execution.
    pub fn transient_accesses(&self) -> &[u64] {
        &self.outcome.transient_accesses
    }
}

/// Profiling step budget for the small gadget programs.
const GADGET_STEP_LIMIT: u64 = 10_000_000;

/// Runs a program under `config` and collects the attacker-visible traces.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn observe(program: &Program, config: &CpuConfig) -> Result<LeakageObservation, IsaError> {
    let analysis: Option<AnalysisBundle> = if config.resolved_policy().frontend.uses_btu() {
        Some(analyze_program(program, GADGET_STEP_LIMIT)?)
    } else {
        None
    };
    let outcome = simulate_program(program, analysis.as_ref(), config)?;
    Ok(LeakageObservation {
        contract: contract_trace(program, GADGET_STEP_LIMIT)?,
        outcome,
    })
}

/// [`observe`] through an evaluation session: the program's analysis is
/// served from (and recorded in) the session cache.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn observe_with(
    ev: &mut Evaluator,
    program: &Program,
    config: &CpuConfig,
) -> Result<LeakageObservation, IsaError> {
    let analysis = if config.resolved_policy().frontend.uses_btu() {
        Some(ev.analyze_program(program, GADGET_STEP_LIMIT)?)
    } else {
        None
    };
    let outcome = Evaluator::simulate_program(program, analysis.as_deref(), config)?;
    Ok(LeakageObservation {
        contract: contract_trace(program, GADGET_STEP_LIMIT)?,
        outcome,
    })
}

/// The verdict for one gadget scenario under one design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioVerdict {
    /// Human-readable scenario name.
    pub scenario: String,
    /// Whether the two secret-differing runs produced identical contract
    /// traces (they must, for constant-time programs).
    pub contract_equal: bool,
    /// Whether the attacker-visible access sequences were identical.
    pub attacker_trace_equal: bool,
    /// Whether any wrong-path (transient) accesses happened at all.
    pub transient_activity: bool,
    /// The offending addresses when the attacker traces differ: at each
    /// position where the two access sequences disagree (including length
    /// overhang), both sides' addresses, capped at
    /// [`MAX_DIVERGENT_ACCESSES`] entries. Empty exactly when
    /// `attacker_trace_equal` — this is what makes a differential-test
    /// failure debuggable instead of a bare leak count.
    #[serde(default)]
    pub divergent_accesses: Vec<u64>,
}

/// Cap on [`ScenarioVerdict::divergent_accesses`]: enough to localise a
/// leaking gadget without dragging full megabyte-scale traces into reports.
pub const MAX_DIVERGENT_ACCESSES: usize = 8;

impl ScenarioVerdict {
    /// Builds the verdict by comparing the observations of two builds of the
    /// same scenario differing only in the secret.
    pub fn from_observations(
        scenario: impl Into<String>,
        o0: &LeakageObservation,
        o1: &LeakageObservation,
    ) -> Self {
        let mut divergent_accesses = Vec::new();
        let (mut a, mut b) = (o0.attacker_accesses(), o1.attacker_accesses());
        loop {
            let pair = (a.next(), b.next());
            if pair == (None, None) || divergent_accesses.len() >= MAX_DIVERGENT_ACCESSES {
                break;
            }
            if pair.0 != pair.1 {
                divergent_accesses.extend([pair.0, pair.1].into_iter().flatten());
            }
        }
        divergent_accesses.truncate(MAX_DIVERGENT_ACCESSES);
        ScenarioVerdict {
            scenario: scenario.into(),
            contract_equal: o0.contract == o1.contract,
            attacker_trace_equal: divergent_accesses.is_empty(),
            transient_activity: !o0.transient_accesses().is_empty()
                || !o1.transient_accesses().is_empty(),
            divergent_accesses,
        }
    }

    /// A design protects a scenario when equal contract traces imply equal
    /// attacker-visible traces (the hardware satisfies the contract on this
    /// program pair).
    pub fn is_protected(&self) -> bool {
        !self.contract_equal || self.attacker_trace_equal
    }
}

/// Evaluates one gadget builder under a design by comparing two secrets.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn evaluate_scenario(
    name: &str,
    build: impl Fn(u64) -> GadgetProgram,
    config: &CpuConfig,
) -> Result<ScenarioVerdict, IsaError> {
    let g0 = build(0x0000_0000_0000_0000);
    let g1 = build(0xffff_ffff_ffff_ffff);
    let o0 = observe(&g0.program, config)?;
    let o1 = observe(&g1.program, config)?;
    Ok(ScenarioVerdict::from_observations(name, &o0, &o1))
}

/// Empirical statement of Theorem 1 for a concrete program pair: if the two
/// builds have equal contract traces, their hardware observations under a
/// Cassandra-enabled processor must be equal as well.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn check_contract_satisfaction(
    program_a: &Program,
    program_b: &Program,
    config: &CpuConfig,
) -> Result<bool, IsaError> {
    let oa = observe(program_a, config)?;
    let ob = observe(program_b, config)?;
    if oa.contract != ob.contract {
        // Different contract traces: the premise is vacuous.
        return Ok(true);
    }
    Ok(oa.attacker_accesses().eq(ob.attacker_accesses()))
}

// ------------------------------------------------------------ Table-2 sweep

/// The designs the paper's Table 2 compares on the gadget scenarios.
pub const SECURITY_SWEEP_DESIGNS: [DefenseMode; 2] =
    [DefenseMode::UnsafeBaseline, DefenseMode::Cassandra];

/// One cell of the security matrix: a gadget scenario under one design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityCell {
    /// Human-readable scenario name (`BR→gadget`).
    pub scenario: String,
    /// Where the mispredicted branch lives.
    pub site: BranchSite,
    /// The leak gadget on the transient path.
    pub gadget: LeakGadget,
    /// Design label.
    pub design: String,
    /// The per-scenario verdict.
    pub verdict: ScenarioVerdict,
}

/// The full Figure-6 / Table-2 matrix: every gadget scenario under every
/// swept design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityMatrix {
    /// One cell per (scenario, design) pair, scenario-major.
    pub cells: Vec<SecurityCell>,
}

impl SecurityMatrix {
    /// True if every scenario is protected under `design_label`.
    pub fn all_protected_under(&self, design_label: &str) -> bool {
        self.cells
            .iter()
            .filter(|c| c.design == design_label)
            .all(|c| c.verdict.is_protected())
    }

    /// Number of (scenario, design) cells whose scenario leaks.
    pub fn leak_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.verdict.is_protected())
            .count()
    }
}

/// Evaluates every gadget scenario (the paper's eight `BranchSite` ×
/// `LeakGadget` combinations) under each design, sharing gadget analyses
/// through the evaluation session.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn security_sweep_with(
    ev: &mut Evaluator,
    designs: &[DefenseMode],
) -> Result<SecurityMatrix, IsaError> {
    let sites = [BranchSite::Crypto, BranchSite::NonCrypto];
    let gadgets = [
        LeakGadget::CryptoRegister,
        LeakGadget::CryptoMemory,
        LeakGadget::NonCryptoRegister,
        LeakGadget::NonCryptoMemory,
    ];
    let mut cells = Vec::new();
    for site in sites {
        for gadget in gadgets {
            let name = format!("{site:?}->{gadget:?}");
            let g0 = scenario(site, gadget, 0x0000_0000_0000_0000);
            let g1 = scenario(site, gadget, 0xffff_ffff_ffff_ffff);
            for design in designs {
                let cfg = CpuConfig::golden_cove_like().with_defense(*design);
                let o0 = observe_with(ev, &g0.program, &cfg)?;
                let o1 = observe_with(ev, &g1.program, &cfg)?;
                cells.push(SecurityCell {
                    scenario: name.clone(),
                    site,
                    gadget,
                    design: design.label().to_string(),
                    verdict: ScenarioVerdict::from_observations(name.clone(), &o0, &o1),
                });
            }
        }
    }
    Ok(SecurityMatrix { cells })
}

/// [`security_sweep_with`] on a one-shot session (deprecated-path shim).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn security_sweep(designs: &[DefenseMode]) -> Result<SecurityMatrix, IsaError> {
    security_sweep_with(&mut Evaluator::new(), designs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_cpu::config::{CpuConfig, DefenseMode};
    use cassandra_kernels::kernel::chacha20;

    fn cfg(defense: DefenseMode) -> CpuConfig {
        CpuConfig::golden_cove_like().with_defense(defense)
    }

    #[test]
    fn unsafe_baseline_leaks_the_crypto_register_gadget() {
        let verdict = evaluate_scenario(
            "BR1->R1",
            |secret| scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, secret),
            &cfg(DefenseMode::UnsafeBaseline),
        )
        .unwrap();
        assert!(verdict.contract_equal, "the program is constant-time");
        assert!(verdict.transient_activity, "the baseline speculates");
        assert!(
            !verdict.attacker_trace_equal,
            "the transient register leak must be visible on the baseline"
        );
        assert!(!verdict.is_protected());
        assert!(
            !verdict.divergent_accesses.is_empty()
                && verdict.divergent_accesses.len() <= MAX_DIVERGENT_ACCESSES,
            "a leaking cell must name the offending addresses: {verdict:?}"
        );
    }

    #[test]
    fn cassandra_blocks_the_crypto_register_gadget() {
        let verdict = evaluate_scenario(
            "BR1->R1",
            |secret| scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, secret),
            &cfg(DefenseMode::Cassandra),
        )
        .unwrap();
        assert!(verdict.contract_equal);
        assert!(verdict.attacker_trace_equal, "no secret-dependent accesses");
        assert!(verdict.is_protected());
        assert!(
            verdict.divergent_accesses.is_empty(),
            "equal traces must report no divergent addresses"
        );
    }

    #[test]
    fn cassandra_blocks_the_non_crypto_branch_to_crypto_memory_gadget() {
        // Scenario 5: BR2 -> M1 is protected by the integrity check.
        let verdict = evaluate_scenario(
            "BR2->M1",
            |secret| scenario(BranchSite::NonCrypto, LeakGadget::CryptoMemory, secret),
            &cfg(DefenseMode::Cassandra),
        )
        .unwrap();
        assert!(verdict.is_protected());
    }

    #[test]
    fn security_sweep_matches_the_papers_table2() {
        let mut ev = Evaluator::new();
        let matrix = security_sweep_with(&mut ev, &SECURITY_SWEEP_DESIGNS).unwrap();
        assert_eq!(matrix.cells.len(), 8 * SECURITY_SWEEP_DESIGNS.len());
        // Cassandra protects every scenario except scenario 8 (non-crypto
        // branch to non-crypto memory gadget — software isolation, which the
        // paper leaves to a companion defense); the baseline leaks more.
        let cassandra_leaks: Vec<&SecurityCell> = matrix
            .cells
            .iter()
            .filter(|c| c.design == DefenseMode::Cassandra.label() && !c.verdict.is_protected())
            .collect();
        assert_eq!(cassandra_leaks.len(), 1, "{cassandra_leaks:?}");
        assert_eq!(cassandra_leaks[0].site, BranchSite::NonCrypto);
        assert_eq!(cassandra_leaks[0].gadget, LeakGadget::NonCryptoMemory);
        assert!(!matrix.all_protected_under(DefenseMode::UnsafeBaseline.label()));
        let baseline_leaks = matrix
            .cells
            .iter()
            .filter(|c| {
                c.design == DefenseMode::UnsafeBaseline.label() && !c.verdict.is_protected()
            })
            .count();
        assert!(
            baseline_leaks > 1,
            "the baseline must leak more than Cassandra"
        );
        // Only the Cassandra runs need analyses: 8 scenarios × 2 secrets.
        assert_eq!(ev.cache_stats().misses, 16);
    }

    #[test]
    fn theorem1_holds_for_chacha20_under_cassandra() {
        // Two ChaCha20 builds differing only in the key have identical
        // contract traces; Cassandra must produce identical attacker traces.
        let nonce = [7u8; 12];
        let msg = vec![0u8; 64];
        let k_a = chacha20::build(&[0u8; 32], 1, &nonce, &msg);
        let k_b = chacha20::build(&[0xffu8; 32], 1, &nonce, &msg);
        assert!(check_contract_satisfaction(
            &k_a.program,
            &k_b.program,
            &cfg(DefenseMode::Cassandra)
        )
        .unwrap());
    }

    #[test]
    fn theorem1_holds_for_chacha20_even_on_the_baseline() {
        // ChaCha20 has no mispredictable secret-dependent branches, so even
        // the unsafe baseline satisfies the contract on this pair — the
        // paper's point is about gadgets like Figure 5, covered above.
        let nonce = [9u8; 12];
        let msg = vec![0u8; 64];
        let k_a = chacha20::build(&[1u8; 32], 1, &nonce, &msg);
        let k_b = chacha20::build(&[2u8; 32], 1, &nonce, &msg);
        assert!(check_contract_satisfaction(
            &k_a.program,
            &k_b.program,
            &cfg(DefenseMode::UnsafeBaseline)
        )
        .unwrap());
    }
}
