//! Empirical security analysis: the paper's Figure 6 / Table 2 scenarios and
//! a testable form of Theorem 1.
//!
//! The adversary model matches §6: the attacker observes the microarchitectural
//! context — here the sequence of data-cache accesses, including those made by
//! squashed wrong-path instructions. A program *leaks* under a design if two
//! runs that differ only in a secret produce different attacker-visible
//! access sequences.

use crate::{analyze_program, simulate_program, AnalysisBundle};
use cassandra_cpu::config::CpuConfig;
use cassandra_isa::error::IsaError;
use cassandra_isa::exec::contract_trace;
use cassandra_isa::observe::ContractTrace;
use cassandra_isa::program::Program;
use cassandra_kernels::gadgets::GadgetProgram;

/// The attacker-visible result of running one program build.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageObservation {
    /// Sequential (architectural) contract trace under the ct leakage model.
    pub contract: ContractTrace,
    /// Attacker-visible data-access sequence (architectural + transient).
    pub attacker_accesses: Vec<u64>,
    /// Accesses made only by squashed wrong-path execution.
    pub transient_accesses: Vec<u64>,
}

/// Runs a program under `config` and collects the attacker-visible traces.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn observe(program: &Program, config: &CpuConfig) -> Result<LeakageObservation, IsaError> {
    let analysis: Option<AnalysisBundle> = if config.defense.uses_btu() {
        Some(analyze_program(program, 10_000_000)?)
    } else {
        None
    };
    let outcome = simulate_program(program, analysis.as_ref(), config)?;
    Ok(LeakageObservation {
        contract: contract_trace(program, 10_000_000)?,
        attacker_accesses: outcome.attacker_visible_accesses(),
        transient_accesses: outcome.transient_accesses,
    })
}

/// The verdict for one gadget scenario under one design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioVerdict {
    /// Human-readable scenario name.
    pub scenario: String,
    /// Whether the two secret-differing runs produced identical contract
    /// traces (they must, for constant-time programs).
    pub contract_equal: bool,
    /// Whether the attacker-visible access sequences were identical.
    pub attacker_trace_equal: bool,
    /// Whether any wrong-path (transient) accesses happened at all.
    pub transient_activity: bool,
}

impl ScenarioVerdict {
    /// A design protects a scenario when equal contract traces imply equal
    /// attacker-visible traces (the hardware satisfies the contract on this
    /// program pair).
    pub fn is_protected(&self) -> bool {
        !self.contract_equal || self.attacker_trace_equal
    }
}

/// Evaluates one gadget builder under a design by comparing two secrets.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn evaluate_scenario(
    name: &str,
    build: impl Fn(u64) -> GadgetProgram,
    config: &CpuConfig,
) -> Result<ScenarioVerdict, IsaError> {
    let g0 = build(0x0000_0000_0000_0000);
    let g1 = build(0xffff_ffff_ffff_ffff);
    let o0 = observe(&g0.program, config)?;
    let o1 = observe(&g1.program, config)?;
    Ok(ScenarioVerdict {
        scenario: name.to_string(),
        contract_equal: o0.contract == o1.contract,
        attacker_trace_equal: o0.attacker_accesses == o1.attacker_accesses,
        transient_activity: !o0.transient_accesses.is_empty()
            || !o1.transient_accesses.is_empty(),
    })
}

/// Empirical statement of Theorem 1 for a concrete program pair: if the two
/// builds have equal contract traces, their hardware observations under a
/// Cassandra-enabled processor must be equal as well.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn check_contract_satisfaction(
    program_a: &Program,
    program_b: &Program,
    config: &CpuConfig,
) -> Result<bool, IsaError> {
    let oa = observe(program_a, config)?;
    let ob = observe(program_b, config)?;
    if oa.contract != ob.contract {
        // Different contract traces: the premise is vacuous.
        return Ok(true);
    }
    Ok(oa.attacker_accesses == ob.attacker_accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_cpu::config::{CpuConfig, DefenseMode};
    use cassandra_kernels::gadgets::{scenario, BranchSite, LeakGadget};
    use cassandra_kernels::kernel::chacha20;

    fn cfg(defense: DefenseMode) -> CpuConfig {
        CpuConfig::golden_cove_like().with_defense(defense)
    }

    #[test]
    fn unsafe_baseline_leaks_the_crypto_register_gadget() {
        let verdict = evaluate_scenario(
            "BR1->R1",
            |secret| scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, secret),
            &cfg(DefenseMode::UnsafeBaseline),
        )
        .unwrap();
        assert!(verdict.contract_equal, "the program is constant-time");
        assert!(verdict.transient_activity, "the baseline speculates");
        assert!(
            !verdict.attacker_trace_equal,
            "the transient register leak must be visible on the baseline"
        );
        assert!(!verdict.is_protected());
    }

    #[test]
    fn cassandra_blocks_the_crypto_register_gadget() {
        let verdict = evaluate_scenario(
            "BR1->R1",
            |secret| scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, secret),
            &cfg(DefenseMode::Cassandra),
        )
        .unwrap();
        assert!(verdict.contract_equal);
        assert!(verdict.attacker_trace_equal, "no secret-dependent accesses");
        assert!(verdict.is_protected());
    }

    #[test]
    fn cassandra_blocks_the_non_crypto_branch_to_crypto_memory_gadget() {
        // Scenario 5: BR2 -> M1 is protected by the integrity check.
        let verdict = evaluate_scenario(
            "BR2->M1",
            |secret| scenario(BranchSite::NonCrypto, LeakGadget::CryptoMemory, secret),
            &cfg(DefenseMode::Cassandra),
        )
        .unwrap();
        assert!(verdict.is_protected());
    }

    #[test]
    fn theorem1_holds_for_chacha20_under_cassandra() {
        // Two ChaCha20 builds differing only in the key have identical
        // contract traces; Cassandra must produce identical attacker traces.
        let nonce = [7u8; 12];
        let msg = vec![0u8; 64];
        let k_a = chacha20::build(&[0u8; 32], 1, &nonce, &msg);
        let k_b = chacha20::build(&[0xffu8; 32], 1, &nonce, &msg);
        assert!(check_contract_satisfaction(
            &k_a.program,
            &k_b.program,
            &cfg(DefenseMode::Cassandra)
        )
        .unwrap());
    }

    #[test]
    fn theorem1_holds_for_chacha20_even_on_the_baseline() {
        // ChaCha20 has no mispredictable secret-dependent branches, so even
        // the unsafe baseline satisfies the contract on this pair — the
        // paper's point is about gadgets like Figure 5, covered above.
        let nonce = [9u8; 12];
        let msg = vec![0u8; 64];
        let k_a = chacha20::build(&[1u8; 32], 1, &nonce, &msg);
        let k_b = chacha20::build(&[2u8; 32], 1, &nonce, &msg);
        assert!(check_contract_satisfaction(
            &k_a.program,
            &k_b.program,
            &cfg(DefenseMode::UnsafeBaseline)
        )
        .unwrap());
    }
}
