//! The evaluation session API: cached analysis and batched design-point
//! sweeps.
//!
//! The paper's evaluation runs one trace-generation pass (Algorithm 2) per
//! workload and then simulates that workload under many defense designs.
//! The free functions in the crate root re-derive the analysis on every
//! call; an [`Evaluator`] instead memoizes each [`AnalysisBundle`] keyed by
//! the program's content fingerprint
//! ([`cassandra_trace::fingerprint::program_fingerprint`]), so a full
//! multi-experiment evaluation analyzes every distinct program **exactly
//! once** no matter how many design points or experiments consume it.
//!
//! ## Session model
//!
//! An `Evaluator` is built once per evaluation session — with a workload
//! set, a design matrix ([`DesignPoint`]s: a label plus a complete
//! [`CpuConfig`]) and an optional step budget — and then handed to any
//! number of experiments (see [`crate::registry`]). [`Evaluator::sweep`]
//! evaluates the full workload × design matrix and yields a uniform
//! [`EvalRecord`] stream; individual experiments use
//! [`Evaluator::simulate_cached`] / [`Evaluator::analysis`] for their more
//! specialised shapes. Cache effectiveness is observable through
//! [`Evaluator::cache_stats`].
//!
//! With the `parallel` feature (enabled by default) sweeps simulate design
//! points on all available cores using scoped threads; analysis stays
//! serial so the exactly-once property is trivially preserved. (The
//! vendored offline toolchain has no `rayon`; the thread pool is a small
//! `std::thread::scope` work queue with identical output ordering.)

use crate::{AnalysisBundle, ANALYSIS_STEP_LIMIT};
use cassandra_btu::encode::EncodedTraces;
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_cpu::pipeline::{simulate, SimOutcome};
use cassandra_cpu::stats::SimStats;
use cassandra_isa::error::IsaError;
use cassandra_isa::program::Program;
use cassandra_kernels::workload::{Workload, WorkloadGroup};
use cassandra_trace::fingerprint::program_fingerprint;
use cassandra_trace::genproc::generate_traces;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One point of the design matrix: a named, complete processor
/// configuration.
///
/// Most design points are plain defenses over the Table-3 baseline
/// ([`DesignPoint::from_defense`]); arbitrary [`CpuConfig`] overrides (BTU
/// geometry, flush intervals, memory latency, …) use [`DesignPoint::new`]
/// with the `CpuConfig::with_*` builders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Column label used in records and reports.
    pub label: String,
    /// The complete processor configuration simulated at this point.
    pub config: CpuConfig,
}

impl DesignPoint {
    /// A design point with an explicit label and configuration.
    pub fn new(label: impl Into<String>, config: CpuConfig) -> Self {
        DesignPoint {
            label: label.into(),
            config,
        }
    }

    /// The Table-3 baseline configuration under `defense`, labelled with the
    /// defense's paper name.
    pub fn from_defense(defense: DefenseMode) -> Self {
        let config = CpuConfig::golden_cove_like().with_defense(defense);
        DesignPoint {
            label: defense.label().to_string(),
            config,
        }
    }

    /// A design point for `config`, labelled by how it differs from the
    /// baseline (see [`CpuConfig::design_label`]).
    pub fn from_config(config: CpuConfig) -> Self {
        DesignPoint {
            label: config.design_label(),
            config,
        }
    }
}

/// Analysis-cache counters of one [`Evaluator`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Analyses served from the memoization cache.
    pub hits: u64,
    /// Analyses that ran Algorithm 2 (one per distinct program).
    pub misses: u64,
}

impl CacheStats {
    /// Total analysis requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Wall-clock timing of one evaluation record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalTiming {
    /// Time spent generating this workload's analysis (the first time; 0 is
    /// possible for sub-microsecond analyses, see `analysis_cached`).
    pub analysis: Duration,
    /// True if the analysis was served from the session cache.
    pub analysis_cached: bool,
    /// Time spent in the cycle-level simulation of this design point.
    pub simulate: Duration,
}

/// One row of the uniform evaluation stream: a workload simulated at one
/// design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Workload name.
    pub workload: String,
    /// Workload library group.
    pub group: WorkloadGroup,
    /// Design-point label.
    pub design: String,
    /// The defense simulated at this point.
    pub defense: DefenseMode,
    /// Simulation statistics (cycles, IPC inputs, BPU/BTU/cache counters).
    pub stats: SimStats,
    /// Wall-clock timing breakdown.
    pub timing: EvalTiming,
}

struct CachedAnalysis {
    bundle: Arc<AnalysisBundle>,
    elapsed: Duration,
}

/// Builder for an [`Evaluator`] session.
#[derive(Default)]
pub struct EvaluatorBuilder {
    workloads: Vec<Workload>,
    designs: Vec<DesignPoint>,
    step_limit: Option<u64>,
}

impl EvaluatorBuilder {
    /// Adds one workload to the session's workload set.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds workloads to the session's workload set.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one design point to the design matrix.
    #[must_use]
    pub fn design(mut self, design: DesignPoint) -> Self {
        self.designs.push(design);
        self
    }

    /// Adds design points to the design matrix.
    #[must_use]
    pub fn designs(mut self, designs: impl IntoIterator<Item = DesignPoint>) -> Self {
        self.designs.extend(designs);
        self
    }

    /// Adds one baseline-configured design point per defense.
    #[must_use]
    pub fn defense_matrix(mut self, defenses: impl IntoIterator<Item = DefenseMode>) -> Self {
        self.designs
            .extend(defenses.into_iter().map(DesignPoint::from_defense));
        self
    }

    /// Adds every design point registered in a policy registry (see
    /// [`crate::policies::PolicyRegistry`]); the usual way to sweep "every
    /// modelled defense scenario" without hand-listing variants.
    #[must_use]
    pub fn policies(mut self, registry: &crate::policies::PolicyRegistry) -> Self {
        self.designs.extend(registry.designs().iter().cloned());
        self
    }

    /// Overrides the profiling step budget for every analysis (default: the
    /// workload's own `step_limit`).
    #[must_use]
    pub fn step_limit(mut self, step_limit: u64) -> Self {
        self.step_limit = Some(step_limit);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Evaluator {
        Evaluator {
            workloads: Arc::from(self.workloads),
            designs: Arc::from(self.designs),
            step_limit: self.step_limit,
            cache: HashMap::new(),
            stats: CacheStats::default(),
        }
    }
}

/// A reusable evaluation session: memoized Algorithm-2 analyses plus batched
/// design-point sweeps. See the [module documentation](self).
///
/// ```
/// use cassandra_core::eval::Evaluator;
/// use cassandra_cpu::config::DefenseMode;
/// use cassandra_kernels::suite;
///
/// let mut session = Evaluator::builder()
///     .workload(suite::des_workload(4))
///     .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
///     .build();
///
/// let records = session.sweep()?;
/// assert_eq!(records.len(), 2);
///
/// // Sweeping again reuses the memoized analysis: one miss, ever.
/// session.sweep()?;
/// assert_eq!(session.cache_stats().misses, 1);
/// assert!(session.cache_stats().hits >= 1);
/// # Ok::<(), cassandra_isa::error::IsaError>(())
/// ```
pub struct Evaluator {
    workloads: Arc<[Workload]>,
    designs: Arc<[DesignPoint]>,
    step_limit: Option<u64>,
    cache: HashMap<u64, CachedAnalysis>,
    stats: CacheStats,
}

impl Default for Evaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl Evaluator {
    /// An empty session (no preconfigured workloads or designs); useful for
    /// one-shot evaluation and as the delegate of the deprecated-path free
    /// functions in the crate root.
    pub fn new() -> Self {
        EvaluatorBuilder::default().build()
    }

    /// Starts building a session.
    pub fn builder() -> EvaluatorBuilder {
        EvaluatorBuilder::default()
    }

    /// The session's workload set.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The session's workload set as a cheaply clonable handle (used by the
    /// registry experiments, which need the list while mutably borrowing the
    /// session).
    pub fn shared_workloads(&self) -> Arc<[Workload]> {
        Arc::clone(&self.workloads)
    }

    /// The session's design matrix.
    pub fn designs(&self) -> &[DesignPoint] {
        &self.designs
    }

    /// Analysis-cache counters (hits/misses) accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct programs analyzed so far.
    pub fn analyzed_programs(&self) -> usize {
        self.cache.len()
    }

    // ------------------------------------------------------------ analysis

    /// Runs Algorithm 2 once, without touching any session cache — the
    /// one-shot primitive behind [`crate::analyze_program`].
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analyze_once(program: &Program, step_limit: u64) -> Result<AnalysisBundle, IsaError> {
        let bundle = generate_traces(program, None, step_limit)?;
        let encoded = EncodedTraces::from_bundle(program, &bundle);
        Ok(AnalysisBundle { bundle, encoded })
    }

    /// Cache lookup/fill sharing one fingerprint computation; returns the
    /// bundle plus its analysis wall time and whether it was a cache hit.
    fn analysis_entry(
        &mut self,
        program: &Program,
        step_limit: u64,
    ) -> Result<(Arc<AnalysisBundle>, EvalTiming), IsaError> {
        let key = program_fingerprint(program);
        if let Some(cached) = self.cache.get(&key) {
            self.stats.hits += 1;
            return Ok((
                Arc::clone(&cached.bundle),
                EvalTiming {
                    analysis: cached.elapsed,
                    analysis_cached: true,
                    simulate: Duration::ZERO,
                },
            ));
        }
        let start = Instant::now();
        let step_limit = self.step_limit.unwrap_or(step_limit);
        let analysis = Arc::new(Self::analyze_once(program, step_limit)?);
        let elapsed = start.elapsed();
        self.stats.misses += 1;
        self.cache.insert(
            key,
            CachedAnalysis {
                bundle: Arc::clone(&analysis),
                elapsed,
            },
        );
        Ok((
            analysis,
            EvalTiming {
                analysis: elapsed,
                analysis_cached: false,
                simulate: Duration::ZERO,
            },
        ))
    }

    /// The memoized analysis of an arbitrary program.
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analyze_program(
        &mut self,
        program: &Program,
        step_limit: u64,
    ) -> Result<Arc<AnalysisBundle>, IsaError> {
        self.analysis_entry(program, step_limit)
            .map(|(bundle, _)| bundle)
    }

    /// The memoized analysis of a workload's kernel.
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analysis(&mut self, workload: &Workload) -> Result<Arc<AnalysisBundle>, IsaError> {
        self.analyze_program(&workload.kernel.program, workload.kernel.step_limit)
    }

    // ---------------------------------------------------------- simulation

    /// Simulates `program` under `config` with a caller-provided analysis;
    /// the primitive behind both the session methods and the deprecated-path
    /// free functions ([`crate::simulate_program`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn simulate_program(
        program: &Program,
        analysis: Option<&AnalysisBundle>,
        config: &CpuConfig,
    ) -> Result<SimOutcome, IsaError> {
        let btu = if config.resolved_policy().frontend.uses_btu() {
            analysis.map(|a| a.make_btu(config))
        } else {
            None
        };
        simulate(program, *config, btu)
    }

    /// Simulates a workload under `config`, analyzing it first if this
    /// session has not seen its program yet.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn simulate_cached(
        &mut self,
        workload: &Workload,
        config: &CpuConfig,
    ) -> Result<SimOutcome, IsaError> {
        let analysis = self.analysis(workload)?;
        let mut cfg = *config;
        cfg.max_instructions = cfg.max_instructions.max(workload.kernel.step_limit);
        Self::simulate_program(&workload.kernel.program, Some(&analysis), &cfg)
    }

    /// Evaluates one workload at one design point, yielding a uniform
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn eval(
        &mut self,
        workload: &Workload,
        design: &DesignPoint,
    ) -> Result<EvalRecord, IsaError> {
        let (analysis, mut timing) =
            self.analysis_entry(&workload.kernel.program, workload.kernel.step_limit)?;
        let mut cfg = design.config;
        cfg.max_instructions = cfg.max_instructions.max(workload.kernel.step_limit);
        let start = Instant::now();
        let outcome = Self::simulate_program(&workload.kernel.program, Some(&analysis), &cfg)?;
        timing.simulate = start.elapsed();
        Ok(record_from(workload, design, outcome.stats, timing))
    }

    // --------------------------------------------------------------- sweep

    /// Evaluates the full workload × design matrix configured on this
    /// session, in matrix order (workload-major). Analyses run exactly once
    /// per distinct program; simulations run in parallel when the
    /// `parallel` feature is enabled.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn sweep(&mut self) -> Result<Vec<EvalRecord>, IsaError> {
        let workloads = Arc::clone(&self.workloads);
        let designs = Arc::clone(&self.designs);
        self.sweep_matrix(&workloads, &designs)
    }

    /// Evaluates an explicit workload × design matrix against this
    /// session's cache.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn sweep_matrix(
        &mut self,
        workloads: &[Workload],
        designs: &[DesignPoint],
    ) -> Result<Vec<EvalRecord>, IsaError> {
        // Phase 1 (serial): analyze every workload once, through the cache.
        let mut analyses: Vec<(Arc<AnalysisBundle>, EvalTiming)> =
            Vec::with_capacity(workloads.len());
        for w in workloads {
            analyses.push(self.analysis_entry(&w.kernel.program, w.kernel.step_limit)?);
        }

        // Phase 2: simulate every (workload, design) pair.
        let jobs: Vec<(usize, usize)> = (0..workloads.len())
            .flat_map(|wi| (0..designs.len()).map(move |di| (wi, di)))
            .collect();
        let run_one = |&(wi, di): &(usize, usize)| -> Result<EvalRecord, IsaError> {
            let w = &workloads[wi];
            let d = &designs[di];
            let (bundle, mut timing) = (&analyses[wi].0, analyses[wi].1);
            let mut cfg = d.config;
            cfg.max_instructions = cfg.max_instructions.max(w.kernel.step_limit);
            let start = Instant::now();
            let outcome = Self::simulate_program(&w.kernel.program, Some(bundle), &cfg)?;
            timing.simulate = start.elapsed();
            Ok(record_from(w, d, outcome.stats, timing))
        };
        run_jobs(&jobs, run_one).into_iter().collect()
    }
}

fn record_from(
    workload: &Workload,
    design: &DesignPoint,
    stats: SimStats,
    timing: EvalTiming,
) -> EvalRecord {
    EvalRecord {
        workload: workload.name.clone(),
        group: workload.group,
        design: design.label.clone(),
        defense: design.config.defense,
        stats,
        timing,
    }
}

/// Runs `run_one` over `jobs`, returning results in job order.
#[cfg(feature = "parallel")]
fn run_jobs<J, R, F>(jobs: &[J], run_one: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs.len().max(1));
    if threads <= 1 {
        return jobs.iter().map(&run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, run_one(&jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("sweep worker thread panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
fn run_jobs<J, R, F>(jobs: &[J], run_one: F) -> Vec<R>
where
    F: Fn(&J) -> R,
{
    jobs.iter().map(run_one).collect()
}

/// The default profiling step budget, re-exported for builder users.
pub const DEFAULT_STEP_LIMIT: u64 = ANALYSIS_STEP_LIMIT;

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_kernels::suite;

    #[test]
    fn analysis_is_memoized_per_program() {
        let mut ev = Evaluator::new();
        let w = suite::chacha20_workload(64);
        let a1 = ev.analysis(&w).unwrap();
        let a2 = ev.analysis(&w).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(ev.cache_stats().misses, 1);
        assert_eq!(ev.cache_stats().hits, 1);
        // A different program misses.
        ev.analysis(&suite::des_workload(4)).unwrap();
        assert_eq!(ev.cache_stats().misses, 2);
        assert_eq!(ev.analyzed_programs(), 2);
    }

    #[test]
    fn sweep_covers_the_design_matrix_in_order() {
        let mut ev = Evaluator::builder()
            .workloads([suite::chacha20_workload(64), suite::des_workload(4)])
            .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
            .build();
        let records = ev.sweep().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].workload, "ChaCha20_ct");
        assert_eq!(records[0].design, "UnsafeBaseline");
        assert_eq!(records[1].design, "Cassandra");
        assert_eq!(records[2].workload, "DES_ct");
        assert_eq!(ev.cache_stats().misses, 2, "one analysis per workload");
        for r in &records {
            assert!(r.stats.cycles > 0);
            if r.defense == DefenseMode::Cassandra {
                assert_eq!(r.stats.mispredictions, 0);
            }
        }
    }

    #[test]
    fn repeated_sweeps_reuse_the_cache() {
        let mut ev = Evaluator::builder()
            .workload(suite::sha256_workload(96))
            .defense_matrix([DefenseMode::UnsafeBaseline])
            .build();
        let first = ev.sweep().unwrap();
        let second = ev.sweep().unwrap();
        assert_eq!(ev.cache_stats().misses, 1);
        assert_eq!(
            first[0].stats, second[0].stats,
            "simulation is deterministic"
        );
        assert!(second[0].timing.analysis_cached);
        assert!(!first[0].timing.analysis_cached);
    }

    #[test]
    fn eval_matches_free_function_pipeline() {
        let w = suite::poly1305_workload(32);
        let design = DesignPoint::from_defense(DefenseMode::Cassandra);
        let mut ev = Evaluator::new();
        let record = ev.eval(&w, &design).unwrap();

        let analysis = crate::analyze_workload(&w).unwrap();
        let outcome = crate::simulate_workload(&w, &analysis, &design.config).unwrap();
        assert_eq!(record.stats, outcome.stats);
    }

    #[test]
    fn design_point_labels() {
        let p = DesignPoint::from_defense(DefenseMode::CassandraStl);
        assert_eq!(p.label, "Cassandra+STL");
        let cfg = CpuConfig::golden_cove_like()
            .with_defense(DefenseMode::Cassandra)
            .with_btu_flush_interval(5000);
        let p = DesignPoint::from_config(cfg);
        assert_eq!(p.label, "Cassandra+flush5000");
    }
}
