//! The evaluation session API: a shared analysis store, stateless sweep
//! executors, and the [`Evaluator`] facade over the pair.
//!
//! The paper's evaluation runs one trace-generation pass (Algorithm 2) per
//! workload and then simulates that workload under many defense designs.
//! The free functions in the crate root re-derive the analysis on every
//! call; this module instead memoizes each [`AnalysisBundle`] keyed by the
//! program's content fingerprint
//! ([`cassandra_trace::fingerprint::program_fingerprint`]), so a full
//! multi-experiment evaluation analyzes every distinct program **exactly
//! once** no matter how many design points, experiments or concurrent
//! requests consume it.
//!
//! ## The two layers
//!
//! * [`AnalysisStore`] — the thread-safe analysis cache. A fingerprint-keyed
//!   map of `Arc<AnalysisBundle>`s split into fingerprint-range shards
//!   (each behind its own `RwLock`), with per-fingerprint **in-flight
//!   guards**: when two threads request the same un-analyzed program, one
//!   runs Algorithm 2 and the other blocks until the result lands, so the
//!   exactly-once property holds under concurrency. Cache counters are
//!   atomics, observable through [`AnalysisStore::stats`], and the whole
//!   store (or any one shard, [`AnalysisStore::snapshot_shard`]) serializes
//!   to an [`AnalysisSnapshot`] for warm-starts and cross-process sync.
//! * [`SweepExecutor`] — a stateless sweep engine borrowing a store and
//!   evaluating workload × design matrices into [`EvalRecord`]s. Any number
//!   of executors can run against one store concurrently. Sweeps honor a
//!   [`CancelToken`], checked between design-point cells, and can stream
//!   records in matrix order as they complete
//!   ([`SweepExecutor::sweep_stream`]).
//!
//! ## Session model
//!
//! An [`Evaluator`] is a thin facade over one store plus per-call executors:
//! built once per evaluation session — with a workload set, a design matrix
//! ([`DesignPoint`]s: a label plus a complete [`CpuConfig`]) and an optional
//! step budget — and then handed to any number of experiments (see
//! [`crate::registry`]). [`Evaluator::sweep`] evaluates the full workload ×
//! design matrix and yields a uniform [`EvalRecord`] stream; individual
//! experiments use [`Evaluator::simulate_cached`] / [`Evaluator::analysis`]
//! for their more specialised shapes. Sessions built with
//! [`EvaluatorBuilder::store`] share one `Arc<AnalysisStore>`, which is how
//! the evaluation server lets N in-flight requests share one cache.
//!
//! With the `parallel` feature (enabled by default) sweeps simulate design
//! points on all available cores using scoped threads; analysis stays
//! serial (guarded per fingerprint) so the exactly-once property is
//! trivially preserved. (The vendored offline toolchain has no `rayon`; the
//! thread pool is a small `std::thread::scope` work queue with identical
//! output ordering.)

use crate::{AnalysisBundle, ANALYSIS_STEP_LIMIT};
use cassandra_analysis::StaticReport;
use cassandra_btu::encode::EncodedTraces;
use cassandra_btu::unit::ContextBtuStats;
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_cpu::pipeline::{simulate, SimOutcome};
use cassandra_cpu::stats::SimStats;
use cassandra_isa::error::IsaError;
use cassandra_isa::program::Program;
use cassandra_kernels::workload::{Workload, WorkloadGroup};
use cassandra_trace::fingerprint::program_fingerprint;
use cassandra_trace::genproc::generate_traces;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// One point of the design matrix: a named, complete processor
/// configuration.
///
/// Most design points are plain defenses over the Table-3 baseline
/// ([`DesignPoint::from_defense`]); arbitrary [`CpuConfig`] overrides (BTU
/// geometry, flush intervals, memory latency, …) use [`DesignPoint::new`]
/// with the `CpuConfig::with_*` builders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Column label used in records and reports.
    pub label: String,
    /// The complete processor configuration simulated at this point.
    pub config: CpuConfig,
}

impl DesignPoint {
    /// A design point with an explicit label and configuration.
    pub fn new(label: impl Into<String>, config: CpuConfig) -> Self {
        DesignPoint {
            label: label.into(),
            config,
        }
    }

    /// The Table-3 baseline configuration under `defense`, labelled with the
    /// defense's paper name.
    pub fn from_defense(defense: DefenseMode) -> Self {
        let config = CpuConfig::golden_cove_like().with_defense(defense);
        DesignPoint {
            label: defense.label().to_string(),
            config,
        }
    }

    /// A design point for `config`, labelled by how it differs from the
    /// baseline (see [`CpuConfig::design_label`]).
    pub fn from_config(config: CpuConfig) -> Self {
        DesignPoint {
            label: config.design_label(),
            config,
        }
    }
}

/// Analysis-cache counters of one [`AnalysisStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Analyses served from the memoization cache.
    pub hits: u64,
    /// Analyses that ran Algorithm 2 (one per distinct program).
    pub misses: u64,
}

impl CacheStats {
    /// Total analysis requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Wall-clock timing of one evaluation record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalTiming {
    /// Time spent generating this workload's analysis (the first time; 0 is
    /// possible for sub-microsecond analyses, see `analysis_cached`).
    pub analysis: Duration,
    /// True if the analysis was served from the session cache.
    pub analysis_cached: bool,
    /// Time spent in the cycle-level simulation of this design point.
    pub simulate: Duration,
}

/// One row of the uniform evaluation stream: a workload simulated at one
/// design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Workload name.
    pub workload: String,
    /// Workload library group.
    pub group: WorkloadGroup,
    /// Design-point label.
    pub design: String,
    /// The defense simulated at this point.
    pub defense: DefenseMode,
    /// Simulation statistics (cycles, IPC inputs, BPU/BTU/cache counters).
    pub stats: SimStats,
    /// Wall-clock timing breakdown.
    pub timing: EvalTiming,
    /// Per-context BTU statistics, one entry per application context the BTU
    /// saw. Empty (and omitted from serialized records) for single-context
    /// runs, so existing record streams are byte-identical.
    #[serde(skip_if_default)]
    pub btu_contexts: Vec<ContextBtuStats>,
}

// --------------------------------------------------------------- cancel

/// A cooperative cancellation handle.
///
/// Cloning shares the flag: hand one clone to a sweep and keep the other to
/// cancel it from another thread. Sweeps check the token **between
/// design-point cells** (and between per-workload analyses), so
/// cancellation latency is bounded by one simulation, never observed
/// mid-cell.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every sweep holding a clone stops at its next
    /// between-cells check.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// How a cancellable sweep ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOutcome {
    /// Every cell of the matrix was evaluated and emitted.
    Complete,
    /// The sweep stopped early: its [`CancelToken`] was raised (or the emit
    /// callback declined a record). Already-completed analyses stay in the
    /// store; unemitted records are dropped.
    Cancelled,
}

// ------------------------------------------------------- analysis store

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct StoreEntry {
    bundle: Arc<AnalysisBundle>,
    elapsed: Duration,
}

/// Rendezvous point for threads requesting a fingerprint that is being
/// analyzed right now.
#[derive(Default)]
struct InFlight {
    done: Mutex<bool>,
    ready: Condvar,
}

/// Releases an in-flight guard on every exit path (success, error, panic):
/// removes the fingerprint from the in-flight map and wakes the waiters.
struct AnalyzerGuard<'a> {
    shard: &'a StoreShard,
    key: u64,
    flight: Arc<InFlight>,
}

impl Drop for AnalyzerGuard<'_> {
    fn drop(&mut self) {
        lock(&self.shard.in_flight).remove(&self.key);
        *lock(&self.flight.done) = true;
        self.flight.ready.notify_all();
    }
}

/// One fingerprint-range shard of an [`AnalysisStore`]: its slice of the
/// entry map plus the in-flight guards for fingerprints in its range. Each
/// shard locks independently, so concurrent sweeps over different programs
/// contend only when their fingerprints land in the same range.
#[derive(Default)]
struct StoreShard {
    entries: RwLock<HashMap<u64, StoreEntry>>,
    in_flight: Mutex<HashMap<u64, Arc<InFlight>>>,
}

impl StoreShard {
    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, HashMap<u64, StoreEntry>> {
        self.entries.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<u64, StoreEntry>> {
        self.entries.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Callback invoked (outside all store locks) each time a *fresh* analysis
/// lands in the store — the hook the evaluation server's journal mode uses
/// to persist entries incrementally. Cache hits and absorbed snapshots do
/// not fire it.
pub type InsertObserver = Arc<dyn Fn(&SnapshotEntry) + Send + Sync>;

/// The thread-safe analysis cache: fingerprint-keyed `Arc<AnalysisBundle>`s
/// sharded by fingerprint range, exactly-once analysis under concurrency
/// via per-fingerprint in-flight guards, and atomic [`CacheStats`].
///
/// A store is the shared half of an evaluation session: any number of
/// [`SweepExecutor`]s (or [`Evaluator`] facades built with
/// [`EvaluatorBuilder::store`]) can consume one store concurrently — this
/// is what lets the evaluation server run N requests in flight against one
/// cache. The entry map is split into [`shard_count`](Self::shard_count)
/// shards, each owning a contiguous range of the `u64` fingerprint space
/// behind its own `RwLock` (default one shard per hardware thread), so
/// concurrent sweeps over distinct workloads take distinct locks. Lookups
/// take one shard's read lock only; Algorithm 2 itself runs with **no**
/// store lock held, so a slow analysis never blocks hits on other
/// programs.
pub struct AnalysisStore {
    shards: Box<[StoreShard]>,
    hits: AtomicU64,
    misses: AtomicU64,
    lints: RwLock<HashMap<u64, Arc<StaticReport>>>,
    observer: RwLock<Option<InsertObserver>>,
}

impl Default for AnalysisStore {
    fn default() -> Self {
        Self::with_shards(default_shard_count())
    }
}

/// Default shard count: one per hardware thread (`available_parallelism`),
/// the maximum number of sweeps that can contend at once.
fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

enum Role<'a> {
    Analyzer(AnalyzerGuard<'a>),
    Waiter(Arc<InFlight>),
}

impl AnalysisStore {
    /// An empty store with the default shard count (one per hardware
    /// thread).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store split into `shards` fingerprint-range shards
    /// (clamped to at least one). Shard `i` owns the `i`-th contiguous
    /// slice of the `u64` fingerprint space.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        AnalysisStore {
            shards: (0..shards).map(|_| StoreShard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lints: RwLock::new(HashMap::new()),
            observer: RwLock::new(None),
        }
    }

    /// How many fingerprint-range shards this store is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `fingerprint`: a range partition of the `u64`
    /// space, so shard `i` of `n` owns `[i·2⁶⁴/n, (i+1)·2⁶⁴/n)`.
    pub fn shard_of(&self, fingerprint: u64) -> usize {
        let n = self.shards.len() as u128;
        ((u128::from(fingerprint) * n) >> 64) as usize
    }

    /// Installs (or clears, with `None`) the fresh-analysis observer. The
    /// callback runs on the analyzing thread after the entry is published,
    /// outside all store locks; the server's `--cache-file` journal mode
    /// uses it to append each completed analysis to disk.
    pub fn set_insert_observer(&self, observer: Option<InsertObserver>) {
        *self
            .observer
            .write()
            .unwrap_or_else(PoisonError::into_inner) = observer;
    }

    /// Cache counters (hits/misses) accumulated so far. Entries loaded from
    /// an [`AnalysisSnapshot`] count as neither until first use, then as
    /// hits.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct programs currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read_entries().len()).sum()
    }

    /// True if no program has been analyzed or absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: u64) -> &StoreShard {
        &self.shards[self.shard_of(key)]
    }

    fn lookup(&self, key: u64) -> Option<(Arc<AnalysisBundle>, Duration)> {
        self.shard(key)
            .read_entries()
            .get(&key)
            .map(|e| (Arc::clone(&e.bundle), e.elapsed))
    }

    fn notify_observer(&self, entry: &SnapshotEntry) {
        let observer = self
            .observer
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(observer) = observer {
            observer(entry);
        }
    }

    /// The memoized analysis of `program`, with its timing and cache
    /// disposition. Exactly one thread runs Algorithm 2 per fingerprint:
    /// concurrent requests for an in-flight program block until the result
    /// lands and then count as hits.
    ///
    /// Cache hits deliberately ignore `step_limit`: a stored bundle is
    /// **budget-independent** — Algorithm 2 *errors* (`StepLimitExceeded`)
    /// rather than truncating when a profiling run exhausts its budget, so
    /// every bundle that exists came from a run that halted on its own and
    /// any sufficient budget produces the identical bundle. The budget
    /// only gates whether a *cold* analysis completes.
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2. On error the
    /// in-flight guard is released, so a later request retries the
    /// analysis.
    pub fn entry(
        &self,
        program: &Program,
        step_limit: u64,
    ) -> Result<(Arc<AnalysisBundle>, EvalTiming), IsaError> {
        let key = program_fingerprint(program);
        loop {
            if let Some((bundle, elapsed)) = self.lookup(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((
                    bundle,
                    EvalTiming {
                        analysis: elapsed,
                        analysis_cached: true,
                        simulate: Duration::ZERO,
                    },
                ));
            }
            let shard = self.shard(key);
            let role = {
                let mut in_flight = lock(&shard.in_flight);
                // Close the race where the analyzer finished (and dropped
                // its guard) between our lookup above and this lock.
                if shard.read_entries().contains_key(&key) {
                    continue;
                }
                match in_flight.entry(key) {
                    Entry::Occupied(e) => Role::Waiter(Arc::clone(e.get())),
                    Entry::Vacant(v) => {
                        let flight = Arc::new(InFlight::default());
                        v.insert(Arc::clone(&flight));
                        Role::Analyzer(AnalyzerGuard { shard, key, flight })
                    }
                }
            };
            match role {
                Role::Waiter(flight) => {
                    let mut done = lock(&flight.done);
                    while !*done {
                        done = flight
                            .ready
                            .wait(done)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    // Loop back to the fast path; if the analyzer failed,
                    // this thread contends to become the next analyzer.
                }
                Role::Analyzer(guard) => {
                    let start = Instant::now();
                    let analysis = Arc::new(Evaluator::analyze_once(program, step_limit)?);
                    let elapsed = start.elapsed();
                    shard.write_entries().insert(
                        key,
                        StoreEntry {
                            bundle: Arc::clone(&analysis),
                            elapsed,
                        },
                    );
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    drop(guard);
                    self.notify_observer(&SnapshotEntry {
                        fingerprint: key,
                        elapsed,
                        analysis: (*analysis).clone(),
                    });
                    return Ok((
                        analysis,
                        EvalTiming {
                            analysis: elapsed,
                            analysis_cached: false,
                            simulate: Duration::ZERO,
                        },
                    ));
                }
            }
        }
    }

    /// The memoized analysis of an arbitrary program.
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analyze_program(
        &self,
        program: &Program,
        step_limit: u64,
    ) -> Result<Arc<AnalysisBundle>, IsaError> {
        self.entry(program, step_limit).map(|(bundle, _)| bundle)
    }

    /// The memoized static constant-time report of `program` (see
    /// [`cassandra_analysis::analyze`]), keyed by the same content
    /// fingerprint as the dynamic (Algorithm 2) analyses but held in a
    /// separate map: static lint is deterministic and infallible, so it
    /// needs no in-flight guard — a rare duplicate computation under
    /// concurrency produces an identical report and one copy wins.
    ///
    /// Lint results do **not** count towards [`stats`](Self::stats): those
    /// counters meter Algorithm-2 profiling runs only, and several tests
    /// pin their exact arithmetic.
    pub fn lint(&self, program: &Program) -> Arc<StaticReport> {
        let key = program_fingerprint(program);
        if let Some(report) = self
            .lints
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(report);
        }
        let report = Arc::new(cassandra_analysis::analyze(program));
        let mut lints = self.lints.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(lints.entry(key).or_insert(report))
    }

    /// Number of distinct programs with a memoized static lint report.
    pub fn linted_programs(&self) -> usize {
        self.lints
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Serializes the store's contents for a later warm-start. Entries are
    /// ordered by fingerprint, so equal stores snapshot identically
    /// regardless of shard count. Static lint reports are not snapshotted
    /// — recomputing them is milliseconds, unlike Algorithm-2 profiling
    /// runs.
    pub fn snapshot(&self) -> AnalysisSnapshot {
        let mut out: Vec<SnapshotEntry> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let entries = shard.read_entries();
            out.extend(entries.iter().map(|(&fingerprint, e)| SnapshotEntry {
                fingerprint,
                elapsed: e.elapsed,
                analysis: (*e.bundle).clone(),
            }));
        }
        out.sort_by_key(|e| e.fingerprint);
        AnalysisSnapshot { entries: out }
    }

    /// Serializes one fingerprint-range shard (see
    /// [`shard_of`](Self::shard_of) for the range partition), ordered by
    /// fingerprint — the unit two server processes exchange over the wire
    /// to split a workload set (`shard-sync`). The union of all shard
    /// snapshots equals [`snapshot`](Self::snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn snapshot_shard(&self, shard: usize) -> AnalysisSnapshot {
        let entries = self.shards[shard].read_entries();
        let mut out: Vec<SnapshotEntry> = entries
            .iter()
            .map(|(&fingerprint, e)| SnapshotEntry {
                fingerprint,
                elapsed: e.elapsed,
                analysis: (*e.bundle).clone(),
            })
            .collect();
        out.sort_by_key(|e| e.fingerprint);
        AnalysisSnapshot { entries: out }
    }

    /// Loads a snapshot's analyses into the store, skipping fingerprints it
    /// already holds; returns how many entries were absorbed. Entries are
    /// routed to their fingerprint-range shard, so snapshots taken under
    /// any shard count absorb correctly under any other. Warmed entries
    /// count as cache hits on first use (they never re-run Algorithm 2),
    /// which is how a warm-started server's `Done.cache` reports them.
    /// Absorbed entries do not fire the insert observer — the journal only
    /// records analyses this process ran.
    pub fn absorb(&self, snapshot: AnalysisSnapshot) -> usize {
        let mut absorbed = 0;
        for entry in snapshot.entries {
            let mut entries = self.shard(entry.fingerprint).write_entries();
            if let Entry::Vacant(v) = entries.entry(entry.fingerprint) {
                v.insert(StoreEntry {
                    bundle: Arc::new(entry.analysis),
                    elapsed: entry.elapsed,
                });
                absorbed += 1;
            }
        }
        absorbed
    }
}

/// One serialized [`AnalysisStore`] entry: the program fingerprint, the
/// original analysis wall time, and the full [`AnalysisBundle`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Content fingerprint the store keys this analysis by.
    pub fingerprint: u64,
    /// Wall time of the original Algorithm-2 run (reported by cached
    /// timings).
    pub elapsed: Duration,
    /// The memoized analysis.
    pub analysis: AnalysisBundle,
}

/// The serializable contents of an [`AnalysisStore`] (see
/// [`AnalysisStore::snapshot`] / [`AnalysisStore::absorb`]); the evaluation
/// server's `--cache-file` warm-start format.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisSnapshot {
    /// Stored analyses, ordered by fingerprint.
    pub entries: Vec<SnapshotEntry>,
}

// ------------------------------------------------------- sweep executor

/// A stateless sweep engine over a borrowed [`AnalysisStore`]: evaluates
/// workload × design matrices into [`EvalRecord`]s, honoring a
/// [`CancelToken`] between design-point cells.
///
/// Executors hold no mutable state of their own, so any number can run
/// concurrently against one store — the server materializes one per
/// request. [`SweepExecutor::sweep_matrix`] collects the full record
/// vector; [`SweepExecutor::sweep_stream`] emits records in matrix order as
/// cells complete, which is what the wire protocol streams.
pub struct SweepExecutor<'a> {
    store: &'a AnalysisStore,
    step_limit: Option<u64>,
    threads: Option<usize>,
}

impl<'a> SweepExecutor<'a> {
    /// An executor over `store` with no step-budget override.
    pub fn new(store: &'a AnalysisStore) -> Self {
        SweepExecutor {
            store,
            step_limit: None,
            threads: None,
        }
    }

    /// Overrides the profiling step budget for every analysis this executor
    /// triggers (default: each workload's own `step_limit`).
    #[must_use]
    pub fn with_step_limit(mut self, step_limit: Option<u64>) -> Self {
        self.step_limit = step_limit;
        self
    }

    /// Overrides the worker-thread count of streaming sweeps (default: all
    /// available cores, capped at the job count). `Some(1)` forces the
    /// serial path; ignored when the `parallel` feature is disabled. Tests
    /// use this to pin result determinism across thread counts.
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The store this executor evaluates against.
    pub fn store(&self) -> &'a AnalysisStore {
        self.store
    }

    fn analysis_entry(
        &self,
        program: &Program,
        workload_limit: u64,
    ) -> Result<(Arc<AnalysisBundle>, EvalTiming), IsaError> {
        self.store
            .entry(program, self.step_limit.unwrap_or(workload_limit))
    }

    /// Evaluates one workload at one design point, yielding a uniform
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn eval(&self, workload: &Workload, design: &DesignPoint) -> Result<EvalRecord, IsaError> {
        let (analysis, mut timing) =
            self.analysis_entry(&workload.kernel.program, workload.kernel.step_limit)?;
        let mut cfg = design.config;
        cfg.max_instructions = cfg.max_instructions.max(workload.kernel.step_limit);
        let start = Instant::now();
        let outcome = Evaluator::simulate_program(&workload.kernel.program, Some(&analysis), &cfg)?;
        timing.simulate = start.elapsed();
        Ok(record_from(workload, design, outcome, timing))
    }

    /// Evaluates the full workload × design matrix, returning the records
    /// in matrix order (workload-major). Analyses run exactly once per
    /// distinct program; simulations run in parallel when the `parallel`
    /// feature is enabled.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn sweep_matrix(
        &self,
        workloads: &[Workload],
        designs: &[DesignPoint],
    ) -> Result<Vec<EvalRecord>, IsaError> {
        let mut records = Vec::with_capacity(workloads.len() * designs.len());
        let outcome = self.sweep_stream(workloads, designs, &CancelToken::new(), |record| {
            records.push(record);
            true
        })?;
        debug_assert_eq!(
            outcome,
            SweepOutcome::Complete,
            "nothing cancels this token"
        );
        Ok(records)
    }

    /// Evaluates the matrix like [`SweepExecutor::sweep_matrix`], but emits
    /// each record through `emit` — in matrix order, as soon as its cell
    /// (and every earlier cell) has completed — instead of collecting them.
    ///
    /// Cancellation is checked between design-point cells: once `cancel` is
    /// raised (or `emit` returns `false`), workers stop picking up cells,
    /// nothing more is emitted, and the sweep returns
    /// [`SweepOutcome::Cancelled`]. Analyses completed before the
    /// cancellation stay in the store.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors (the first one, if several
    /// cells fail concurrently).
    pub fn sweep_stream<F>(
        &self,
        workloads: &[Workload],
        designs: &[DesignPoint],
        cancel: &CancelToken,
        emit: F,
    ) -> Result<SweepOutcome, IsaError>
    where
        F: FnMut(EvalRecord) -> bool + Send,
    {
        // Phase 1 (serial): analyze every workload once, through the store;
        // the in-flight guards make concurrent sweeps share, not duplicate,
        // this work.
        let mut analyses: Vec<(Arc<AnalysisBundle>, EvalTiming)> =
            Vec::with_capacity(workloads.len());
        for w in workloads {
            if cancel.is_cancelled() {
                return Ok(SweepOutcome::Cancelled);
            }
            analyses.push(self.analysis_entry(&w.kernel.program, w.kernel.step_limit)?);
        }

        // Phase 2: simulate every (workload, design) cell.
        let jobs: Vec<(usize, usize)> = (0..workloads.len())
            .flat_map(|wi| (0..designs.len()).map(move |di| (wi, di)))
            .collect();
        let run_one = |&(wi, di): &(usize, usize)| -> Result<EvalRecord, IsaError> {
            let w = &workloads[wi];
            let d = &designs[di];
            let (bundle, mut timing) = (&analyses[wi].0, analyses[wi].1);
            let mut cfg = d.config;
            cfg.max_instructions = cfg.max_instructions.max(w.kernel.step_limit);
            let start = Instant::now();
            let outcome = Evaluator::simulate_program(&w.kernel.program, Some(bundle), &cfg)?;
            timing.simulate = start.elapsed();
            Ok(record_from(w, d, outcome, timing))
        };
        stream_jobs(&jobs, run_one, cancel, emit, self.threads)
    }
}

fn record_from(
    workload: &Workload,
    design: &DesignPoint,
    outcome: SimOutcome,
    timing: EvalTiming,
) -> EvalRecord {
    EvalRecord {
        workload: workload.name.clone(),
        group: workload.group,
        design: design.label.clone(),
        defense: design.config.defense,
        stats: outcome.stats,
        timing,
        btu_contexts: outcome.btu_contexts,
    }
}

/// The single-threaded job loop: cancellation checked between cells.
fn stream_serial<J, R, F>(
    jobs: &[J],
    run_one: R,
    cancel: &CancelToken,
    mut emit: F,
) -> Result<SweepOutcome, IsaError>
where
    R: Fn(&J) -> Result<EvalRecord, IsaError>,
    F: FnMut(EvalRecord) -> bool,
{
    for job in jobs {
        if cancel.is_cancelled() {
            return Ok(SweepOutcome::Cancelled);
        }
        let record = run_one(job)?;
        if !emit(record) {
            return Ok(SweepOutcome::Cancelled);
        }
    }
    Ok(SweepOutcome::Complete)
}

/// Runs `run_one` over `jobs` on all available cores (or the explicit
/// `threads` override), emitting results in job order as the completed
/// prefix grows. Workers check `cancel` before every cell.
#[cfg(feature = "parallel")]
fn stream_jobs<J, R, F>(
    jobs: &[J],
    run_one: R,
    cancel: &CancelToken,
    emit: F,
    threads: Option<usize>,
) -> Result<SweepOutcome, IsaError>
where
    J: Sync,
    R: Fn(&J) -> Result<EvalRecord, IsaError> + Sync,
    F: FnMut(EvalRecord) -> bool + Send,
{
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(jobs.len().max(1))
        .max(1);
    if threads <= 1 {
        return stream_serial(jobs, run_one, cancel, emit);
    }
    stream_parallel(jobs, run_one, cancel, emit, threads)
}

/// The multi-worker body of [`stream_jobs`], with an explicit thread count
/// (separate so tests exercise it on any host).
#[cfg(feature = "parallel")]
fn stream_parallel<J, R, F>(
    jobs: &[J],
    run_one: R,
    cancel: &CancelToken,
    emit: F,
    threads: usize,
) -> Result<SweepOutcome, IsaError>
where
    J: Sync,
    R: Fn(&J) -> Result<EvalRecord, IsaError> + Sync,
    F: FnMut(EvalRecord) -> bool + Send,
{
    use std::sync::atomic::AtomicUsize;

    /// In-order emission state: completed cells park in `slots` until the
    /// contiguous prefix reaches them. `emitting` designates the one
    /// worker currently delivering records, so the (possibly slow — on the
    /// server it is a TCP write) emit call runs with **no** lock on this
    /// state: other workers keep depositing results and picking up cells.
    struct EmitState {
        next: usize,
        slots: Vec<Option<EvalRecord>>,
        emitting: bool,
    }

    let state = Mutex::new(EmitState {
        next: 0,
        slots: (0..jobs.len()).map(|_| None).collect(),
        emitting: false,
    });
    // Only the designated emitter touches `emit`, so this lock is never
    // contended; it exists to make the callback shareable across workers.
    let emitter = Mutex::new(emit);
    let next_job = AtomicUsize::new(0);
    let error: Mutex<Option<IsaError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancel.is_cancelled() {
                    return;
                }
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                match run_one(&jobs[i]) {
                    Ok(record) => {
                        lock(&state).slots[i] = Some(record);
                        // Emit the contiguous completed prefix, in order,
                        // unless another worker is already on it (it will
                        // re-check for our deposit after each emit).
                        loop {
                            let record = {
                                let mut st = lock(&state);
                                if st.emitting || cancel.is_cancelled() || st.next >= st.slots.len()
                                {
                                    break;
                                }
                                let slot = st.next;
                                let Some(record) = st.slots[slot].take() else {
                                    break;
                                };
                                st.next += 1;
                                st.emitting = true;
                                record
                            };
                            let keep = {
                                let mut emit = lock(&emitter);
                                (*emit)(record)
                            };
                            lock(&state).emitting = false;
                            if !keep {
                                cancel.cancel();
                                break;
                            }
                        }
                    }
                    Err(e) => {
                        lock(&error).get_or_insert(e);
                        cancel.cancel();
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    if cancel.is_cancelled() {
        return Ok(SweepOutcome::Cancelled);
    }
    Ok(SweepOutcome::Complete)
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
fn stream_jobs<J, R, F>(
    jobs: &[J],
    run_one: R,
    cancel: &CancelToken,
    emit: F,
    _threads: Option<usize>,
) -> Result<SweepOutcome, IsaError>
where
    R: Fn(&J) -> Result<EvalRecord, IsaError>,
    F: FnMut(EvalRecord) -> bool,
{
    stream_serial(jobs, run_one, cancel, emit)
}

// ------------------------------------------------------------ evaluator

/// Builder for an [`Evaluator`] session.
#[derive(Default)]
pub struct EvaluatorBuilder {
    workloads: Vec<Workload>,
    designs: Vec<DesignPoint>,
    step_limit: Option<u64>,
    store: Option<Arc<AnalysisStore>>,
}

impl EvaluatorBuilder {
    /// Adds one workload to the session's workload set.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds workloads to the session's workload set.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one design point to the design matrix.
    #[must_use]
    pub fn design(mut self, design: DesignPoint) -> Self {
        self.designs.push(design);
        self
    }

    /// Adds design points to the design matrix.
    #[must_use]
    pub fn designs(mut self, designs: impl IntoIterator<Item = DesignPoint>) -> Self {
        self.designs.extend(designs);
        self
    }

    /// Adds one baseline-configured design point per defense.
    #[must_use]
    pub fn defense_matrix(mut self, defenses: impl IntoIterator<Item = DefenseMode>) -> Self {
        self.designs
            .extend(defenses.into_iter().map(DesignPoint::from_defense));
        self
    }

    /// Adds every design point registered in a policy registry (see
    /// [`crate::policies::PolicyRegistry`]); the usual way to sweep "every
    /// modelled defense scenario" without hand-listing variants.
    #[must_use]
    pub fn policies(mut self, registry: &crate::policies::PolicyRegistry) -> Self {
        self.designs.extend(registry.designs().iter().cloned());
        self
    }

    /// Overrides the profiling step budget for every analysis (default: the
    /// workload's own `step_limit`).
    #[must_use]
    pub fn step_limit(mut self, step_limit: u64) -> Self {
        self.step_limit = Some(step_limit);
        self
    }

    /// Shares an existing analysis store instead of creating a private one;
    /// sessions built over the same store share every memoized analysis
    /// (and its cache counters).
    #[must_use]
    pub fn store(mut self, store: Arc<AnalysisStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Evaluator {
        Evaluator {
            workloads: Arc::from(self.workloads),
            designs: Arc::from(self.designs),
            step_limit: self.step_limit,
            store: self.store.unwrap_or_default(),
        }
    }
}

/// A reusable evaluation session: a facade over one [`AnalysisStore`] plus
/// per-call [`SweepExecutor`]s. See the [module documentation](self).
///
/// ```
/// use cassandra_core::eval::Evaluator;
/// use cassandra_cpu::config::DefenseMode;
/// use cassandra_kernels::suite;
///
/// let mut session = Evaluator::builder()
///     .workload(suite::des_workload(4))
///     .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
///     .build();
///
/// let records = session.sweep()?;
/// assert_eq!(records.len(), 2);
///
/// // Sweeping again reuses the memoized analysis: one miss, ever.
/// session.sweep()?;
/// assert_eq!(session.cache_stats().misses, 1);
/// assert!(session.cache_stats().hits >= 1);
/// # Ok::<(), cassandra_isa::error::IsaError>(())
/// ```
pub struct Evaluator {
    workloads: Arc<[Workload]>,
    designs: Arc<[DesignPoint]>,
    step_limit: Option<u64>,
    store: Arc<AnalysisStore>,
}

impl Default for Evaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl Evaluator {
    /// An empty session (no preconfigured workloads or designs); useful for
    /// one-shot evaluation and as the delegate of the deprecated-path free
    /// functions in the crate root.
    pub fn new() -> Self {
        EvaluatorBuilder::default().build()
    }

    /// Starts building a session.
    pub fn builder() -> EvaluatorBuilder {
        EvaluatorBuilder::default()
    }

    /// The session's workload set.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The session's workload set as a cheaply clonable handle (used by the
    /// registry experiments, which need the list while mutably borrowing the
    /// session).
    pub fn shared_workloads(&self) -> Arc<[Workload]> {
        Arc::clone(&self.workloads)
    }

    /// The session's design matrix.
    pub fn designs(&self) -> &[DesignPoint] {
        &self.designs
    }

    /// The session's analysis store as a cheaply clonable handle; build
    /// another session over it ([`EvaluatorBuilder::store`]) or hand it to
    /// [`SweepExecutor`]s to share the memoized analyses.
    pub fn shared_store(&self) -> Arc<AnalysisStore> {
        Arc::clone(&self.store)
    }

    /// A sweep executor over this session's store, carrying its step-budget
    /// override.
    pub fn executor(&self) -> SweepExecutor<'_> {
        SweepExecutor::new(&self.store).with_step_limit(self.step_limit)
    }

    /// Analysis-cache counters (hits/misses) accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Number of distinct programs analyzed so far.
    pub fn analyzed_programs(&self) -> usize {
        self.store.len()
    }

    // ------------------------------------------------------------ analysis

    /// Runs Algorithm 2 once, without touching any session cache — the
    /// one-shot primitive behind [`crate::analyze_program`].
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analyze_once(program: &Program, step_limit: u64) -> Result<AnalysisBundle, IsaError> {
        let bundle = generate_traces(program, None, step_limit)?;
        let encoded = EncodedTraces::from_bundle(program, &bundle);
        Ok(AnalysisBundle { bundle, encoded })
    }

    /// The memoized analysis of an arbitrary program.
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analyze_program(
        &mut self,
        program: &Program,
        step_limit: u64,
    ) -> Result<Arc<AnalysisBundle>, IsaError> {
        self.store
            .analyze_program(program, self.step_limit.unwrap_or(step_limit))
    }

    /// The memoized analysis of a workload's kernel.
    ///
    /// # Errors
    ///
    /// Propagates profiling-run errors from Algorithm 2.
    pub fn analysis(&mut self, workload: &Workload) -> Result<Arc<AnalysisBundle>, IsaError> {
        self.analyze_program(&workload.kernel.program, workload.kernel.step_limit)
    }

    /// The memoized static constant-time & speculative-leakage report of an
    /// arbitrary program, served from the shared [`AnalysisStore`]. Unlike
    /// [`analyze_program`](Self::analyze_program), this never executes the
    /// program — it is a pure static pass over the instruction list.
    pub fn lint_program(&self, program: &Program) -> Arc<StaticReport> {
        self.store.lint(program)
    }

    /// The memoized static lint report of a workload's kernel.
    pub fn lint_workload(&self, workload: &Workload) -> Arc<StaticReport> {
        self.lint_program(&workload.kernel.program)
    }

    // ---------------------------------------------------------- simulation

    /// Simulates `program` under `config` with a caller-provided analysis;
    /// the primitive behind both the session methods and the deprecated-path
    /// free functions ([`crate::simulate_program`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn simulate_program(
        program: &Program,
        analysis: Option<&AnalysisBundle>,
        config: &CpuConfig,
    ) -> Result<SimOutcome, IsaError> {
        let btu = if config.resolved_policy().frontend.uses_btu() {
            analysis.map(|a| a.make_btu(config))
        } else {
            None
        };
        simulate(program, *config, btu)
    }

    /// Simulates a workload under `config`, analyzing it first if this
    /// session has not seen its program yet.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn simulate_cached(
        &mut self,
        workload: &Workload,
        config: &CpuConfig,
    ) -> Result<SimOutcome, IsaError> {
        let analysis = self.analysis(workload)?;
        let mut cfg = *config;
        cfg.max_instructions = cfg.max_instructions.max(workload.kernel.step_limit);
        Self::simulate_program(&workload.kernel.program, Some(&analysis), &cfg)
    }

    /// Evaluates one workload at one design point, yielding a uniform
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn eval(
        &mut self,
        workload: &Workload,
        design: &DesignPoint,
    ) -> Result<EvalRecord, IsaError> {
        self.executor().eval(workload, design)
    }

    // --------------------------------------------------------------- sweep

    /// Evaluates the full workload × design matrix configured on this
    /// session, in matrix order (workload-major). Analyses run exactly once
    /// per distinct program; simulations run in parallel when the
    /// `parallel` feature is enabled.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn sweep(&mut self) -> Result<Vec<EvalRecord>, IsaError> {
        let workloads = Arc::clone(&self.workloads);
        let designs = Arc::clone(&self.designs);
        self.sweep_matrix(&workloads, &designs)
    }

    /// Evaluates an explicit workload × design matrix against this
    /// session's store.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn sweep_matrix(
        &mut self,
        workloads: &[Workload],
        designs: &[DesignPoint],
    ) -> Result<Vec<EvalRecord>, IsaError> {
        self.executor().sweep_matrix(workloads, designs)
    }
}

/// The default profiling step budget, re-exported for builder users.
pub const DEFAULT_STEP_LIMIT: u64 = ANALYSIS_STEP_LIMIT;

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_kernels::suite;

    #[test]
    fn analysis_is_memoized_per_program() {
        let mut ev = Evaluator::new();
        let w = suite::chacha20_workload(64);
        let a1 = ev.analysis(&w).unwrap();
        let a2 = ev.analysis(&w).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(ev.cache_stats().misses, 1);
        assert_eq!(ev.cache_stats().hits, 1);
        // A different program misses.
        ev.analysis(&suite::des_workload(4)).unwrap();
        assert_eq!(ev.cache_stats().misses, 2);
        assert_eq!(ev.analyzed_programs(), 2);
    }

    #[test]
    fn sweep_covers_the_design_matrix_in_order() {
        let mut ev = Evaluator::builder()
            .workloads([suite::chacha20_workload(64), suite::des_workload(4)])
            .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
            .build();
        let records = ev.sweep().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].workload, "ChaCha20_ct");
        assert_eq!(records[0].design, "UnsafeBaseline");
        assert_eq!(records[1].design, "Cassandra");
        assert_eq!(records[2].workload, "DES_ct");
        assert_eq!(ev.cache_stats().misses, 2, "one analysis per workload");
        for r in &records {
            assert!(r.stats.cycles > 0);
            if r.defense == DefenseMode::Cassandra {
                assert_eq!(r.stats.mispredictions, 0);
            }
        }
    }

    #[test]
    fn repeated_sweeps_reuse_the_cache() {
        let mut ev = Evaluator::builder()
            .workload(suite::sha256_workload(96))
            .defense_matrix([DefenseMode::UnsafeBaseline])
            .build();
        let first = ev.sweep().unwrap();
        let second = ev.sweep().unwrap();
        assert_eq!(ev.cache_stats().misses, 1);
        assert_eq!(
            first[0].stats, second[0].stats,
            "simulation is deterministic"
        );
        assert!(second[0].timing.analysis_cached);
        assert!(!first[0].timing.analysis_cached);
    }

    #[test]
    fn eval_matches_free_function_pipeline() {
        let w = suite::poly1305_workload(32);
        let design = DesignPoint::from_defense(DefenseMode::Cassandra);
        let mut ev = Evaluator::new();
        let record = ev.eval(&w, &design).unwrap();

        let analysis = crate::analyze_workload(&w).unwrap();
        let outcome = crate::simulate_workload(&w, &analysis, &design.config).unwrap();
        assert_eq!(record.stats, outcome.stats);
    }

    #[test]
    fn design_point_labels() {
        let p = DesignPoint::from_defense(DefenseMode::CassandraStl);
        assert_eq!(p.label, "Cassandra+STL");
        let cfg = CpuConfig::golden_cove_like()
            .with_defense(DefenseMode::Cassandra)
            .with_btu_flush_interval(5000);
        let p = DesignPoint::from_config(cfg);
        assert_eq!(p.label, "Cassandra+flush5000");
    }

    #[test]
    fn sessions_share_one_store() {
        let store = Arc::new(AnalysisStore::new());
        let w = suite::des_workload(4);
        let mut first = Evaluator::builder()
            .store(Arc::clone(&store))
            .workload(w.clone())
            .defense_matrix([DefenseMode::Cassandra])
            .build();
        first.sweep().unwrap();
        assert_eq!(store.stats().misses, 1);

        // A second session over the same store reuses the analysis.
        let mut second = Evaluator::builder()
            .store(Arc::clone(&store))
            .workload(w)
            .defense_matrix([DefenseMode::UnsafeBaseline])
            .build();
        let records = second.sweep().unwrap();
        assert_eq!(store.stats().misses, 1, "no re-analysis across sessions");
        assert!(records[0].timing.analysis_cached);
        assert_eq!(second.cache_stats(), store.stats());
    }

    #[test]
    fn concurrent_requests_analyze_exactly_once() {
        let store = AnalysisStore::new();
        let w = suite::chacha20_workload(64);
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    store.entry(&w.kernel.program, w.kernel.step_limit).unwrap();
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.misses, 1, "in-flight guard deduplicates analysis");
        assert_eq!(stats.hits, threads - 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn cancelled_sweep_stops_early_and_keeps_analyses() {
        let store = AnalysisStore::new();
        let executor = SweepExecutor::new(&store);
        let workloads = [suite::chacha20_workload(64)];
        let designs: Vec<DesignPoint> = DefenseMode::ALL
            .into_iter()
            .map(DesignPoint::from_defense)
            .collect();

        // Cancel from inside the emit callback after the first record.
        let cancel = CancelToken::new();
        let mut emitted = 0usize;
        let outcome = executor
            .sweep_stream(&workloads, &designs, &cancel, |_| {
                emitted += 1;
                cancel.cancel();
                true
            })
            .unwrap();
        assert_eq!(outcome, SweepOutcome::Cancelled);
        assert!(
            emitted < designs.len(),
            "cancellation must stop the stream early ({emitted} records)"
        );

        // The workload's analysis survived: a full re-sweep is pure hits.
        let misses = store.stats().misses;
        assert_eq!(misses, 1);
        let records = executor.sweep_matrix(&workloads, &designs).unwrap();
        assert_eq!(records.len(), designs.len());
        assert_eq!(store.stats().misses, misses, "repeat sweep re-analyzed");
        assert!(records.iter().all(|r| r.timing.analysis_cached));
    }

    #[test]
    fn pre_cancelled_sweep_emits_nothing() {
        let store = AnalysisStore::new();
        let executor = SweepExecutor::new(&store);
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcome = executor
            .sweep_stream(
                &[suite::des_workload(4)],
                &[DesignPoint::from_defense(DefenseMode::Cassandra)],
                &cancel,
                |_| panic!("nothing may be emitted after cancellation"),
            )
            .unwrap();
        assert_eq!(outcome, SweepOutcome::Cancelled);
        assert_eq!(store.stats().requests(), 0);
    }

    #[test]
    fn sweep_stream_emits_in_matrix_order() {
        let store = AnalysisStore::new();
        let executor = SweepExecutor::new(&store);
        let workloads = [suite::chacha20_workload(64), suite::des_workload(4)];
        let designs: Vec<DesignPoint> = [
            DefenseMode::UnsafeBaseline,
            DefenseMode::Cassandra,
            DefenseMode::Fence,
        ]
        .into_iter()
        .map(DesignPoint::from_defense)
        .collect();
        let mut streamed = Vec::new();
        let outcome = executor
            .sweep_stream(&workloads, &designs, &CancelToken::new(), |r| {
                streamed.push(r);
                true
            })
            .unwrap();
        assert_eq!(outcome, SweepOutcome::Complete);
        let collected = executor.sweep_matrix(&workloads, &designs).unwrap();
        assert_eq!(streamed.len(), collected.len());
        for (s, c) in streamed.iter().zip(&collected) {
            assert_eq!((&s.workload, &s.design), (&c.workload, &c.design));
            assert_eq!(s.stats, c.stats);
        }
    }

    /// A synthetic record for driving the emitter machinery without real
    /// simulations.
    #[cfg(feature = "parallel")]
    fn dummy_record(i: usize) -> EvalRecord {
        EvalRecord {
            workload: i.to_string(),
            group: WorkloadGroup::Synthetic,
            design: "dummy".to_string(),
            defense: DefenseMode::UnsafeBaseline,
            stats: SimStats::default(),
            timing: EvalTiming::default(),
            btu_contexts: Vec::new(),
        }
    }

    /// The parallel emitter must deliver records in job order even when
    /// cells complete out of order, on any host (thread count forced).
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_emitter_preserves_job_order() {
        let jobs: Vec<usize> = (0..64).collect();
        let run_one = |&i: &usize| {
            // Earlier jobs finish later, forcing out-of-order completion
            // and slot parking.
            std::thread::sleep(Duration::from_micros(((64 - i) % 7) as u64 * 100));
            Ok(dummy_record(i))
        };
        let mut seen = Vec::new();
        let outcome = stream_parallel(
            &jobs,
            run_one,
            &CancelToken::new(),
            |r| {
                seen.push(r.workload.clone());
                true
            },
            4,
        )
        .unwrap();
        assert_eq!(outcome, SweepOutcome::Complete);
        let expected: Vec<String> = (0..64).map(|i| i.to_string()).collect();
        assert_eq!(seen, expected, "records must stream in matrix order");
    }

    /// Declining a record from the emit callback cancels the sweep: nothing
    /// further is emitted and workers stop picking up cells.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_emitter_stops_when_emit_declines() {
        let jobs: Vec<usize> = (0..64).collect();
        let run_one = |&i: &usize| Ok(dummy_record(i));
        let cancel = CancelToken::new();
        let mut emitted = 0usize;
        let outcome = stream_parallel(
            &jobs,
            run_one,
            &cancel,
            |_| {
                emitted += 1;
                emitted < 5
            },
            4,
        )
        .unwrap();
        assert_eq!(outcome, SweepOutcome::Cancelled);
        assert_eq!(emitted, 5, "nothing streams after the declined record");
        assert!(cancel.is_cancelled());
    }

    /// A failing cell aborts the sweep with its error, even with other
    /// cells in flight.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_emitter_propagates_cell_errors() {
        let jobs: Vec<usize> = (0..32).collect();
        let run_one = |&i: &usize| {
            if i == 10 {
                Err(IsaError::StepLimitExceeded { limit: 10 })
            } else {
                Ok(dummy_record(i))
            }
        };
        let err = stream_parallel(&jobs, run_one, &CancelToken::new(), |_| true, 4).unwrap_err();
        assert!(matches!(err, IsaError::StepLimitExceeded { limit: 10 }));
    }

    #[test]
    fn analyses_are_budget_independent() {
        // The property cache hits rely on: Algorithm 2 errors rather than
        // truncating when the budget runs out, so any sufficient budget
        // produces the identical bundle…
        let w = suite::des_workload(4);
        let exact = Evaluator::analyze_once(&w.kernel.program, w.kernel.step_limit).unwrap();
        let generous =
            Evaluator::analyze_once(&w.kernel.program, w.kernel.step_limit * 16).unwrap();
        assert_eq!(exact.encoded, generous.encoded);
        assert_eq!(exact.bundle.branches, generous.bundle.branches);
        // …and an insufficient budget is a hard error, never a bundle.
        let err = Evaluator::analyze_once(&w.kernel.program, 1_000).unwrap_err();
        assert!(matches!(
            err,
            cassandra_isa::error::IsaError::StepLimitExceeded { .. }
        ));
    }

    #[test]
    fn snapshot_round_trips_and_warm_starts() {
        let store = AnalysisStore::new();
        let w = suite::des_workload(4);
        store.entry(&w.kernel.program, w.kernel.step_limit).unwrap();
        let snapshot = store.snapshot();
        assert_eq!(snapshot.entries.len(), 1);

        // The snapshot survives the wire format.
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: AnalysisSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);

        // A fresh store absorbs it and serves the entry as a hit.
        let warmed = AnalysisStore::new();
        assert_eq!(warmed.absorb(back.clone()), 1);
        assert_eq!(warmed.absorb(back), 0, "duplicate entries are skipped");
        let (_, timing) = warmed
            .entry(&w.kernel.program, w.kernel.step_limit)
            .unwrap();
        assert!(timing.analysis_cached);
        assert_eq!(warmed.stats(), CacheStats { hits: 1, misses: 0 });
    }

    #[test]
    fn shard_partition_covers_the_fingerprint_space() {
        let store = AnalysisStore::with_shards(5);
        assert_eq!(store.shard_count(), 5);
        assert_eq!(store.shard_of(0), 0);
        assert_eq!(store.shard_of(u64::MAX), 4);
        // The partition is monotone in the fingerprint and every range
        // boundary i·2⁶⁴/5 starts shard i.
        let mut prev = 0;
        for i in 0..=1000u64 {
            let fp = (u128::from(i) * (u128::from(u64::MAX) + 1) / 1000).min(u128::from(u64::MAX));
            let shard = store.shard_of(fp as u64);
            assert!(shard < 5);
            assert!(shard >= prev, "shard_of must be monotone in fingerprint");
            prev = shard;
        }
        for i in 0..5u128 {
            let start = (i << 64).div_ceil(5);
            assert_eq!(store.shard_of(start as u64), i as usize);
            if i > 0 {
                assert_eq!(store.shard_of((start - 1) as u64), (i - 1) as usize);
            }
        }
        // Degenerate shard counts clamp to one shard.
        assert_eq!(AnalysisStore::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn shard_snapshots_union_to_the_full_snapshot() {
        let store = AnalysisStore::with_shards(4);
        for w in [
            suite::chacha20_workload(64),
            suite::sha256_workload(96),
            suite::des_workload(4),
        ] {
            store.entry(&w.kernel.program, w.kernel.step_limit).unwrap();
        }
        assert_eq!(store.len(), 3);
        let full = store.snapshot();
        let mut union: Vec<SnapshotEntry> = (0..store.shard_count())
            .flat_map(|i| store.snapshot_shard(i).entries)
            .collect();
        union.sort_by_key(|e| e.fingerprint);
        assert_eq!(union, full.entries);
        // Every entry of shard i actually falls in shard i's range.
        for i in 0..store.shard_count() {
            for e in &store.snapshot_shard(i).entries {
                assert_eq!(store.shard_of(e.fingerprint), i);
            }
        }
        // Snapshots absorb correctly across differing shard counts.
        let other = AnalysisStore::with_shards(1);
        let absorbed: usize = (0..store.shard_count())
            .map(|i| other.absorb(store.snapshot_shard(i)))
            .sum();
        assert_eq!(absorbed, 3);
        assert_eq!(other.snapshot(), full);
    }

    #[test]
    fn insert_observer_fires_once_per_fresh_analysis() {
        let store = AnalysisStore::with_shards(4);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        store.set_insert_observer(Some(Arc::new(move |e: &SnapshotEntry| {
            lock(&sink).push(e.fingerprint);
        })));

        // Eight concurrent requests, one fresh analysis, one event.
        let w = suite::des_workload(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    store.entry(&w.kernel.program, w.kernel.step_limit).unwrap();
                });
            }
        });
        assert_eq!(lock(&seen).len(), 1);
        assert_eq!(lock(&seen)[0], program_fingerprint(&w.kernel.program));

        // Cache hits and absorbed snapshots stay silent.
        store.entry(&w.kernel.program, w.kernel.step_limit).unwrap();
        let other = suite::chacha20_workload(64);
        let mut donor_snapshot = {
            let donor = AnalysisStore::new();
            donor
                .entry(&other.kernel.program, other.kernel.step_limit)
                .unwrap();
            donor.snapshot()
        };
        assert_eq!(store.absorb(donor_snapshot.clone()), 1);
        assert_eq!(lock(&seen).len(), 1, "hits/absorbs must not fire");

        // Clearing the observer silences fresh analyses too.
        store.set_insert_observer(None);
        donor_snapshot.entries.clear();
        let third = suite::sha256_workload(96);
        store
            .entry(&third.kernel.program, third.kernel.step_limit)
            .unwrap();
        assert_eq!(lock(&seen).len(), 1);
    }
}
