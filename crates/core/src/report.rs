//! Plain-text renderers producing the same rows and series the paper reports.

use crate::experiments::{
    Fig7Result, Fig8Point, Fig9Result, Q3Row, Q4Result, Table1Result, TraceGenRow,
};
use cassandra_cpu::config::DefenseMode;

/// Renders Table 1 (branch analysis / compression rates).
pub fn format_table1(result: &Table1Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>6} {:>12} {:>12} {:>10} {:>10} {:>14} {:>14}\n",
        "Program", "Group", "VanillaAvg", "VanillaMax", "KmersAvg", "KmersMax", "CompRateAvg", "CompRateMax"
    ));
    for row in &result.rows {
        let r = &row.row;
        out.push_str(&format!(
            "{:<22} {:>6} {:>12.1} {:>12} {:>10.1} {:>10} {:>14.1} {:>14.1}\n",
            r.program,
            row.group.to_string(),
            r.vanilla_avg,
            r.vanilla_max,
            r.kmers_avg,
            r.kmers_max,
            r.compression_avg,
            r.compression_max
        ));
    }
    let a = &result.all;
    out.push_str(&format!(
        "{:<22} {:>6} {:>12.1} {:>12} {:>10.1} {:>10} {:>14.1} {:>14.1}\n",
        "All", "", a.vanilla_avg, a.vanilla_max, a.kmers_avg, a.kmers_max, a.compression_avg, a.compression_max
    ));
    out
}

/// Renders Figure 7 (normalised execution times and the geomean line).
pub fn format_fig7(result: &Fig7Result) -> String {
    let designs: Vec<&String> = result.geomean.keys().collect();
    let mut out = String::new();
    out.push_str(&format!("{:<22} {:>8}", "Workload", "Group"));
    for d in &designs {
        out.push_str(&format!(" {:>18}", d));
    }
    out.push('\n');
    for row in &result.rows {
        out.push_str(&format!("{:<22} {:>8}", row.workload, row.group.to_string()));
        for d in &designs {
            out.push_str(&format!(" {:>18.4}", row.normalized.get(*d).unwrap_or(&f64::NAN)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22} {:>8}", "geomean", ""));
    for d in &designs {
        out.push_str(&format!(" {:>18.4}", result.geomean[*d]));
    }
    out.push('\n');
    out.push_str(&format!(
        "\nCassandra speedup vs UnsafeBaseline: {:+.2}%\n",
        result.speedup_pct(DefenseMode::Cassandra)
    ));
    out.push_str(&format!(
        "Cassandra+STL speedup vs UnsafeBaseline: {:+.2}%\n",
        result.speedup_pct(DefenseMode::CassandraStl)
    ));
    out.push_str(&format!(
        "SPT slowdown vs UnsafeBaseline: {:+.2}%\n",
        -result.speedup_pct(DefenseMode::Spt)
    ));
    out
}

/// Renders Figure 8 (synthetic benchmark overheads).
pub fn format_fig8(points: &[Fig8Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<12} {:>14} {:>24}\n",
        "Variant", "Mix", "ProSpeCT[%]", "Cassandra+ProSpeCT[%]"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<14} {:<12} {:>14.2} {:>24.2}\n",
            p.variant, p.mix, p.prospect_overhead_pct, p.cassandra_prospect_overhead_pct
        ));
    }
    out
}

/// Renders Figure 9 (power and area breakdown).
pub fn format_fig9(result: &Fig9Result) -> String {
    let mut out = String::new();
    out.push_str("Unit breakdown (area, power) — UnsafeBaseline vs Cassandra\n");
    for unit in &result.baseline.units {
        let cass_power = result.cassandra.unit_power(&unit.name);
        out.push_str(&format!(
            "{:<24} area {:>7.1}   power {:>8.3} -> {:>8.3}\n",
            unit.name, unit.area, unit.power, cass_power
        ));
    }
    for unit in &result.cassandra.units {
        if result.baseline.unit_area(&unit.name) == 0.0 {
            out.push_str(&format!(
                "{:<24} area {:>7.1}   power {:>8} -> {:>8.3}   (Cassandra only)\n",
                unit.name, unit.area, "-", unit.power
            ));
        }
    }
    out.push_str(&format!(
        "\nTotal power change: {:+.2}%   BTU area overhead: {:+.2}%\n",
        result.power_delta_pct, result.area_overhead_pct
    ));
    out
}

/// Renders the Q3 Cassandra-lite comparison.
pub fn format_q3(rows: &[Q3Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>8} {:>14} {:>14} {:>12}\n",
        "Workload", "Group", "Cassandra", "Cassandra-lite", "Slowdown[%]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>8} {:>14} {:>14} {:>12.2}\n",
            r.workload,
            r.group.to_string(),
            r.cassandra_cycles,
            r.lite_cycles,
            r.slowdown_pct
        ));
    }
    out
}

/// Renders the Q4 BTU-flush experiment.
pub fn format_q4(result: &Q4Result) -> String {
    format!(
        "Cassandra speedup without flushes: {:+.2}%\nCassandra speedup with a BTU flush every {} instructions: {:+.2}%\n",
        result.speedup_no_flush_pct, result.flush_interval, result.speedup_with_flush_pct
    )
}

/// Renders the §7.5 trace-generation timing table.
pub fn format_trace_gen(rows: &[TraceGenRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
        "Workload", "Branches", "Detect[µs]", "Collect[µs]", "Vanilla[µs]", "Kmers[µs]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
            r.workload,
            r.branches,
            r.detect.as_micros(),
            r.collect.as_micros(),
            r.vanilla.as_micros(),
            r.kmers.as_micros()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, quick_workloads, FIG7_DESIGNS};
    use cassandra_kernels::suite;

    #[test]
    fn table1_rendering_contains_programs_and_all_row() {
        let result = experiments::table1(&quick_workloads()[..2]).unwrap();
        let text = format_table1(&result);
        assert!(text.contains("ChaCha20_ct"));
        assert!(text.contains("All"));
        assert!(text.contains("CompRateAvg"));
    }

    #[test]
    fn fig7_rendering_contains_geomean() {
        let workloads = vec![suite::des_workload(8)];
        let result = experiments::figure7(&workloads, &FIG7_DESIGNS).unwrap();
        let text = format_fig7(&result);
        assert!(text.contains("geomean"));
        assert!(text.contains("Cassandra speedup"));
    }

    #[test]
    fn q4_rendering_mentions_interval() {
        let q4 = experiments::Q4Result {
            speedup_no_flush_pct: 1.85,
            speedup_with_flush_pct: 1.80,
            flush_interval: 400_000,
        };
        assert!(format_q4(&q4).contains("400000"));
    }
}
