//! Report rendering: plain text (the same rows and series the paper
//! reports), CSV and JSON.
//!
//! The `format_*` functions render the individual result types; [`render`]
//! (and the [`render_text`] / [`render_csv`] / [`render_json`] shorthands)
//! accept any [`ExperimentOutput`] from the registry, so `run_all` output
//! can be dumped uniformly in every format.

use crate::consolidation::ConsolidationResult;
use crate::eval::EvalRecord;
use crate::experiments::{
    Fig7Result, Fig8Point, Fig9Result, Q3Row, Q4Result, Table1Result, TraceGenRow,
};
use crate::frontier::FrontierResult;
use crate::lint::LintRow;
use crate::registry::ExperimentOutput;
use crate::security::SecurityMatrix;
use cassandra_analysis::StaticVerdict;
use cassandra_cpu::config::DefenseMode;

/// Output format selector for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Fixed-width plain text, matching the paper's layout.
    Text,
    /// RFC-4180-style CSV (header row + data rows).
    Csv,
    /// Pretty-printed JSON via serde.
    Json,
}

/// Renders Table 1 (branch analysis / compression rates).
pub fn format_table1(result: &Table1Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>6} {:>12} {:>12} {:>10} {:>10} {:>14} {:>14}\n",
        "Program",
        "Group",
        "VanillaAvg",
        "VanillaMax",
        "KmersAvg",
        "KmersMax",
        "CompRateAvg",
        "CompRateMax"
    ));
    for row in &result.rows {
        let r = &row.row;
        out.push_str(&format!(
            "{:<22} {:>6} {:>12.1} {:>12} {:>10.1} {:>10} {:>14.1} {:>14.1}\n",
            r.program,
            row.group.to_string(),
            r.vanilla_avg,
            r.vanilla_max,
            r.kmers_avg,
            r.kmers_max,
            r.compression_avg,
            r.compression_max
        ));
    }
    let a = &result.all;
    out.push_str(&format!(
        "{:<22} {:>6} {:>12.1} {:>12} {:>10.1} {:>10} {:>14.1} {:>14.1}\n",
        "All",
        "",
        a.vanilla_avg,
        a.vanilla_max,
        a.kmers_avg,
        a.kmers_max,
        a.compression_avg,
        a.compression_max
    ));
    out
}

/// Renders Figure 7 (normalised execution times and the geomean line).
pub fn format_fig7(result: &Fig7Result) -> String {
    let designs: Vec<&String> = result.geomean.keys().collect();
    let mut out = String::new();
    out.push_str(&format!("{:<22} {:>8}", "Workload", "Group"));
    for d in &designs {
        out.push_str(&format!(" {:>18}", d));
    }
    out.push('\n');
    for row in &result.rows {
        out.push_str(&format!(
            "{:<22} {:>8}",
            row.workload,
            row.group.to_string()
        ));
        for d in &designs {
            out.push_str(&format!(
                " {:>18.4}",
                row.normalized.get(*d).unwrap_or(&f64::NAN)
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22} {:>8}", "geomean", ""));
    for d in &designs {
        out.push_str(&format!(" {:>18.4}", result.geomean[*d]));
    }
    out.push('\n');
    // One speedup line per swept design (negative = slowdown) — whatever
    // policies the sweep enumerated, not a hand-listed subset.
    let baseline = DefenseMode::UnsafeBaseline.label();
    out.push('\n');
    for label in result.geomean.keys() {
        if label == baseline {
            continue;
        }
        out.push_str(&format!(
            "{label} speedup vs {baseline}: {:+.2}%\n",
            result.speedup_pct_of(label)
        ));
    }
    out
}

/// Renders Figure 8 (synthetic benchmark overheads).
pub fn format_fig8(points: &[Fig8Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<12} {:>14} {:>24}\n",
        "Variant", "Mix", "ProSpeCT[%]", "Cassandra+ProSpeCT[%]"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<14} {:<12} {:>14.2} {:>24.2}\n",
            p.variant, p.mix, p.prospect_overhead_pct, p.cassandra_prospect_overhead_pct
        ));
    }
    out
}

/// Renders Figure 9 (power and area breakdown).
pub fn format_fig9(result: &Fig9Result) -> String {
    let mut out = String::new();
    out.push_str("Unit breakdown (area, power) — UnsafeBaseline vs Cassandra\n");
    for unit in &result.baseline.units {
        let cass_power = result.cassandra.unit_power(&unit.name);
        out.push_str(&format!(
            "{:<24} area {:>7.1}   power {:>8.3} -> {:>8.3}\n",
            unit.name, unit.area, unit.power, cass_power
        ));
    }
    for unit in &result.cassandra.units {
        if result.baseline.unit_area(&unit.name) == 0.0 {
            out.push_str(&format!(
                "{:<24} area {:>7.1}   power {:>8} -> {:>8.3}   (Cassandra only)\n",
                unit.name, unit.area, "-", unit.power
            ));
        }
    }
    out.push_str(&format!(
        "\nTotal power change: {:+.2}%   BTU area overhead: {:+.2}%\n",
        result.power_delta_pct, result.area_overhead_pct
    ));
    out
}

/// Renders the Q3 restricted-frontend comparison.
pub fn format_q3(rows: &[Q3Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>8} {:<18} {:>14} {:>14} {:>12}\n",
        "Workload", "Group", "Variant", "Cassandra", "Variant", "Slowdown[%]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>8} {:<18} {:>14} {:>14} {:>12.2}\n",
            r.workload,
            r.group.to_string(),
            r.design,
            r.cassandra_cycles,
            r.variant_cycles,
            r.slowdown_pct
        ));
    }
    out
}

/// Renders the Q4 context-switch experiment (flush vs partition variants).
pub fn format_q4(result: &Q4Result) -> String {
    format!(
        "Cassandra speedup without context switches: {:+.2}%\n\
         Context switch every {} instructions, priced as ...\n\
         ... a whole-BTU flush:                    {:+.2}%\n\
         ... a partition reassignment ({} ctx):     {:+.2}%\n",
        result.speedup_no_flush_pct,
        result.flush_interval,
        result.speedup_with_flush_pct,
        result.partition_contexts,
        result.speedup_with_partition_pct
    )
}

/// Renders the §7.5 trace-generation timing table.
pub fn format_trace_gen(rows: &[TraceGenRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
        "Workload", "Branches", "Detect[µs]", "Collect[µs]", "Vanilla[µs]", "Kmers[µs]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
            r.workload,
            r.branches,
            r.detect.as_micros(),
            r.collect.as_micros(),
            r.vanilla.as_micros(),
            r.kmers.as_micros()
        ));
    }
    out
}

/// Renders the Table-2 security matrix.
pub fn format_security(matrix: &SecurityMatrix) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:<18} {:>9} {:>9} {:>10} {:>10}\n",
        "Scenario", "Design", "CtEqual", "ObsEqual", "Transient", "Verdict"
    ));
    for c in &matrix.cells {
        out.push_str(&format!(
            "{:<36} {:<18} {:>9} {:>9} {:>10} {:>10}",
            c.scenario,
            c.design,
            c.verdict.contract_equal,
            c.verdict.attacker_trace_equal,
            c.verdict.transient_activity,
            if c.verdict.is_protected() {
                "protected"
            } else {
                "LEAK"
            }
        ));
        if !c.verdict.divergent_accesses.is_empty() {
            out.push_str(&format!(
                "  diverging: {}",
                hex_list(&c.verdict.divergent_accesses)
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\n{} leaking (scenario, design) pairs\n",
        matrix.leak_count()
    ));
    out
}

/// Renders the static-lint verdict table (workloads × verdicts).
pub fn format_lint(rows: &[LintRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>10} {:>15} {:>7} {:>7} {:>8} {:>6} {:>10}\n",
        "Workload", "Group", "Verdict", "Instrs", "CondBr", "Tainted", "Arch", "Transient"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>10} {:>15} {:>7} {:>7} {:>8} {:>6} {:>10}\n",
            r.workload,
            r.group.to_string(),
            r.verdict.to_string(),
            r.instructions,
            r.conditional_branches,
            r.tainted_branches,
            r.arch_findings,
            r.transient_findings
        ));
    }
    let clean = rows
        .iter()
        .filter(|r| r.verdict == StaticVerdict::CtClean)
        .count();
    out.push_str(&format!(
        "\n{clean}/{} workloads certified ct-clean (verdicts over-approximate: \
         ct-clean is a guarantee, leak verdicts may be conservative)\n",
        rows.len()
    ));
    out
}

/// Renders the consolidation experiment (per-policy, per-tenant rows).
pub fn format_consolidation(result: &ConsolidationResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Consolidation: {} tenants, quantum {} instructions\n",
        result.tenant_count, result.quantum
    ));
    for p in &result.policies {
        out.push_str(&format!(
            "\nPolicy {:<10} ({}): {} context switches, {} total cycles, \
             geomean slowdown {:.3}x\n",
            p.policy,
            p.defense.label(),
            p.context_switches,
            p.total_cycles,
            p.geomean_slowdown
        ));
        out.push_str(&format!(
            "  {:>3} {:<22} {:>10} {:>12} {:>12} {:>9} {:>11} {:>8} {:>9} {:>7}\n",
            "Ctx",
            "Workload",
            "Committed",
            "Cycles",
            "Solo",
            "Slowdown",
            "BtuLookups",
            "HitRate",
            "Evictions",
            "Steals"
        ));
        for t in &p.tenants {
            out.push_str(&format!(
                "  {:>3} {:<22} {:>10} {:>12} {:>12} {:>8.3}x {:>11} {:>8.3} {:>9} {:>7}\n",
                t.context,
                t.workload,
                t.committed_instructions,
                t.attributed_cycles,
                t.solo_cycles,
                t.slowdown,
                t.btu.lookups,
                t.btu.hit_rate(),
                t.btu.evictions,
                t.btu.steals_suffered
            ));
        }
    }
    out
}

/// Renders a raw design-point sweep.
pub fn format_records(records: &[EvalRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>10} {:<18} {:>12} {:>8} {:>10} {:>8}\n",
        "Workload", "Group", "Design", "Cycles", "IPC", "Mispred", "Cached"
    ));
    for r in records {
        out.push_str(&format!(
            "{:<22} {:>10} {:<18} {:>12} {:>8.3} {:>10} {:>8}\n",
            r.workload,
            r.group.to_string(),
            r.design,
            r.stats.cycles,
            r.stats.ipc(),
            r.stats.mispredictions,
            r.timing.analysis_cached
        ));
    }
    out
}

/// Renders a Pareto-frontier search result (rung plan, frontier, cells).
pub fn format_frontier(result: &FrontierResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Pareto frontier over {} workloads: {} grid cells, {} full-suite ({})\n",
        result.workloads.len(),
        result.cells_total,
        result.cells_simulated_full,
        if result.adaptive {
            "successive halving"
        } else {
            "exhaustive"
        }
    ));
    for (i, rung) in result.rungs.iter().enumerate() {
        out.push_str(&format!(
            "  rung {i}: {} cells on {} workloads -> kept {}\n",
            rung.cells_in, rung.workloads, rung.cells_kept
        ));
    }
    out.push_str(&format!(
        "\nFrontier ({} points, security asc then slowdown asc):\n",
        result.frontier.len()
    ));
    out.push_str(&format!(
        "{:<28} {:<18} {:>10} {:>7}\n",
        "Design", "Defense", "Slowdown", "Leaks"
    ));
    for p in &result.frontier {
        out.push_str(&format!(
            "{:<28} {:<18} {:>10.4} {:>7}\n",
            p.label,
            p.defense.label(),
            p.geomean_slowdown,
            p.security_leaks
        ));
    }
    out.push_str(&format!(
        "\nAll cells ({}):\n{:<28} {:>10} {:>7} {:>6} {:>9} {:>10} {:>11}\n",
        result.cells.len(),
        "Design",
        "Slowdown",
        "Leaks",
        "Full",
        "Frontier",
        "Dominates",
        "DominatedBy"
    ));
    for c in &result.cells {
        out.push_str(&format!(
            "{:<28} {:>10.4} {:>7} {:>6} {:>9} {:>10} {:>11}\n",
            c.label,
            c.geomean_slowdown,
            c.security_leaks,
            c.full_suite,
            c.on_frontier,
            c.dominates,
            c.dominated_by
        ));
    }
    out
}

// --------------------------------------------------------------- dispatch

/// Renders any experiment output as plain text.
pub fn render_text(output: &ExperimentOutput) -> String {
    match output {
        ExperimentOutput::Table1(r) => format_table1(r),
        ExperimentOutput::Fig7(r) => format_fig7(r),
        ExperimentOutput::Fig8(r) => format_fig8(r),
        ExperimentOutput::Fig9(r) => format_fig9(r),
        ExperimentOutput::Q3(r) => format_q3(r),
        ExperimentOutput::Q4(r) => format_q4(r),
        ExperimentOutput::Security(r) => format_security(r),
        ExperimentOutput::TraceGen(r) => format_trace_gen(r),
        ExperimentOutput::Lint(r) => format_lint(r),
        ExperimentOutput::Consolidation(r) => format_consolidation(r),
        ExperimentOutput::Records(r) => format_records(r),
        ExperimentOutput::Frontier(r) => format_frontier(r),
    }
}

fn hex_list(addrs: &[u64]) -> String {
    addrs
        .iter()
        .map(|a| format!("{a:#x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn csv_table(header: &[&str], rows: Vec<Vec<String>>) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row.iter().map(|f| csv_escape(f)).collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    out
}

/// Renders any experiment output as CSV (header row + data rows).
pub fn render_csv(output: &ExperimentOutput) -> String {
    match output {
        ExperimentOutput::Table1(r) => csv_table(
            &[
                "program",
                "group",
                "multi_target",
                "single_target",
                "vanilla_avg",
                "vanilla_max",
                "kmers_avg",
                "kmers_max",
                "compression_avg",
                "compression_max",
            ],
            r.rows
                .iter()
                .map(|row| {
                    vec![
                        row.row.program.clone(),
                        row.group.to_string(),
                        row.row.multi_target_branches.to_string(),
                        row.row.single_target_branches.to_string(),
                        row.row.vanilla_avg.to_string(),
                        row.row.vanilla_max.to_string(),
                        row.row.kmers_avg.to_string(),
                        row.row.kmers_max.to_string(),
                        row.row.compression_avg.to_string(),
                        row.row.compression_max.to_string(),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::Fig7(r) => {
            let designs: Vec<&String> = r.geomean.keys().collect();
            let mut header: Vec<&str> = vec!["workload", "group"];
            header.extend(designs.iter().map(|d| d.as_str()));
            let mut rows: Vec<Vec<String>> = r
                .rows
                .iter()
                .map(|row| {
                    let mut cells = vec![row.workload.clone(), row.group.to_string()];
                    cells.extend(designs.iter().map(|d| {
                        row.normalized
                            .get(*d)
                            .map_or_else(String::new, f64::to_string)
                    }));
                    cells
                })
                .collect();
            let mut geomean = vec!["geomean".to_string(), String::new()];
            geomean.extend(designs.iter().map(|d| r.geomean[*d].to_string()));
            rows.push(geomean);
            csv_table(&header, rows)
        }
        ExperimentOutput::Fig8(points) => csv_table(
            &[
                "variant",
                "mix",
                "prospect_overhead_pct",
                "cassandra_prospect_overhead_pct",
            ],
            points
                .iter()
                .map(|p| {
                    vec![
                        p.variant.clone(),
                        p.mix.clone(),
                        p.prospect_overhead_pct.to_string(),
                        p.cassandra_prospect_overhead_pct.to_string(),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::Fig9(r) => {
            let mut rows: Vec<Vec<String>> = Vec::new();
            for unit in &r.baseline.units {
                rows.push(vec![
                    unit.name.clone(),
                    unit.area.to_string(),
                    unit.power.to_string(),
                    r.cassandra.unit_power(&unit.name).to_string(),
                ]);
            }
            for unit in &r.cassandra.units {
                if r.baseline.unit_area(&unit.name) == 0.0 {
                    rows.push(vec![
                        unit.name.clone(),
                        unit.area.to_string(),
                        String::new(),
                        unit.power.to_string(),
                    ]);
                }
            }
            rows.push(vec![
                "TOTAL".to_string(),
                r.baseline.total_area.to_string(),
                r.baseline.total_power.to_string(),
                r.cassandra.total_power.to_string(),
            ]);
            csv_table(&["unit", "area", "baseline_power", "cassandra_power"], rows)
        }
        ExperimentOutput::Q3(rows) => csv_table(
            &[
                "workload",
                "group",
                "design",
                "cassandra_cycles",
                "variant_cycles",
                "slowdown_pct",
            ],
            rows.iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.group.to_string(),
                        r.design.clone(),
                        r.cassandra_cycles.to_string(),
                        r.variant_cycles.to_string(),
                        r.slowdown_pct.to_string(),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::Q4(r) => csv_table(
            &[
                "flush_interval",
                "partition_contexts",
                "speedup_no_flush_pct",
                "speedup_with_flush_pct",
                "speedup_with_partition_pct",
            ],
            vec![vec![
                r.flush_interval.to_string(),
                r.partition_contexts.to_string(),
                r.speedup_no_flush_pct.to_string(),
                r.speedup_with_flush_pct.to_string(),
                r.speedup_with_partition_pct.to_string(),
            ]],
        ),
        ExperimentOutput::Security(matrix) => csv_table(
            &[
                "scenario",
                "design",
                "contract_equal",
                "attacker_trace_equal",
                "transient_activity",
                "protected",
                "divergent_accesses",
            ],
            matrix
                .cells
                .iter()
                .map(|c| {
                    vec![
                        c.scenario.clone(),
                        c.design.clone(),
                        c.verdict.contract_equal.to_string(),
                        c.verdict.attacker_trace_equal.to_string(),
                        c.verdict.transient_activity.to_string(),
                        c.verdict.is_protected().to_string(),
                        c.verdict
                            .divergent_accesses
                            .iter()
                            .map(|a| format!("{a:#x}"))
                            .collect::<Vec<_>>()
                            .join(";"),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::TraceGen(rows) => csv_table(
            &[
                "workload",
                "branches",
                "detect_us",
                "collect_us",
                "vanilla_us",
                "kmers_us",
            ],
            rows.iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.branches.to_string(),
                        r.detect.as_micros().to_string(),
                        r.collect.as_micros().to_string(),
                        r.vanilla.as_micros().to_string(),
                        r.kmers.as_micros().to_string(),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::Lint(rows) => csv_table(
            &[
                "workload",
                "group",
                "verdict",
                "instructions",
                "conditional_branches",
                "tainted_branches",
                "arch_findings",
                "transient_findings",
            ],
            rows.iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.group.to_string(),
                        r.verdict.to_string(),
                        r.instructions.to_string(),
                        r.conditional_branches.to_string(),
                        r.tainted_branches.to_string(),
                        r.arch_findings.to_string(),
                        r.transient_findings.to_string(),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::Consolidation(r) => csv_table(
            &[
                "policy",
                "defense",
                "context",
                "workload",
                "committed_instructions",
                "attributed_cycles",
                "solo_cycles",
                "slowdown",
                "context_switches",
                "btu_lookups",
                "btu_hit_rate",
                "btu_evictions",
                "btu_steals_suffered",
                "btu_partition_switches",
            ],
            r.policies
                .iter()
                .flat_map(|p| {
                    p.tenants.iter().map(move |t| {
                        vec![
                            p.policy.clone(),
                            p.defense.label().to_string(),
                            t.context.to_string(),
                            t.workload.clone(),
                            t.committed_instructions.to_string(),
                            t.attributed_cycles.to_string(),
                            t.solo_cycles.to_string(),
                            t.slowdown.to_string(),
                            p.context_switches.to_string(),
                            t.btu.lookups.to_string(),
                            t.btu.hit_rate().to_string(),
                            t.btu.evictions.to_string(),
                            t.btu.steals_suffered.to_string(),
                            t.btu.partition_switches.to_string(),
                        ]
                    })
                })
                .collect(),
        ),
        ExperimentOutput::Records(records) => csv_table(
            &[
                "workload",
                "group",
                "design",
                "defense",
                "cycles",
                "ipc",
                "mispredictions",
                "squashed",
                "analysis_cached",
                "simulate_us",
            ],
            records
                .iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.group.to_string(),
                        r.design.clone(),
                        r.defense.label().to_string(),
                        r.stats.cycles.to_string(),
                        r.stats.ipc().to_string(),
                        r.stats.mispredictions.to_string(),
                        r.stats.squashed_instructions.to_string(),
                        r.timing.analysis_cached.to_string(),
                        r.timing.simulate.as_micros().to_string(),
                    ]
                })
                .collect(),
        ),
        ExperimentOutput::Frontier(r) => csv_table(
            &[
                "design",
                "defense",
                "geomean_slowdown",
                "security_leaks",
                "full_suite",
                "on_frontier",
                "dominates",
                "dominated_by",
            ],
            r.cells
                .iter()
                .map(|c| {
                    vec![
                        c.label.clone(),
                        c.defense.label().to_string(),
                        c.geomean_slowdown.to_string(),
                        c.security_leaks.to_string(),
                        c.full_suite.to_string(),
                        c.on_frontier.to_string(),
                        c.dominates.to_string(),
                        c.dominated_by.to_string(),
                    ]
                })
                .collect(),
        ),
    }
}

/// Renders any experiment output as pretty-printed JSON.
///
/// # Errors
///
/// Propagates serialization errors (none in the vendored shim).
pub fn render_json(output: &ExperimentOutput) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(output)
}

/// Renders any experiment output in the requested format.
///
/// # Errors
///
/// Propagates JSON serialization errors.
pub fn render(
    output: &ExperimentOutput,
    format: ReportFormat,
) -> Result<String, serde_json::Error> {
    match format {
        ReportFormat::Text => Ok(render_text(output)),
        ReportFormat::Csv => Ok(render_csv(output)),
        ReportFormat::Json => render_json(output),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, quick_workloads, FIG7_DESIGNS};
    use cassandra_kernels::suite;

    #[test]
    fn table1_rendering_contains_programs_and_all_row() {
        let result = experiments::table1(&quick_workloads()[..2]).unwrap();
        let text = format_table1(&result);
        assert!(text.contains("ChaCha20_ct"));
        assert!(text.contains("All"));
        assert!(text.contains("CompRateAvg"));
    }

    #[test]
    fn fig7_rendering_contains_geomean() {
        let workloads = vec![suite::des_workload(8)];
        let result = experiments::figure7(&workloads, &FIG7_DESIGNS).unwrap();
        let text = format_fig7(&result);
        assert!(text.contains("geomean"));
        assert!(text.contains("Cassandra speedup"));
    }

    #[test]
    fn every_format_renders_every_output() {
        let workloads = vec![suite::des_workload(4)];
        let mut ev = crate::eval::Evaluator::builder()
            .workloads(workloads)
            .defense_matrix([cassandra_cpu::config::DefenseMode::Cassandra])
            .build();
        let mut registry = crate::registry::ExperimentRegistry::standard();
        registry.register(crate::registry::SweepExperiment);
        let runs = registry.run_all(&mut ev).unwrap();
        assert_eq!(runs.len(), 12);
        for run in &runs {
            let text = render_text(&run.output);
            assert!(!text.is_empty(), "{}: empty text", run.name);
            let csv = render_csv(&run.output);
            assert!(csv.lines().count() >= 2, "{}: no CSV rows", run.name);
            let json = render_json(&run.output).unwrap();
            assert!(json.starts_with('{'), "{}: bad JSON", run.name);
        }
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn q4_rendering_mentions_interval_and_both_variants() {
        let q4 = experiments::Q4Result {
            speedup_no_flush_pct: 1.85,
            speedup_with_flush_pct: 1.80,
            speedup_with_partition_pct: 1.83,
            flush_interval: 400_000,
            partition_contexts: 2,
        };
        let text = format_q4(&q4);
        assert!(text.contains("400000"));
        assert!(text.contains("whole-BTU flush"));
        assert!(text.contains("partition reassignment"));
    }
}
