//! The unified experiment registry.
//!
//! Every paper experiment implements [`Experiment`]: a name plus a
//! `run(&mut Evaluator)` that produces a typed [`ExperimentOutput`]. The
//! [`ExperimentRegistry`] holds the standard set (Table 1, Figures 7–9, Q3,
//! Q4, the Table-2 security sweep, the §7.5 trace-generation timing, the
//! static constant-time lint, the consolidation study and the Pareto
//! frontier search), so
//! examples, benches and the [`ExperimentRegistry::run_all`] entry point
//! enumerate the evaluation generically instead of hard-coding one driver
//! per figure. Because all experiments share one [`Evaluator`] session, a
//! full `run_all` analyzes each distinct program exactly once.
//!
//! Outputs are serde-serializable; [`crate::report`] renders any of them to
//! text, CSV or JSON.

use crate::consolidation::{self, ConsolidationResult};
use crate::eval::{CancelToken, EvalRecord, Evaluator};
use crate::experiments::{
    self, Fig7Result, Fig8Point, Fig9Result, Q3Row, Q4Result, Table1Result, TraceGenRow,
    FIG7_DESIGNS, Q3_VARIANTS,
};
use crate::frontier::{self, AdaptiveSearch, FrontierResult};
use crate::lint::{self, LintRow};
use crate::policies::PolicyRegistry;
use crate::security::{self, SecurityMatrix};
use cassandra_cpu::config::DefenseMode;
use cassandra_isa::error::IsaError;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The typed output of any experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentOutput {
    /// Table 1: branch analysis / trace compression.
    Table1(Table1Result),
    /// Figure 7: normalised execution time of the crypto benchmarks.
    Fig7(Fig7Result),
    /// Figure 8: synthetic sandbox/crypto mixes vs ProSpeCT.
    Fig8(Vec<Fig8Point>),
    /// Figure 9: power and area.
    Fig9(Fig9Result),
    /// Q3: Cassandra-lite vs Cassandra.
    Q3(Vec<Q3Row>),
    /// Q4: periodic BTU flushes.
    Q4(Q4Result),
    /// Figure 6 / Table 2: the gadget-scenario security matrix.
    Security(SecurityMatrix),
    /// §7.5: trace-generation timing.
    TraceGen(Vec<TraceGenRow>),
    /// Static constant-time & speculative-leakage lint verdicts.
    Lint(Vec<LintRow>),
    /// N-tenant consolidation: one shared core under every switch policy.
    Consolidation(ConsolidationResult),
    /// A raw design-point sweep (the uniform [`EvalRecord`] stream).
    Records(Vec<EvalRecord>),
    /// Performance × security Pareto frontier of a grid-sweep expansion.
    Frontier(FrontierResult),
}

/// One paper experiment, runnable against any evaluation session.
pub trait Experiment {
    /// Stable registry key (`table1`, `fig7`, …).
    fn name(&self) -> &'static str;

    /// Human-readable title used by reports.
    fn title(&self) -> &'static str;

    /// Runs the experiment over the session's workload set.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError>;
}

// --------------------------------------------------------- the experiments

/// Table 1: branch analysis of the cryptographic programs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn title(&self) -> &'static str {
        "Table 1: branch analysis of cryptographic programs"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        experiments::table1_with(ev, &workloads).map(ExperimentOutput::Table1)
    }
}

/// Figure 7: normalised execution time under the compared designs.
#[derive(Debug, Clone)]
pub struct Fig7Experiment {
    /// The designs to sweep (defaults to the paper's four).
    pub designs: Vec<DefenseMode>,
}

impl Default for Fig7Experiment {
    fn default() -> Self {
        Fig7Experiment {
            designs: FIG7_DESIGNS.to_vec(),
        }
    }
}

impl Experiment for Fig7Experiment {
    fn name(&self) -> &'static str {
        "fig7"
    }
    fn title(&self) -> &'static str {
        "Figure 7: normalized execution time (crypto benchmarks)"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        experiments::figure7_with(ev, &workloads, &self.designs).map(ExperimentOutput::Fig7)
    }
}

/// Figure 8: synthetic SpectreGuard-style sandbox/crypto mixes.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Experiment {
    /// Size scale of the synthetic kernels (the example uses 20, tests 4).
    pub scale: u32,
}

impl Default for Fig8Experiment {
    fn default() -> Self {
        Fig8Experiment { scale: 4 }
    }
}

impl Experiment for Fig8Experiment {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn title(&self) -> &'static str {
        "Figure 8: synthetic sandbox/crypto mixes (ProSpeCT comparison)"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        experiments::figure8_with(ev, self.scale).map(ExperimentOutput::Fig8)
    }
}

/// Figure 9: power and area.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig9Experiment;

impl Experiment for Fig9Experiment {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn title(&self) -> &'static str {
        "Figure 9: power and area"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        experiments::figure9_with(ev, &workloads).map(ExperimentOutput::Fig9)
    }
}

/// Q3: restricted frontends (Cassandra-lite, Fence, Cassandra-noTC, …) vs
/// full Cassandra.
#[derive(Debug, Clone)]
pub struct Q3Experiment {
    /// The restricted-frontend variants to compare against Cassandra.
    pub variants: Vec<DefenseMode>,
}

impl Default for Q3Experiment {
    fn default() -> Self {
        Q3Experiment {
            variants: Q3_VARIANTS.to_vec(),
        }
    }
}

impl Experiment for Q3Experiment {
    fn name(&self) -> &'static str {
        "q3"
    }
    fn title(&self) -> &'static str {
        "Q3: restricted frontends vs Cassandra"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        experiments::q3_with(ev, &workloads, &self.variants).map(ExperimentOutput::Q3)
    }
}

/// Q4: periodic context switches, priced as whole-BTU flushes versus
/// partition reassignments on the way-partitioned BTU.
#[derive(Debug, Clone, Copy)]
pub struct Q4Experiment {
    /// Context-switch interval in committed instructions.
    pub flush_interval: u64,
    /// Application contexts rotated through by the partition variant.
    pub partition_contexts: u64,
}

impl Default for Q4Experiment {
    fn default() -> Self {
        Q4Experiment {
            flush_interval: 50_000,
            partition_contexts: experiments::Q4_PARTITION_CONTEXTS,
        }
    }
}

impl Experiment for Q4Experiment {
    fn name(&self) -> &'static str {
        "q4"
    }
    fn title(&self) -> &'static str {
        "Q4: context switches (whole-BTU flush vs partition reassignment)"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        experiments::q4_with(ev, &workloads, self.flush_interval, self.partition_contexts)
            .map(ExperimentOutput::Q4)
    }
}

/// Figure 6 / Table 2: the gadget-scenario security sweep.
#[derive(Debug, Clone)]
pub struct SecurityExperiment {
    /// The designs to compare on the gadget scenarios. The default
    /// enumerates the standard policy registry, so every registered defense
    /// (including new frontend policies) is security-checked without edits
    /// here.
    pub designs: Vec<DefenseMode>,
}

impl Default for SecurityExperiment {
    fn default() -> Self {
        SecurityExperiment {
            designs: PolicyRegistry::standard().defenses(),
        }
    }
}

impl Experiment for SecurityExperiment {
    fn name(&self) -> &'static str {
        "security"
    }
    fn title(&self) -> &'static str {
        "Table 2: gadget scenarios (empirical security analysis)"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        security::security_sweep_with(ev, &self.designs).map(ExperimentOutput::Security)
    }
}

/// §7.5: trace-generation timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceGenExperiment;

impl Experiment for TraceGenExperiment {
    fn name(&self) -> &'static str {
        "tracegen"
    }
    fn title(&self) -> &'static str {
        "§7.5: trace generation runtime"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        experiments::trace_generation_timing_with(ev, &workloads).map(ExperimentOutput::TraceGen)
    }
}

/// Static constant-time & speculative-leakage lint of the session
/// workloads.
///
/// Unlike every other experiment, this never executes a program: verdicts
/// come from the pure static pass in [`cassandra_analysis`], memoized on
/// the session's shared [`AnalysisStore`](crate::eval::AnalysisStore).
/// Algorithm-2 cache counters are untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintExperiment;

impl Experiment for LintExperiment {
    fn name(&self) -> &'static str {
        "lint"
    }
    fn title(&self) -> &'static str {
        "Static lint: constant-time & speculative-leakage verdicts"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        Ok(ExperimentOutput::Lint(lint::lint_with(ev, &workloads)))
    }
}

/// N-tenant consolidation: a mix cycled from the session workloads,
/// round-robined over one shared pipeline + BTU under the flush,
/// partition-reassignment and scheduler-driven switch policies.
#[derive(Debug, Clone, Copy)]
pub struct ConsolidationExperiment {
    /// Tenants in the mix (the suite is cycled to fill it).
    pub tenants: usize,
    /// Scheduling quantum in committed instructions.
    pub quantum: u64,
}

impl Default for ConsolidationExperiment {
    fn default() -> Self {
        ConsolidationExperiment {
            tenants: consolidation::CONSOLIDATION_TENANTS,
            quantum: consolidation::CONSOLIDATION_QUANTUM,
        }
    }
}

impl Experiment for ConsolidationExperiment {
    fn name(&self) -> &'static str {
        "consolidation"
    }
    fn title(&self) -> &'static str {
        "Consolidation: N-tenant mixes on one shared core"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        consolidation::consolidation_with(ev, &workloads, self.tenants, self.quantum)
            .map(ExperimentOutput::Consolidation)
    }
}

/// Performance × security Pareto frontier of a grid-sweep expansion over
/// the session workloads (see [`crate::frontier`]): exhaustive by default,
/// successive-halving when `adaptive` is set.
#[derive(Debug, Clone)]
pub struct FrontierExperiment {
    /// The grid whose expansion is scored.
    pub grid: crate::policies::GridSweep,
    /// Successive-halving configuration; `None` sweeps every cell on the
    /// full workload group.
    pub adaptive: Option<AdaptiveSearch>,
}

impl Default for FrontierExperiment {
    fn default() -> Self {
        FrontierExperiment {
            grid: frontier::standard_grid(),
            adaptive: None,
        }
    }
}

impl Experiment for FrontierExperiment {
    fn name(&self) -> &'static str {
        "frontier"
    }
    fn title(&self) -> &'static str {
        "Frontier: performance × security Pareto search over a design grid"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        let workloads = ev.shared_workloads();
        let result = frontier::frontier_with(
            ev,
            &workloads,
            &self.grid,
            self.adaptive,
            &CancelToken::new(),
            |_| {},
        )?;
        Ok(ExperimentOutput::Frontier(
            result.expect("an un-cancelled frontier run always completes"),
        ))
    }
}

/// The raw workload × design sweep over the session's configured matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepExperiment;

impl Experiment for SweepExperiment {
    fn name(&self) -> &'static str {
        "sweep"
    }
    fn title(&self) -> &'static str {
        "Raw design-point sweep (EvalRecord stream)"
    }
    fn run(&self, ev: &mut Evaluator) -> Result<ExperimentOutput, IsaError> {
        ev.sweep().map(ExperimentOutput::Records)
    }
}

// -------------------------------------------------------------- registry

/// A completed experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRun {
    /// Registry key of the experiment.
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// The typed output.
    pub output: ExperimentOutput,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// An ordered collection of experiments, enumerable by name.
pub struct ExperimentRegistry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Default for ExperimentRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl ExperimentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ExperimentRegistry {
            experiments: Vec::new(),
        }
    }

    /// The paper's standard experiment set, in reporting order.
    pub fn standard() -> Self {
        let mut registry = Self::new();
        registry.register(Table1Experiment);
        registry.register(Fig7Experiment::default());
        registry.register(Fig8Experiment::default());
        registry.register(Fig9Experiment);
        registry.register(Q3Experiment::default());
        registry.register(Q4Experiment::default());
        registry.register(SecurityExperiment::default());
        registry.register(TraceGenExperiment);
        registry.register(LintExperiment);
        registry.register(ConsolidationExperiment::default());
        registry.register(FrontierExperiment::default());
        registry
    }

    /// Adds an experiment (replacing any previous one with the same name).
    pub fn register(&mut self, experiment: impl Experiment + 'static) {
        self.experiments.retain(|e| e.name() != experiment.name());
        self.experiments.push(Box::new(experiment));
    }

    /// The registered experiment names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.experiments.iter().map(|e| e.name()).collect()
    }

    /// Looks up an experiment by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.experiments
            .iter()
            .find(|e| e.name() == name)
            .map(AsRef::as_ref)
    }

    /// Runs one experiment by name against the session.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors; `Ok(None)` if the name is
    /// unknown.
    pub fn run(&self, name: &str, ev: &mut Evaluator) -> Result<Option<ExperimentRun>, IsaError> {
        match self.get(name) {
            Some(experiment) => run_one(experiment, ev).map(Some),
            None => Ok(None),
        }
    }

    /// Runs every registered experiment against one shared session, in
    /// registration order.
    ///
    /// # Errors
    ///
    /// Propagates analysis or simulation errors.
    pub fn run_all(&self, ev: &mut Evaluator) -> Result<Vec<ExperimentRun>, IsaError> {
        self.experiments
            .iter()
            .map(|experiment| run_one(experiment.as_ref(), ev))
            .collect()
    }
}

fn run_one(experiment: &dyn Experiment, ev: &mut Evaluator) -> Result<ExperimentRun, IsaError> {
    let start = Instant::now();
    let output = experiment.run(ev)?;
    Ok(ExperimentRun {
        name: experiment.name().to_string(),
        title: experiment.title().to_string(),
        output,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_kernels::suite;

    #[test]
    fn standard_registry_lists_the_paper_experiments() {
        let registry = ExperimentRegistry::standard();
        assert_eq!(
            registry.names(),
            [
                "table1",
                "fig7",
                "fig8",
                "fig9",
                "q3",
                "q4",
                "security",
                "tracegen",
                "lint",
                "consolidation",
                "frontier"
            ]
        );
        assert!(registry.get("fig7").is_some());
        assert!(registry.get("nope").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut registry = ExperimentRegistry::standard();
        let before = registry.names().len();
        registry.register(Q4Experiment {
            flush_interval: 7,
            ..Q4Experiment::default()
        });
        assert_eq!(registry.names().len(), before);
    }

    #[test]
    fn run_all_analyzes_each_workload_exactly_once() {
        let workloads = vec![suite::chacha20_workload(64), suite::des_workload(4)];
        let n_workloads = workloads.len() as u64;
        let mut ev = Evaluator::builder().workloads(workloads).build();
        let registry = ExperimentRegistry::standard();
        let runs = registry.run_all(&mut ev).unwrap();
        assert_eq!(runs.len(), 11);

        // Distinct programs analyzed: the session workloads (once each,
        // shared by table1/fig7/fig9/q3/q4/tracegen/consolidation/frontier),
        // the fig8 synthetic mixes (2 variants × 5 mixes) and the security
        // gadgets (8 scenarios × 2 secrets, shared by the security and
        // frontier experiments). No program is ever analyzed twice, and the
        // static lint experiment contributes zero — it never runs
        // Algorithm 2.
        let stats = ev.cache_stats();
        assert_eq!(stats.misses, n_workloads + 10 + 16);
        assert_eq!(ev.analyzed_programs() as u64, stats.misses);
        assert!(
            stats.hits >= 5 * n_workloads,
            "experiments after table1 must hit the cache ({stats:?})"
        );
    }

    #[test]
    fn run_by_name_matches_run_all_entry() {
        let workloads = vec![suite::des_workload(4)];
        let mut ev = Evaluator::builder().workloads(workloads).build();
        let registry = ExperimentRegistry::standard();
        let run = registry.run("table1", &mut ev).unwrap().unwrap();
        assert_eq!(run.name, "table1");
        assert!(matches!(run.output, ExperimentOutput::Table1(_)));
        assert!(registry.run("unknown", &mut ev).unwrap().is_none());
    }
}
