//! # cassandra-core
//!
//! The top-level API of the Cassandra reproduction. It ties the workspace
//! together: branch analysis (`cassandra-trace`), trace encoding
//! (`cassandra-btu`), the processor model (`cassandra-cpu`) and the workload
//! suite (`cassandra-kernels`), and exposes:
//!
//! * [`analyze_workload`] / [`analyze_program`] — run the paper's Algorithm 2
//!   on a program and encode the result for the BTU;
//! * [`simulate_workload`] / [`simulate_program`] — simulate a program under
//!   a chosen [`CpuConfig`], loading the traces when the defense needs them;
//! * [`security`] — the empirical contract/leakage checker used for the
//!   paper's security analysis (Figure 6 / Table 2, Theorem 1);
//! * [`experiments`] — drivers that regenerate every table and figure of the
//!   evaluation;
//! * [`report`] — plain-text renderers producing the same rows/series the
//!   paper reports.
//!
//! ```
//! use cassandra_core::{analyze_workload, simulate_workload};
//! use cassandra_cpu::config::{CpuConfig, DefenseMode};
//! use cassandra_kernels::suite;
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let workload = suite::chacha20_workload(64);
//! let analysis = analyze_workload(&workload)?;
//! let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
//! let outcome = simulate_workload(&workload, &analysis, &cfg)?;
//! assert_eq!(outcome.stats.mispredictions, 0);
//! # Ok(())
//! # }
//! ```

pub mod experiments;
pub mod report;
pub mod security;

use cassandra_btu::encode::EncodedTraces;
use cassandra_btu::unit::BranchTraceUnit;
use cassandra_cpu::config::CpuConfig;
use cassandra_cpu::pipeline::{simulate, SimOutcome};
use cassandra_isa::error::IsaError;
use cassandra_isa::program::Program;
use cassandra_kernels::workload::Workload;
use cassandra_trace::genproc::{generate_traces, TraceBundle};

/// Default profiling step budget for trace generation.
pub const ANALYSIS_STEP_LIMIT: u64 = 200_000_000;

/// The result of the software side of Cassandra for one program: the
/// compressed per-branch traces plus their hardware encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisBundle {
    /// Output of the trace-generation procedure (Algorithm 2).
    pub bundle: TraceBundle,
    /// Hardware encoding of the traces and hints (§5.2).
    pub encoded: EncodedTraces,
}

impl AnalysisBundle {
    /// Builds a fresh Branch Trace Unit pre-loaded with these traces.
    pub fn make_btu(&self, config: &CpuConfig) -> BranchTraceUnit {
        BranchTraceUnit::new(config.btu, self.encoded.clone())
    }
}

/// Runs the branch analysis (Algorithm 2) on an arbitrary program.
///
/// # Errors
///
/// Propagates profiling-run errors (step budget, malformed program).
pub fn analyze_program(program: &Program, step_limit: u64) -> Result<AnalysisBundle, IsaError> {
    let bundle = generate_traces(program, None, step_limit)?;
    let encoded = EncodedTraces::from_bundle(program, &bundle);
    Ok(AnalysisBundle { bundle, encoded })
}

/// Runs the branch analysis on a workload's kernel.
///
/// # Errors
///
/// Propagates profiling-run errors.
pub fn analyze_workload(workload: &Workload) -> Result<AnalysisBundle, IsaError> {
    analyze_program(&workload.kernel.program, workload.kernel.step_limit)
}

/// Simulates an arbitrary program under `config`, loading `analysis` traces
/// into a BTU when the configured defense uses one.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_program(
    program: &Program,
    analysis: Option<&AnalysisBundle>,
    config: &CpuConfig,
) -> Result<SimOutcome, IsaError> {
    let btu = if config.defense.uses_btu() {
        analysis.map(|a| a.make_btu(config))
    } else {
        None
    };
    simulate(program, *config, btu)
}

/// Simulates a workload's kernel under `config`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_workload(
    workload: &Workload,
    analysis: &AnalysisBundle,
    config: &CpuConfig,
) -> Result<SimOutcome, IsaError> {
    let mut cfg = *config;
    cfg.max_instructions = cfg.max_instructions.max(workload.kernel.step_limit);
    simulate_program(&workload.kernel.program, Some(analysis), &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_cpu::config::DefenseMode;
    use cassandra_kernels::suite;

    #[test]
    fn analyze_and_simulate_chacha20_under_all_designs() {
        let workload = suite::chacha20_workload(64);
        let analysis = analyze_workload(&workload).unwrap();
        assert!(analysis.bundle.analyzed_branches() > 0);
        let base_cfg = CpuConfig::golden_cove_like();
        let base = simulate_workload(&workload, &analysis, &base_cfg).unwrap();
        assert!(base.halted);
        for defense in [
            DefenseMode::Cassandra,
            DefenseMode::CassandraStl,
            DefenseMode::Spt,
        ] {
            let cfg = base_cfg.with_defense(defense);
            let outcome = simulate_workload(&workload, &analysis, &cfg).unwrap();
            assert!(outcome.halted, "{defense:?}");
            assert_eq!(
                outcome.stats.committed_instructions,
                base.stats.committed_instructions,
                "architectural behaviour must not change under {defense:?}"
            );
        }
    }

    #[test]
    fn cassandra_eliminates_crypto_mispredictions_on_a_real_kernel() {
        let workload = suite::sha256_workload(96);
        let analysis = analyze_workload(&workload).unwrap();
        let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
        let outcome = simulate_workload(&workload, &analysis, &cfg).unwrap();
        assert_eq!(outcome.stats.mispredictions, 0);
        assert_eq!(outcome.stats.squashed_instructions, 0);
    }
}
