//! # cassandra-core
//!
//! The top-level API of the Cassandra reproduction. It ties the workspace
//! together: branch analysis (`cassandra-trace`), trace encoding
//! (`cassandra-btu`), the processor model (`cassandra-cpu`) and the workload
//! suite (`cassandra-kernels`).
//!
//! ## The session API (start here)
//!
//! The primary entry point is [`eval::Evaluator`]: a builder-constructed
//! evaluation session holding a workload set, a design matrix of
//! [`eval::DesignPoint`]s (`DefenseMode` × `CpuConfig` overrides) and an
//! analysis cache. The session runs the paper's Algorithm 2 **once per
//! distinct program** — memoized by content fingerprint — no matter how many
//! design points, sweeps or experiments consume the result, and sweeps the
//! design matrix in parallel when the `parallel` feature (default) is on.
//!
//! Under the facade, the session is two composable layers (see
//! [`eval`]): a thread-safe [`eval::AnalysisStore`] (exactly-once analysis
//! under concurrency, serializable for warm-starts) and stateless
//! [`eval::SweepExecutor`]s that borrow it (streaming, cancellable
//! sweeps via [`eval::CancelToken`]). Sessions built with
//! [`eval::EvaluatorBuilder::store`] share one store — the evaluation
//! server runs N concurrent requests against a single cache this way.
//!
//! On top of it, [`registry::ExperimentRegistry`] unifies every paper
//! experiment (Table 1, Figures 7–9, Q3, Q4, the Table-2 security sweep and
//! the §7.5 trace-generation timing) behind the [`registry::Experiment`]
//! trait, [`policies::PolicyRegistry`] enumerates the modelled defense
//! scenarios as named design points (so sweeps and the security experiment
//! never hand-list `DefenseMode` variants), and [`report`] renders any
//! [`registry::ExperimentOutput`] to text, CSV or JSON.
//!
//! ```
//! use cassandra_core::eval::Evaluator;
//! use cassandra_core::registry::ExperimentRegistry;
//! use cassandra_core::report;
//! use cassandra_cpu::config::DefenseMode;
//! use cassandra_kernels::suite;
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let mut session = Evaluator::builder()
//!     .workloads([suite::chacha20_workload(64), suite::des_workload(4)])
//!     .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
//!     .build();
//!
//! // The uniform record stream of the workload × design sweep …
//! let records = session.sweep()?;
//! assert_eq!(records.len(), 4);
//!
//! // … and the full experiment suite, sharing the same analysis cache.
//! let runs = ExperimentRegistry::standard().run_all(&mut session)?;
//! assert_eq!(runs.len(), 11);
//! println!("{}", report::render_text(&runs[0].output));
//! assert_eq!(session.cache_stats().misses, 2 + 10 + 16); // each program once
//! # Ok(())
//! # }
//! ```
//!
//! ## Deprecated path: the stateless free functions
//!
//! [`analyze_workload`] / [`analyze_program`] / [`simulate_workload`] /
//! [`simulate_program`] predate the session API. They are kept as thin
//! shims delegating to a one-shot [`eval::Evaluator`] so existing code
//! keeps compiling, but they re-derive the analysis on every call — new
//! code should hold an `Evaluator` instead. They may be removed in a future
//! major version.
//!
//! ```
//! use cassandra_core::{analyze_workload, simulate_workload};
//! use cassandra_cpu::config::{CpuConfig, DefenseMode};
//! use cassandra_kernels::suite;
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let workload = suite::chacha20_workload(64);
//! let analysis = analyze_workload(&workload)?;
//! let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
//! let outcome = simulate_workload(&workload, &analysis, &cfg)?;
//! assert_eq!(outcome.stats.mispredictions, 0);
//! # Ok(())
//! # }
//! ```

pub mod consolidation;
pub mod eval;
pub mod experiments;
pub mod frontier;
pub mod lint;
pub mod policies;
pub mod registry;
pub mod report;
pub mod security;

use cassandra_btu::encode::EncodedTraces;
use cassandra_btu::unit::BranchTraceUnit;
use cassandra_cpu::config::CpuConfig;
use cassandra_cpu::pipeline::SimOutcome;
use cassandra_isa::error::IsaError;
use cassandra_isa::program::Program;
use cassandra_kernels::workload::Workload;
use cassandra_trace::genproc::TraceBundle;
use serde::{Deserialize, Serialize};

pub use consolidation::{consolidation, consolidation_with, ConsolidationResult};
pub use eval::{
    AnalysisSnapshot, AnalysisStore, CancelToken, DesignPoint, EvalRecord, Evaluator,
    SweepExecutor, SweepOutcome,
};
pub use frontier::{
    frontier_with, AdaptiveSearch, FrontierCell, FrontierPoint, FrontierProgress, FrontierResult,
};
pub use policies::{GridSweep, PolicyConflict, PolicyRegistry};
pub use registry::{Experiment, ExperimentOutput, ExperimentRegistry};

/// Default profiling step budget for trace generation.
pub const ANALYSIS_STEP_LIMIT: u64 = 200_000_000;

/// The result of the software side of Cassandra for one program: the
/// compressed per-branch traces plus their hardware encoding.
///
/// Serializable so an [`eval::AnalysisStore`] can snapshot its contents for
/// warm-starts (see [`eval::AnalysisSnapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisBundle {
    /// Output of the trace-generation procedure (Algorithm 2).
    pub bundle: TraceBundle,
    /// Hardware encoding of the traces and hints (§5.2).
    pub encoded: EncodedTraces,
}

impl AnalysisBundle {
    /// Builds a fresh Branch Trace Unit pre-loaded with these traces.
    pub fn make_btu(&self, config: &CpuConfig) -> BranchTraceUnit {
        BranchTraceUnit::new(config.btu, self.encoded.clone())
    }
}

/// Runs the branch analysis (Algorithm 2) on an arbitrary program.
///
/// Deprecated path: delegates to [`Evaluator::analyze_once`]; prefer a
/// session's [`Evaluator::analyze_program`], which memoizes.
///
/// # Errors
///
/// Propagates profiling-run errors (step budget, malformed program).
pub fn analyze_program(program: &Program, step_limit: u64) -> Result<AnalysisBundle, IsaError> {
    Evaluator::analyze_once(program, step_limit)
}

/// Runs the branch analysis on a workload's kernel.
///
/// Deprecated path: delegates to a one-shot [`Evaluator`]; prefer
/// [`Evaluator::analysis`], which memoizes.
///
/// # Errors
///
/// Propagates profiling-run errors.
pub fn analyze_workload(workload: &Workload) -> Result<AnalysisBundle, IsaError> {
    analyze_program(&workload.kernel.program, workload.kernel.step_limit)
}

/// Simulates an arbitrary program under `config`, loading `analysis` traces
/// into a BTU when the configured defense uses one.
///
/// Deprecated path: thin shim over [`Evaluator::simulate_program`].
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_program(
    program: &Program,
    analysis: Option<&AnalysisBundle>,
    config: &CpuConfig,
) -> Result<SimOutcome, IsaError> {
    Evaluator::simulate_program(program, analysis, config)
}

/// Simulates a workload's kernel under `config`.
///
/// Deprecated path: prefer [`Evaluator::simulate_cached`] or
/// [`Evaluator::eval`], which reuse cached analyses.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_workload(
    workload: &Workload,
    analysis: &AnalysisBundle,
    config: &CpuConfig,
) -> Result<SimOutcome, IsaError> {
    let mut cfg = *config;
    cfg.max_instructions = cfg.max_instructions.max(workload.kernel.step_limit);
    simulate_program(&workload.kernel.program, Some(analysis), &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_cpu::config::DefenseMode;
    use cassandra_kernels::suite;

    #[test]
    fn analyze_and_simulate_chacha20_under_all_designs() {
        let workload = suite::chacha20_workload(64);
        let analysis = analyze_workload(&workload).unwrap();
        assert!(analysis.bundle.analyzed_branches() > 0);
        let base_cfg = CpuConfig::golden_cove_like();
        let base = simulate_workload(&workload, &analysis, &base_cfg).unwrap();
        assert!(base.halted);
        for defense in [
            DefenseMode::Cassandra,
            DefenseMode::CassandraStl,
            DefenseMode::Spt,
        ] {
            let cfg = base_cfg.with_defense(defense);
            let outcome = simulate_workload(&workload, &analysis, &cfg).unwrap();
            assert!(outcome.halted, "{defense:?}");
            assert_eq!(
                outcome.stats.committed_instructions, base.stats.committed_instructions,
                "architectural behaviour must not change under {defense:?}"
            );
        }
    }

    #[test]
    fn cassandra_eliminates_crypto_mispredictions_on_a_real_kernel() {
        let workload = suite::sha256_workload(96);
        let analysis = analyze_workload(&workload).unwrap();
        let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
        let outcome = simulate_workload(&workload, &analysis, &cfg).unwrap();
        assert_eq!(outcome.stats.mispredictions, 0);
        assert_eq!(outcome.stats.squashed_instructions, 0);
    }
}
