//! Pareto-frontier search over grid-sweep expansions: which defense/knob
//! combinations give the best performance at a given security posture?
//!
//! The frontier experiment scores every cell of a [`GridSweep`] expansion on
//! two axes:
//!
//! * **performance** — the geometric-mean slowdown of the cell's
//!   configuration versus `UnsafeBaseline` over a workload group (the same
//!   ln-sum geomean the Figure-7 driver uses), and
//! * **security** — a proxy from the existing empirical security sweep: the
//!   number of leaking (scenario, design) pairs of the cell's defense on the
//!   Table-2 gadget matrix (see [`crate::security::security_sweep_with`]).
//!
//! Cell `A` *dominates* cell `B` when `A` is no worse on both axes and
//! strictly better on at least one; the **frontier** is the non-dominated
//! set. Ties (equal coordinates) are both on the frontier.
//!
//! Two search strategies share one engine:
//!
//! * **Exhaustive** ([`frontier_with`] with `adaptive: None`) simulates every
//!   cell on the full workload group.
//! * **Successive halving** ([`AdaptiveSearch`]) first evaluates *all* cells
//!   on a cheap smoke subset of the workloads (rung 0), keeps the top
//!   [`AdaptiveSearch::keep_fraction`] per security level, and only runs the
//!   survivors on the remaining workloads (rung 1). Smoke-subset cycle
//!   counts are reused — the smoke workloads are a prefix of the group, so a
//!   survivor's full-suite geomean is bit-identical to the exhaustive one —
//!   and every rung streams through the shared
//!   [`AnalysisStore`](crate::eval::AnalysisStore), so analyses run at most
//!   once across rungs, runs and strategies.
//!
//! Both strategies honor a [`CancelToken`] between cells (and between
//! security probes), which is how the evaluation server prunes an in-flight
//! frontier search mid-rung, and both report progress as
//! `{cells_done, cells_total}` simulation counts.
//!
//! Nothing in this module registers into a
//! [`PolicyRegistry`](crate::policies::PolicyRegistry): the grid expansion
//! is consumed as plain design points, so a frontier run (cancelled or not)
//! leaves no registry residue by construction.

use crate::eval::{CancelToken, DesignPoint, Evaluator, SweepOutcome};
use crate::policies::GridSweep;
use crate::security;
use cassandra_cpu::config::DefenseMode;
use cassandra_isa::error::IsaError;
use cassandra_kernels::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default fraction of cells kept per security level after the smoke rung.
pub const DEFAULT_KEEP_FRACTION: f64 = 0.5;

/// Successive-halving configuration for the adaptive frontier search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSearch {
    /// Fraction of the cells at each security level that survive the smoke
    /// rung (clamped to `(0, 1]`; at least one cell per level always
    /// survives).
    pub keep_fraction: f64,
    /// Number of leading workloads forming the smoke subset; `0` means
    /// automatic (a quarter of the group, rounded up).
    pub smoke_len: usize,
}

impl Default for AdaptiveSearch {
    fn default() -> Self {
        AdaptiveSearch {
            keep_fraction: DEFAULT_KEEP_FRACTION,
            smoke_len: 0,
        }
    }
}

impl AdaptiveSearch {
    fn resolved_smoke_len(&self, workloads: usize) -> usize {
        let auto = workloads.div_ceil(4);
        let requested = if self.smoke_len == 0 {
            auto
        } else {
            self.smoke_len
        };
        requested.clamp(1, workloads.max(1))
    }

    fn kept_of(&self, level_size: usize) -> usize {
        let fraction = if self.keep_fraction > 0.0 && self.keep_fraction <= 1.0 {
            self.keep_fraction
        } else {
            DEFAULT_KEEP_FRACTION
        };
        (((level_size as f64) * fraction).ceil() as usize).clamp(1, level_size.max(1))
    }
}

/// Progress of an in-flight frontier search: completed versus planned
/// simulation cells (baseline reference runs included). Streamed frontier
/// runs emit one line per completed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierProgress {
    /// Simulation cells completed so far.
    pub cells_done: usize,
    /// Total simulation cells this run will execute (fixed once the rung
    /// plan is known, before the first simulation).
    pub cells_total: usize,
}

/// One scored grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierCell {
    /// Design-point label of the cell (from the grid expansion).
    pub label: String,
    /// The cell's base defense.
    pub defense: DefenseMode,
    /// Geomean slowdown versus `UnsafeBaseline` over the workloads this cell
    /// was evaluated on (the full group for full-suite cells, the smoke
    /// subset for cells pruned by the adaptive search).
    pub geomean_slowdown: f64,
    /// Security proxy: leaking (scenario, design) pairs of the cell's
    /// defense on the gadget matrix (lower is better).
    pub security_leaks: usize,
    /// True when `geomean_slowdown` covers the full workload group.
    pub full_suite: bool,
    /// True when no full-suite cell dominates this one. Always `false` for
    /// pruned (smoke-only) cells — their scores are not comparable.
    pub on_frontier: bool,
    /// Full-suite cells this cell dominates.
    pub dominates: usize,
    /// Full-suite cells dominating this cell.
    pub dominated_by: usize,
}

/// One non-dominated design point, without dominance bookkeeping — the part
/// of the result the adaptive search must reproduce exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Design-point label.
    pub label: String,
    /// The point's base defense.
    pub defense: DefenseMode,
    /// Geomean slowdown versus `UnsafeBaseline` over the full group.
    pub geomean_slowdown: f64,
    /// Security proxy (leaking pairs; lower is better).
    pub security_leaks: usize,
}

/// One successive-halving rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RungSummary {
    /// Workloads evaluated in this rung (rung 0: the smoke subset; rung 1:
    /// the rest of the group).
    pub workloads: usize,
    /// Candidate cells entering the rung.
    pub cells_in: usize,
    /// Cells surviving the rung.
    pub cells_kept: usize,
}

/// The result of a frontier search: every scored cell, the non-dominated
/// set, and the rung plan that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierResult {
    /// Names of the swept workload group, in evaluation order.
    pub workloads: Vec<String>,
    /// Every scored cell, in (deduplicated) grid-expansion order.
    pub cells: Vec<FrontierCell>,
    /// The non-dominated set, sorted by (security asc, slowdown asc, label).
    pub frontier: Vec<FrontierPoint>,
    /// The rung plan (one rung for exhaustive runs, two for adaptive).
    pub rungs: Vec<RungSummary>,
    /// Distinct grid cells scored (`cells.len()`).
    pub cells_total: usize,
    /// Cells whose performance was simulated on the full workload group —
    /// the quantity successive halving exists to shrink.
    pub cells_simulated_full: usize,
    /// True when this result came from the adaptive (successive-halving)
    /// search.
    pub adaptive: bool,
}

/// `a` dominates `b`: no worse on both axes, strictly better on one.
fn dominates(a: (f64, usize), b: (f64, usize)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

fn geomean_slowdown(cycles: &[u64], base: &[u64]) -> f64 {
    let n = cycles.len().max(1) as f64;
    let sum: f64 = cycles
        .iter()
        .zip(base)
        .map(|(&c, &b)| (c.max(1) as f64 / b.max(1) as f64).ln())
        .sum();
    (sum / n).exp()
}

/// The default frontier grid: the unsafe baseline and Cassandra, swept over
/// BTU geometry and Trace Cache miss penalty. Small enough for `run_all`,
/// and it pins the paper's headline: on crypto kernels Cassandra cells
/// dominate the unsafe baseline outright (faster *and* safer).
pub fn standard_grid() -> GridSweep {
    GridSweep::over([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
        .btu_entries([8, 32])
        .miss_penalties([10, 40])
}

/// Runs the frontier search over `workloads` with the session's shared
/// analysis store; `Ok(None)` when `cancel` stopped the run early.
///
/// `progress` is invoked after every completed simulation cell (baseline
/// reference runs included) with a fixed `cells_total`.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn frontier_with<P>(
    ev: &mut Evaluator,
    workloads: &[Workload],
    grid: &GridSweep,
    adaptive: Option<AdaptiveSearch>,
    cancel: &CancelToken,
    progress: P,
) -> Result<Option<FrontierResult>, IsaError>
where
    P: FnMut(FrontierProgress) + Send,
{
    frontier_with_threads(ev, workloads, grid, adaptive, cancel, progress, None)
}

/// [`frontier_with`] with an explicit worker-thread override for the
/// underlying sweeps (`Some(1)` forces the serial path; tests use this to
/// pin determinism across thread counts).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
#[allow(clippy::too_many_lines)]
pub fn frontier_with_threads<P>(
    ev: &mut Evaluator,
    workloads: &[Workload],
    grid: &GridSweep,
    adaptive: Option<AdaptiveSearch>,
    cancel: &CancelToken,
    mut progress: P,
    threads: Option<usize>,
) -> Result<Option<FrontierResult>, IsaError>
where
    P: FnMut(FrontierProgress) + Send,
{
    // Deduplicate same-labelled cells (labels derive from the
    // configuration, so equal labels mean equal cells) without registering
    // anything anywhere.
    let mut cells: Vec<DesignPoint> = Vec::new();
    for point in grid.design_points() {
        if !cells.iter().any(|c| c.label == point.label) {
            cells.push(point);
        }
    }
    let n_workloads = workloads.len();
    let n_cells = cells.len();
    if n_workloads == 0 || n_cells == 0 {
        return Ok(Some(FrontierResult {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            cells: Vec::new(),
            frontier: Vec::new(),
            rungs: Vec::new(),
            cells_total: 0,
            cells_simulated_full: 0,
            adaptive: adaptive.is_some(),
        }));
    }

    // Security proxy, once per distinct defense; every cell inherits its
    // defense's gadget-matrix leak count.
    let mut leaks_by_defense: BTreeMap<&'static str, usize> = BTreeMap::new();
    for cell in &cells {
        let mode = cell.config.defense;
        if leaks_by_defense.contains_key(mode.label()) {
            continue;
        }
        if cancel.is_cancelled() {
            return Ok(None);
        }
        let matrix = security::security_sweep_with(ev, &[mode])?;
        leaks_by_defense.insert(mode.label(), matrix.leak_count());
    }
    let cell_leaks: Vec<usize> = cells
        .iter()
        .map(|c| leaks_by_defense[c.config.defense.label()])
        .collect();

    // Rung plan. Survivor counts per security level depend only on level
    // sizes, so the total simulation count is fixed before the first cell.
    let smoke_len = adaptive.map(|a| a.resolved_smoke_len(n_workloads));
    let planned_full = match adaptive {
        None => n_cells,
        Some(a) => {
            let mut level_sizes: BTreeMap<usize, usize> = BTreeMap::new();
            for &leaks in &cell_leaks {
                *level_sizes.entry(leaks).or_insert(0) += 1;
            }
            level_sizes.values().map(|&size| a.kept_of(size)).sum()
        }
    };
    let cells_total_sims = match smoke_len {
        None => n_workloads + n_cells * n_workloads,
        Some(smoke) => n_workloads + n_cells * smoke + planned_full * (n_workloads - smoke),
    };

    let store = ev.shared_store();
    let executor = crate::eval::SweepExecutor::new(&store).with_threads(threads);
    let mut done = 0usize;

    // Streams one workload × design sub-matrix, appending cycle counts in
    // matrix order and reporting progress per cell.
    let mut run_sweep =
        |wl: &[Workload], designs: &[DesignPoint]| -> Result<Option<Vec<u64>>, IsaError> {
            let mut cycles = Vec::with_capacity(wl.len() * designs.len());
            let outcome = executor.sweep_stream(wl, designs, cancel, |record| {
                cycles.push(record.stats.cycles);
                done += 1;
                progress(FrontierProgress {
                    cells_done: done,
                    cells_total: cells_total_sims,
                });
                true
            })?;
            match outcome {
                SweepOutcome::Complete => Ok(Some(cycles)),
                SweepOutcome::Cancelled => Ok(None),
            }
        };

    // Baseline reference: UnsafeBaseline cycles per workload.
    let baseline = [DesignPoint::from_defense(DefenseMode::UnsafeBaseline)];
    let Some(base_cycles) = run_sweep(workloads, &baseline)? else {
        return Ok(None);
    };

    // Rungs. `full_slowdown[i]` is `Some` exactly when cell `i` was
    // simulated on the full group; `smoke_slowdown` covers every cell in
    // adaptive runs.
    let mut full_slowdown: Vec<Option<f64>> = vec![None; n_cells];
    let mut smoke_slowdown: Vec<f64> = Vec::new();
    let mut rungs: Vec<RungSummary> = Vec::new();

    match smoke_len {
        None => {
            let Some(cycles) = run_sweep(workloads, &cells)? else {
                return Ok(None);
            };
            for (i, slot) in full_slowdown.iter_mut().enumerate() {
                let per_workload: Vec<u64> = (0..n_workloads)
                    .map(|wi| cycles[wi * n_cells + i])
                    .collect();
                *slot = Some(geomean_slowdown(&per_workload, &base_cycles));
            }
            rungs.push(RungSummary {
                workloads: n_workloads,
                cells_in: n_cells,
                cells_kept: n_cells,
            });
        }
        Some(smoke) => {
            let search = adaptive.expect("smoke_len implies adaptive");
            // Rung 0: every cell on the smoke prefix.
            let Some(smoke_cycles) = run_sweep(&workloads[..smoke], &cells)? else {
                return Ok(None);
            };
            smoke_slowdown = (0..n_cells)
                .map(|i| {
                    let per_workload: Vec<u64> = (0..smoke)
                        .map(|wi| smoke_cycles[wi * n_cells + i])
                        .collect();
                    geomean_slowdown(&per_workload, &base_cycles[..smoke])
                })
                .collect();

            // Keep the top fraction per security level, smoke-fastest first
            // (ties broken by label for determinism).
            let mut by_level: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (i, &leaks) in cell_leaks.iter().enumerate() {
                by_level.entry(leaks).or_default().push(i);
            }
            let mut survivors: Vec<usize> = Vec::new();
            for members in by_level.values() {
                let mut ranked = members.clone();
                ranked.sort_by(|&a, &b| {
                    smoke_slowdown[a]
                        .total_cmp(&smoke_slowdown[b])
                        .then_with(|| cells[a].label.cmp(&cells[b].label))
                });
                survivors.extend(&ranked[..search.kept_of(members.len())]);
            }
            survivors.sort_unstable();
            debug_assert_eq!(survivors.len(), planned_full);
            rungs.push(RungSummary {
                workloads: smoke,
                cells_in: n_cells,
                cells_kept: survivors.len(),
            });

            // Rung 1: survivors on the rest of the group; smoke cycles are
            // reused, so the full-suite geomean matches the exhaustive one
            // bit for bit.
            let kept: Vec<DesignPoint> = survivors.iter().map(|&i| cells[i].clone()).collect();
            let rest_cycles = if smoke < n_workloads {
                match run_sweep(&workloads[smoke..], &kept)? {
                    Some(cycles) => cycles,
                    None => return Ok(None),
                }
            } else {
                Vec::new()
            };
            for (j, &i) in survivors.iter().enumerate() {
                let mut per_workload: Vec<u64> = (0..smoke)
                    .map(|wi| smoke_cycles[wi * n_cells + i])
                    .collect();
                per_workload
                    .extend((0..n_workloads - smoke).map(|wi| rest_cycles[wi * kept.len() + j]));
                full_slowdown[i] = Some(geomean_slowdown(&per_workload, &base_cycles));
            }
            rungs.push(RungSummary {
                workloads: n_workloads - smoke,
                cells_in: survivors.len(),
                cells_kept: survivors.len(),
            });
        }
    }

    // Dominance among full-suite cells.
    let full: Vec<usize> = (0..n_cells)
        .filter(|&i| full_slowdown[i].is_some())
        .collect();
    let coord = |i: usize| (full_slowdown[i].expect("full-suite cell"), cell_leaks[i]);
    let mut out_cells = Vec::with_capacity(n_cells);
    for i in 0..n_cells {
        let (slowdown, full_suite) = match full_slowdown[i] {
            Some(s) => (s, true),
            None => (smoke_slowdown[i], false),
        };
        let (mut dominates_n, mut dominated_by) = (0, 0);
        if full_suite {
            for &j in &full {
                if j == i {
                    continue;
                }
                if dominates(coord(i), coord(j)) {
                    dominates_n += 1;
                }
                if dominates(coord(j), coord(i)) {
                    dominated_by += 1;
                }
            }
        }
        out_cells.push(FrontierCell {
            label: cells[i].label.clone(),
            defense: cells[i].config.defense,
            geomean_slowdown: slowdown,
            security_leaks: cell_leaks[i],
            full_suite,
            on_frontier: full_suite && dominated_by == 0,
            dominates: dominates_n,
            dominated_by,
        });
    }

    let mut frontier: Vec<FrontierPoint> = out_cells
        .iter()
        .filter(|c| c.on_frontier)
        .map(|c| FrontierPoint {
            label: c.label.clone(),
            defense: c.defense,
            geomean_slowdown: c.geomean_slowdown,
            security_leaks: c.security_leaks,
        })
        .collect();
    frontier.sort_by(|a, b| {
        a.security_leaks
            .cmp(&b.security_leaks)
            .then_with(|| a.geomean_slowdown.total_cmp(&b.geomean_slowdown))
            .then_with(|| a.label.cmp(&b.label))
    });

    Ok(Some(FrontierResult {
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        cells: out_cells,
        frontier,
        rungs,
        cells_total: n_cells,
        cells_simulated_full: full.len(),
        adaptive: adaptive.is_some(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_kernels::suite;

    fn quick() -> Vec<Workload> {
        vec![suite::chacha20_workload(64), suite::des_workload(4)]
    }

    fn run(
        grid: &GridSweep,
        adaptive: Option<AdaptiveSearch>,
    ) -> (FrontierResult, Vec<FrontierProgress>) {
        let mut ev = Evaluator::new();
        let mut seen = Vec::new();
        let result = frontier_with(
            &mut ev,
            &quick(),
            grid,
            adaptive,
            &CancelToken::new(),
            |p| seen.push(p),
        )
        .unwrap()
        .expect("not cancelled");
        (result, seen)
    }

    #[test]
    fn exhaustive_frontier_is_non_dominated_and_security_diverse() {
        let (result, progress) = run(&standard_grid(), None);
        assert_eq!(result.cells_total, result.cells.len());
        assert_eq!(result.cells_simulated_full, result.cells_total);
        assert!(!result.adaptive);
        assert_eq!(result.rungs.len(), 1);
        // Every cell is full-suite; frontier cells are exactly the
        // non-dominated ones.
        for cell in &result.cells {
            assert!(cell.full_suite);
            assert_eq!(cell.on_frontier, cell.dominated_by == 0, "{}", cell.label);
        }
        // On crypto kernels Cassandra is both faster and safer than the
        // unsafe baseline (the paper's headline result), so every baseline
        // cell is strictly dominated and the frontier is Cassandra-only.
        for cell in &result.cells {
            if cell.defense == DefenseMode::UnsafeBaseline {
                assert!(cell.dominated_by >= 1, "{}", cell.label);
                assert!(!cell.on_frontier, "{}", cell.label);
            }
        }
        assert!(result
            .frontier
            .iter()
            .all(|p| p.defense == DefenseMode::Cassandra));
        assert!(!result.frontier.is_empty());
        // Progress counted every simulation with a fixed total.
        let total = quick().len() * (1 + result.cells_total);
        assert_eq!(progress.len(), total);
        assert_eq!(progress.last().unwrap().cells_done, total);
        assert!(progress.iter().all(|p| p.cells_total == total));
    }

    #[test]
    fn adaptive_skips_full_suite_cells_but_keeps_the_frontier() {
        let adaptive = AdaptiveSearch {
            keep_fraction: 0.5,
            smoke_len: 1,
        };
        let (exhaustive, _) = run(&standard_grid(), None);
        let (halved, _) = run(&standard_grid(), Some(adaptive));
        assert!(halved.adaptive);
        assert_eq!(halved.rungs.len(), 2);
        assert!(
            halved.cells_simulated_full < exhaustive.cells_simulated_full,
            "halving must save full-suite cells ({} vs {})",
            halved.cells_simulated_full,
            exhaustive.cells_simulated_full
        );
        assert_eq!(halved.frontier, exhaustive.frontier);
    }

    #[test]
    fn cancelled_runs_return_none() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut ev = Evaluator::new();
        let result =
            frontier_with(&mut ev, &quick(), &standard_grid(), None, &cancel, |_| {}).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn empty_grids_and_workload_sets_yield_empty_results() {
        let mut ev = Evaluator::new();
        let empty = frontier_with(
            &mut ev,
            &quick(),
            &GridSweep::default(),
            None,
            &CancelToken::new(),
            |_| {},
        )
        .unwrap()
        .unwrap();
        assert!(empty.cells.is_empty() && empty.frontier.is_empty());
        let no_workloads = frontier_with(
            &mut ev,
            &[],
            &standard_grid(),
            None,
            &CancelToken::new(),
            |_| {},
        )
        .unwrap()
        .unwrap();
        assert_eq!(no_workloads.cells_total, 0);
    }

    #[test]
    fn dominance_is_strict_in_at_least_one_axis() {
        assert!(dominates((1.0, 1), (2.0, 1)));
        assert!(dominates((1.0, 1), (1.0, 2)));
        assert!(!dominates((1.0, 1), (1.0, 1)), "ties dominate nothing");
        assert!(
            !dominates((0.5, 3), (1.0, 1)),
            "axis trade-offs are incomparable"
        );
    }
}
