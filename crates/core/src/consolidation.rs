//! The consolidation experiment: N-tenant multiprogramming on one core.
//!
//! The paper's deployment story packs many mutually-distrusting crypto
//! services onto one physical core; this experiment measures what that
//! costs. A mix of tenants (cycled from the session's workload suite) is
//! round-robined over one shared pipeline and Branch Trace Unit by
//! [`cassandra_cpu::multi::MultiTenantSimulator`], under each of the three
//! switch policies the repo models:
//!
//! * `flush` — plain Cassandra, one shared Trace Cache partition; every
//!   context switch degrades to a whole-unit flush (the paper's Q4 model);
//! * `partition` — Cassandra-part, the Trace Cache way-partitioned per
//!   context with the documented furthest-from-active steal victim;
//! * `scheduler` — Cassandra-part with OS-scheduler-driven victim choice:
//!   the context with the smallest observed BTU working set loses its
//!   partition.
//!
//! Each tenant's consolidation slowdown is its attributed cycles over a solo
//! run of the same workload under the same defense; per-context BTU
//! hit/steal/eviction statistics come straight from the shared unit.

use crate::eval::Evaluator;
use cassandra_btu::unit::ContextBtuStats;
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_cpu::multi::{simulate_multi, SwitchPolicy, Tenant};
use cassandra_isa::error::IsaError;
use cassandra_kernels::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default tenant count of the standard registry experiment (the smallest
/// mix the acceptance bar calls "consolidated").
pub const CONSOLIDATION_TENANTS: usize = 4;

/// Default scheduling quantum (committed instructions per turn).
pub const CONSOLIDATION_QUANTUM: u64 = 5_000;

/// The (switch policy, defense) pairs the experiment sweeps, in reporting
/// order.
pub const CONSOLIDATION_POLICIES: [(SwitchPolicy, DefenseMode); 3] = [
    (SwitchPolicy::Flush, DefenseMode::Cassandra),
    (SwitchPolicy::Partition, DefenseMode::CassandraPartitioned),
    (SwitchPolicy::WorkingSet, DefenseMode::CassandraPartitioned),
];

/// One tenant's row of a consolidated run: its share of the core and its
/// view of the shared BTU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationTenantRow {
    /// Workload name of this tenant's program.
    pub workload: String,
    /// The tenant's context id (its slot in the mix).
    pub context: u64,
    /// Instructions the tenant committed.
    pub committed_instructions: u64,
    /// Core cycles attributed to this tenant's quanta.
    pub attributed_cycles: u64,
    /// Cycles of a solo run of the same workload under the same defense.
    pub solo_cycles: u64,
    /// Consolidation slowdown: attributed over solo cycles (1.0 = free).
    pub slowdown: f64,
    /// The shared BTU's per-context statistics for this tenant.
    pub btu: ContextBtuStats,
}

/// The consolidated mix evaluated under one switch policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationPolicyResult {
    /// Switch-policy label (`flush`, `partition`, `scheduler`).
    pub policy: String,
    /// The defense the mix ran under.
    pub defense: DefenseMode,
    /// Context switches the scheduler performed.
    pub context_switches: u64,
    /// Whole-core cycles of the consolidated run.
    pub total_cycles: u64,
    /// Geometric-mean per-tenant slowdown vs solo.
    pub geomean_slowdown: f64,
    /// Per-tenant rows, indexed by context id.
    pub tenants: Vec<ConsolidationTenantRow>,
}

/// The full consolidation experiment: one tenant mix × every switch policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationResult {
    /// Tenants in the mix.
    pub tenant_count: usize,
    /// Scheduling quantum (committed instructions per turn).
    pub quantum: u64,
    /// One result per swept (policy, defense) pair.
    pub policies: Vec<ConsolidationPolicyResult>,
}

/// Runs the consolidation experiment through an evaluation session: a
/// `tenant_count`-tenant mix cycled from `workloads`, scheduled with
/// `quantum`-instruction turns, under every [`CONSOLIDATION_POLICIES`]
/// pair. Solo baselines reuse the session's memoized analyses.
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn consolidation_with(
    ev: &mut Evaluator,
    workloads: &[Workload],
    tenant_count: usize,
    quantum: u64,
) -> Result<ConsolidationResult, IsaError> {
    let quantum = quantum.max(1);
    let mut result = ConsolidationResult {
        tenant_count,
        quantum,
        policies: Vec::new(),
    };
    if workloads.is_empty() || tenant_count == 0 {
        return Ok(result);
    }
    // The mix cycles the suite so any suite size yields `tenant_count`
    // tenants; repeated programs share one analysis through the session.
    let picks: Vec<&Workload> = (0..tenant_count)
        .map(|i| &workloads[i % workloads.len()])
        .collect();
    let analyses = picks
        .iter()
        .map(|w| ev.analysis(w))
        .collect::<Result<Vec<_>, _>>()?;
    let budget = picks
        .iter()
        .map(|w| w.kernel.step_limit)
        .max()
        .unwrap_or_default();

    for (policy, defense) in CONSOLIDATION_POLICIES {
        let solo_cfg = CpuConfig::golden_cove_like().with_defense(defense);
        let mut cfg = solo_cfg.with_btu_flush_interval(quantum);
        cfg.max_instructions = cfg.max_instructions.max(budget);
        let tenants: Vec<Tenant<'_>> = picks
            .iter()
            .zip(&analyses)
            .map(|(w, a)| Tenant {
                program: &w.kernel.program,
                traces: Some(a.encoded.clone()),
            })
            .collect();
        let btu = defense.uses_btu().then(|| analyses[0].make_btu(&cfg));
        let outcome = simulate_multi(tenants, cfg, policy, btu)?;

        // Solo baselines, one per distinct workload in the mix.
        let mut solo: HashMap<&str, u64> = HashMap::new();
        for w in &picks {
            if !solo.contains_key(w.name.as_str()) {
                let cycles = ev.simulate_cached(w, &solo_cfg)?.stats.cycles;
                solo.insert(w.name.as_str(), cycles);
            }
        }

        let mut log_sum = 0.0;
        let tenants: Vec<ConsolidationTenantRow> = picks
            .iter()
            .zip(&outcome.tenants)
            .map(|(w, t)| {
                let solo_cycles = solo[w.name.as_str()];
                let slowdown = t.attributed_cycles as f64 / solo_cycles.max(1) as f64;
                log_sum += slowdown.max(f64::MIN_POSITIVE).ln();
                let btu = outcome
                    .context_stats(t.context)
                    .copied()
                    .unwrap_or(ContextBtuStats {
                        context: t.context,
                        ..ContextBtuStats::default()
                    });
                ConsolidationTenantRow {
                    workload: w.name.clone(),
                    context: t.context,
                    committed_instructions: t.committed_instructions,
                    attributed_cycles: t.attributed_cycles,
                    solo_cycles,
                    slowdown,
                    btu,
                }
            })
            .collect();
        result.policies.push(ConsolidationPolicyResult {
            policy: policy.label().to_string(),
            defense,
            context_switches: outcome.stats.context_switches,
            total_cycles: outcome.stats.cycles,
            geomean_slowdown: (log_sum / tenants.len().max(1) as f64).exp(),
            tenants,
        });
    }
    Ok(result)
}

/// Runs the consolidation experiment on a one-shot session with the default
/// mix size and quantum (shim; prefer [`consolidation_with`]).
///
/// # Errors
///
/// Propagates analysis or simulation errors.
pub fn consolidation(workloads: &[Workload]) -> Result<ConsolidationResult, IsaError> {
    consolidation_with(
        &mut Evaluator::new(),
        workloads,
        CONSOLIDATION_TENANTS,
        CONSOLIDATION_QUANTUM,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_workloads;

    #[test]
    fn consolidation_covers_every_policy_and_tenant() {
        let workloads = quick_workloads();
        let mut ev = Evaluator::builder().workloads(workloads).build();
        let workloads = ev.shared_workloads();
        let result = consolidation_with(&mut ev, &workloads, 4, 2_000).unwrap();
        assert_eq!(result.tenant_count, 4);
        assert_eq!(result.policies.len(), 3);
        assert_eq!(
            result
                .policies
                .iter()
                .map(|p| p.policy.as_str())
                .collect::<Vec<_>>(),
            ["flush", "partition", "scheduler"]
        );
        for policy in &result.policies {
            assert_eq!(policy.tenants.len(), 4);
            assert!(
                policy.context_switches > 0,
                "{}: a 4-tenant mix must switch",
                policy.policy
            );
            for t in &policy.tenants {
                assert!(t.committed_instructions > 0, "{}", t.workload);
                assert!(t.solo_cycles > 0, "{}", t.workload);
                assert!(
                    t.slowdown.is_finite() && t.slowdown > 0.0,
                    "{}: slowdown {}",
                    t.workload,
                    t.slowdown
                );
                assert!(
                    t.btu.lookups > 0,
                    "{}: context {} must replay through the BTU",
                    t.workload,
                    t.context
                );
                let rate = t.btu.hit_rate();
                assert!((0.0..=1.0).contains(&rate), "hit rate {rate}");
            }
            assert!(policy.geomean_slowdown.is_finite());
        }
        // Solo baselines ran through the session cache: four distinct
        // programs analyzed once each, everything else a hit.
        assert_eq!(ev.cache_stats().misses, 4);
    }

    #[test]
    fn empty_inputs_yield_an_empty_result() {
        let mut ev = Evaluator::new();
        let result = consolidation_with(&mut ev, &[], 4, 1_000).unwrap();
        assert!(result.policies.is_empty());
        let workloads = quick_workloads();
        let result = consolidation_with(&mut ev, &workloads, 0, 1_000).unwrap();
        assert!(result.policies.is_empty());
    }
}
