//! The static-lint experiment: per-workload constant-time and
//! speculative-leakage verdicts from the [`cassandra_analysis`] static
//! analyzer, served through the shared
//! [`AnalysisStore`](crate::eval::AnalysisStore) so each distinct program is
//! linted at most once per store, however many sessions or server requests
//! ask for it.
//!
//! The verdicts over-approximate: a `ct-clean` row is a guarantee (no
//! secret-dependent branch condition or access address exists on any
//! architectural or bounded wrong-path execution the analyzer models),
//! while `arch-leak`/`transient-leak` rows may include false positives.
//! The differential tests in `tests/static_differential.rs` pin the
//! direction: every leak the dynamic security sweep observes must be
//! statically flagged, never the converse.

use crate::eval::Evaluator;
use cassandra_analysis::{StaticReport, StaticVerdict};
use cassandra_kernels::workload::{Workload, WorkloadGroup};
use serde::{Deserialize, Serialize};

/// One row of the lint table: a workload's static verdict plus the summary
/// counters that explain it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintRow {
    /// Workload name (unique within a suite).
    pub workload: String,
    /// Workload grouping (paper table / synthetic family).
    pub group: WorkloadGroup,
    /// The headline verdict: `ct-clean`, `arch-leak` or `transient-leak`.
    pub verdict: StaticVerdict,
    /// Static instruction count of the kernel program.
    pub instructions: usize,
    /// Conditional branches in the program.
    pub conditional_branches: usize,
    /// Conditional branches whose condition is secret-tainted somewhere.
    pub tainted_branches: usize,
    /// Findings on architecturally reachable paths.
    pub arch_findings: usize,
    /// Findings reachable only inside speculative wrong-path windows.
    pub transient_findings: usize,
}

impl LintRow {
    /// Builds a row from a workload and its static report.
    pub fn from_report(workload: &Workload, report: &StaticReport) -> Self {
        LintRow {
            workload: workload.name.clone(),
            group: workload.group,
            verdict: report.verdict(),
            instructions: report.instructions,
            conditional_branches: report.conditional_branches,
            tainted_branches: report.tainted_branches.len(),
            arch_findings: report.arch_findings().count(),
            transient_findings: report.transient_findings().count(),
        }
    }
}

/// Lints every workload through the session's shared store and returns one
/// row per workload, in input order.
pub fn lint_with(ev: &mut Evaluator, workloads: &[Workload]) -> Vec<LintRow> {
    workloads
        .iter()
        .map(|w| LintRow::from_report(w, &ev.lint_workload(w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_kernels::suite;

    #[test]
    fn lint_rows_summarize_the_reports_and_memoize() {
        let ev = Evaluator::new();
        let w = suite::chacha20_workload(64);
        let first = ev.lint_workload(&w);
        let again = ev.lint_workload(&w);
        assert!(
            std::sync::Arc::ptr_eq(&first, &again),
            "repeat lints must be served from the store"
        );
        let row = LintRow::from_report(&w, &first);
        assert_eq!(row.verdict, StaticVerdict::CtClean);
        assert_eq!(row.workload, w.name);
        assert!(row.instructions > 0);
        assert!(row.conditional_branches >= row.tainted_branches);
    }

    #[test]
    fn lint_does_not_touch_algorithm2_counters() {
        let mut ev = Evaluator::builder()
            .workloads([suite::chacha20_workload(64), suite::des_workload(4)])
            .build();
        let workloads = ev.shared_workloads();
        let rows = lint_with(&mut ev, &workloads);
        assert_eq!(rows.len(), 2);
        let stats = ev.cache_stats();
        assert_eq!(stats.misses, 0, "static lint must never run Algorithm 2");
        assert_eq!(ev.analyzed_programs(), 0);
        assert_eq!(ev.shared_store().linted_programs(), 2);
    }
}
