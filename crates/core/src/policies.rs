//! The defense-policy registry.
//!
//! A registered policy is a named [`DesignPoint`]: a label plus the complete
//! [`CpuConfig`](cassandra_cpu::config::CpuConfig) that realises it. The
//! [`PolicyRegistry`] is how sweeps, the security experiment, reports and
//! the example binaries enumerate the modelled defense scenarios — instead
//! of hand-listing `DefenseMode` variants at every call site. The standard
//! registry holds one entry per [`DefenseMode::ALL`] element; custom
//! scenarios (different BTU geometry, memory latency, flush intervals, …)
//! are additional registrations, exactly like the experiment registry of
//! [`crate::registry`].

use crate::eval::DesignPoint;
use cassandra_cpu::config::DefenseMode;

/// An enumerable, label-addressed collection of defense design points.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRegistry {
    designs: Vec<DesignPoint>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PolicyRegistry {
            designs: Vec::new(),
        }
    }

    /// One design point per modelled defense, over the Table-3 baseline, in
    /// [`DefenseMode::ALL`] reporting order.
    pub fn standard() -> Self {
        let mut registry = Self::new();
        for mode in DefenseMode::ALL {
            registry.register(DesignPoint::from_defense(mode));
        }
        registry
    }

    /// Adds a design point, replacing any previous one with the same label.
    pub fn register(&mut self, design: DesignPoint) {
        self.designs.retain(|d| d.label != design.label);
        self.designs.push(design);
    }

    /// The registered design points, in registration order.
    pub fn designs(&self) -> &[DesignPoint] {
        &self.designs
    }

    /// The defense of every registered design, in order (for drivers that
    /// take plain `DefenseMode` lists).
    pub fn defenses(&self) -> Vec<DefenseMode> {
        self.designs.iter().map(|d| d.config.defense).collect()
    }

    /// The registered labels, in order.
    pub fn labels(&self) -> Vec<&str> {
        self.designs.iter().map(|d| d.label.as_str()).collect()
    }

    /// Looks up a design point by its label (the same string
    /// `DefenseMode::label` / `CpuConfig::design_label` produce).
    pub fn get(&self, label: &str) -> Option<&DesignPoint> {
        self.designs.iter().find(|d| d.label == label)
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// True if no policy is registered.
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl IntoIterator for PolicyRegistry {
    type Item = DesignPoint;
    type IntoIter = std::vec::IntoIter<DesignPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.designs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_cpu::config::CpuConfig;

    #[test]
    fn standard_registry_covers_every_mode() {
        let registry = PolicyRegistry::standard();
        assert_eq!(registry.len(), DefenseMode::ALL.len());
        for mode in DefenseMode::ALL {
            let design = registry
                .get(mode.label())
                .unwrap_or_else(|| panic!("missing policy {}", mode.label()));
            assert_eq!(design.config.defense, mode);
        }
        assert_eq!(registry.defenses(), DefenseMode::ALL.to_vec());
    }

    #[test]
    fn register_replaces_by_label() {
        let mut registry = PolicyRegistry::standard();
        let n = registry.len();
        let tweaked = DesignPoint::new(
            "Cassandra",
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_memory_latency(500),
        );
        registry.register(tweaked.clone());
        assert_eq!(registry.len(), n);
        assert_eq!(registry.get("Cassandra"), Some(&tweaked));
    }

    #[test]
    fn custom_scenarios_extend_the_enumeration() {
        let mut registry = PolicyRegistry::standard();
        let custom = DesignPoint::from_config(
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_btu_flush_interval(5_000),
        );
        registry.register(custom.clone());
        assert!(registry.labels().contains(&"Cassandra+flush5000"));
        assert_eq!(registry.into_iter().last(), Some(custom));
    }
}
