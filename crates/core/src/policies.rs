//! The defense-policy registry and grid-sweep expansion.
//!
//! A registered policy is a named [`DesignPoint`]: a label plus the complete
//! [`CpuConfig`] that realises it. The
//! [`PolicyRegistry`] is how sweeps, the security experiment, reports and
//! the example binaries enumerate the modelled defense scenarios — instead
//! of hand-listing `DefenseMode` variants at every call site. The standard
//! registry holds one entry per [`DefenseMode::ALL`] element; custom
//! scenarios (different BTU geometry, memory latency, flush intervals, …)
//! are additional registrations, exactly like the experiment registry of
//! [`crate::registry`].
//!
//! [`GridSweep`] generates those custom registrations in bulk: a grid
//! specification over the policy-parameterised knobs (tournament promotion
//! threshold, BTU partition count, BTU geometry, Trace Cache miss penalty,
//! mispredict redirect penalty) expands into one design point per grid cell,
//! so fig7-style sensitivity frontiers come from a single sweep invocation
//! instead of hand-built config lists.

use crate::eval::DesignPoint;
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A label collision between two *different* configurations (see
/// [`PolicyRegistry::register_all`]): the registered design point under
/// that label does not match the one being added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyConflict {
    /// The contested label.
    pub label: String,
}

impl fmt::Display for PolicyConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy `{}` is already registered with a different configuration",
            self.label
        )
    }
}

impl std::error::Error for PolicyConflict {}

/// An enumerable, label-addressed collection of defense design points.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRegistry {
    designs: Vec<DesignPoint>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PolicyRegistry {
            designs: Vec::new(),
        }
    }

    /// One design point per modelled defense, over the Table-3 baseline, in
    /// [`DefenseMode::ALL`] reporting order.
    ///
    /// ```
    /// use cassandra_core::policies::PolicyRegistry;
    /// use cassandra_cpu::config::DefenseMode;
    ///
    /// let registry = PolicyRegistry::standard();
    /// assert_eq!(registry.len(), DefenseMode::ALL.len());
    /// let cassandra = registry.get("Cassandra").expect("registered");
    /// assert_eq!(cassandra.config.defense, DefenseMode::Cassandra);
    /// ```
    pub fn standard() -> Self {
        let mut registry = Self::new();
        for mode in DefenseMode::ALL {
            registry.register(DesignPoint::from_defense(mode));
        }
        registry
    }

    /// Adds a design point, replacing any previous one with the same label.
    pub fn register(&mut self, design: DesignPoint) {
        self.designs.retain(|d| d.label != design.label);
        self.designs.push(design);
    }

    /// Adds every design point of `designs` **without** the replacement
    /// semantics of [`PolicyRegistry::register`]: re-registering an
    /// *identical* design point is a no-op, while a same-labelled point
    /// with a different configuration is rejected — nothing silently
    /// overwrites an entry other requests may already address by label
    /// (the server folds every `GridSweep` expansion in through here).
    /// Returns the number of newly added entries.
    ///
    /// The check is atomic: on conflict the registry is left untouched.
    ///
    /// # Errors
    ///
    /// [`PolicyConflict`] naming the first contested label.
    pub fn register_all(
        &mut self,
        designs: impl IntoIterator<Item = DesignPoint>,
    ) -> Result<usize, PolicyConflict> {
        let mut fresh: Vec<DesignPoint> = Vec::new();
        for design in designs {
            let existing = self
                .designs
                .iter()
                .chain(fresh.iter())
                .find(|d| d.label == design.label);
            match existing {
                Some(d) if *d == design => {} // identical re-registration: no-op
                Some(_) => {
                    return Err(PolicyConflict {
                        label: design.label,
                    })
                }
                None => fresh.push(design),
            }
        }
        let added = fresh.len();
        self.designs.extend(fresh);
        Ok(added)
    }

    /// The registered design points, in registration order.
    pub fn designs(&self) -> &[DesignPoint] {
        &self.designs
    }

    /// The defense of every registered design, in order (for drivers that
    /// take plain `DefenseMode` lists).
    pub fn defenses(&self) -> Vec<DefenseMode> {
        self.designs.iter().map(|d| d.config.defense).collect()
    }

    /// The registered labels, in order.
    pub fn labels(&self) -> Vec<&str> {
        self.designs.iter().map(|d| d.label.as_str()).collect()
    }

    /// Looks up a design point by its label (the same string
    /// `DefenseMode::label` / `CpuConfig::design_label` produce).
    pub fn get(&self, label: &str) -> Option<&DesignPoint> {
        self.designs.iter().find(|d| d.label == label)
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// True if no policy is registered.
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl IntoIterator for PolicyRegistry {
    type Item = DesignPoint;
    type IntoIter = std::vec::IntoIter<DesignPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.designs.into_iter()
    }
}

// -------------------------------------------------------------- grid sweeps

/// A sensitivity-sweep grid over the policy-parameterised knobs.
///
/// Each axis is a list of values to sweep; an **empty axis means "keep the
/// Table-3 baseline value"** and contributes exactly one (non-)setting, so
/// the expansion size is the product of the non-empty axes times the number
/// of base defenses. Expansion is deterministic: defenses vary slowest, then
/// (in order) tournament threshold, BTU partitions, BTU entries, miss
/// penalty and redirect penalty. Labels come from
/// [`CpuConfig::design_label`], so every grid cell is self-describing
/// (`Tournament+thr8+btu8`, `Cassandra+miss40+redir12`, …) and two cells
/// that resolve to the same configuration collapse onto one registry entry.
///
/// The threshold and partition axes act through
/// [`CpuConfig::with_tournament_threshold`] /
/// [`CpuConfig::with_btu_partitions`]: they override the policy the defense
/// derives, and are simply ignored by frontends that never read them (a
/// `Fence` point with a tournament threshold prices identically to plain
/// `Fence`).
///
/// ```
/// use cassandra_core::policies::GridSweep;
/// use cassandra_cpu::config::DefenseMode;
///
/// let grid = GridSweep::over([DefenseMode::Tournament])
///     .tournament_thresholds([2, 8])
///     .btu_entries([8, 16]);
/// assert_eq!(grid.len(), 4);
///
/// let registry = grid.expand();
/// assert_eq!(
///     registry.labels(),
///     [
///         "Tournament+btu8+thr2",
///         "Tournament+thr2",
///         "Tournament+btu8+thr8",
///         "Tournament+thr8",
///     ]
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GridSweep {
    /// Base defenses expanded at every grid cell.
    pub defenses: Vec<DefenseMode>,
    /// Tournament promotion-threshold axis.
    pub tournament_thresholds: Vec<u32>,
    /// BTU partition-count axis.
    pub btu_partitions: Vec<usize>,
    /// BTU entry-count (geometry) axis.
    pub btu_entries: Vec<usize>,
    /// Trace Cache miss-penalty axis (cycles).
    pub miss_penalties: Vec<u64>,
    /// Mispredict redirect-penalty axis (cycles).
    pub redirect_penalties: Vec<u64>,
}

impl GridSweep {
    /// A grid over `defenses` with every axis at its baseline value.
    pub fn over(defenses: impl IntoIterator<Item = DefenseMode>) -> Self {
        GridSweep {
            defenses: defenses.into_iter().collect(),
            ..GridSweep::default()
        }
    }

    /// Sweeps the tournament promotion threshold over `values`.
    #[must_use]
    pub fn tournament_thresholds(mut self, values: impl IntoIterator<Item = u32>) -> Self {
        self.tournament_thresholds = values.into_iter().collect();
        self
    }

    /// Sweeps the BTU partition count over `values`.
    #[must_use]
    pub fn btu_partitions(mut self, values: impl IntoIterator<Item = usize>) -> Self {
        self.btu_partitions = values.into_iter().collect();
        self
    }

    /// Sweeps the BTU entry count over `values`.
    #[must_use]
    pub fn btu_entries(mut self, values: impl IntoIterator<Item = usize>) -> Self {
        self.btu_entries = values.into_iter().collect();
        self
    }

    /// Sweeps the Trace Cache miss penalty over `values`.
    #[must_use]
    pub fn miss_penalties(mut self, values: impl IntoIterator<Item = u64>) -> Self {
        self.miss_penalties = values.into_iter().collect();
        self
    }

    /// Sweeps the mispredict redirect penalty over `values`.
    #[must_use]
    pub fn redirect_penalties(mut self, values: impl IntoIterator<Item = u64>) -> Self {
        self.redirect_penalties = values.into_iter().collect();
        self
    }

    /// Number of grid cells (before same-label collapsing).
    pub fn len(&self) -> usize {
        fn axis(len: usize) -> usize {
            len.max(1)
        }
        self.defenses.len()
            * axis(self.tournament_thresholds.len())
            * axis(self.btu_partitions.len())
            * axis(self.btu_entries.len())
            * axis(self.miss_penalties.len())
            * axis(self.redirect_penalties.len())
    }

    /// True if the grid has no base defense (and therefore expands to
    /// nothing).
    pub fn is_empty(&self) -> bool {
        self.defenses.is_empty()
    }

    /// The grid cells as design points, in expansion order (defense-major).
    pub fn design_points(&self) -> Vec<DesignPoint> {
        fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().copied().map(Some).collect()
            }
        }
        let thresholds = axis(&self.tournament_thresholds);
        let partitions = axis(&self.btu_partitions);
        let entries = axis(&self.btu_entries);
        let misses = axis(&self.miss_penalties);
        let redirects = axis(&self.redirect_penalties);

        let mut points = Vec::with_capacity(self.len());
        for &defense in &self.defenses {
            for &thr in &thresholds {
                for &part in &partitions {
                    for &ent in &entries {
                        for &miss in &misses {
                            for &redir in &redirects {
                                let mut cfg = CpuConfig::golden_cove_like().with_defense(defense);
                                if let Some(t) = thr {
                                    cfg = cfg.with_tournament_threshold(t);
                                }
                                if let Some(p) = part {
                                    cfg = cfg.with_btu_partitions(p);
                                }
                                if let Some(e) = ent {
                                    cfg = cfg.with_btu_entries(e);
                                }
                                if let Some(m) = miss {
                                    cfg = cfg.with_btu_miss_penalty(m);
                                }
                                if let Some(r) = redir {
                                    cfg = cfg.with_mispredict_redirect_penalty(r);
                                }
                                points.push(DesignPoint::from_config(cfg));
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Expands the grid into a registry (same-labelled cells collapse:
    /// labels derive from the configuration, so equal labels mean equal
    /// cells).
    pub fn expand(&self) -> PolicyRegistry {
        let mut registry = PolicyRegistry::new();
        for point in self.design_points() {
            registry.register(point);
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_cpu::config::CpuConfig;

    #[test]
    fn standard_registry_covers_every_mode() {
        let registry = PolicyRegistry::standard();
        assert_eq!(registry.len(), DefenseMode::ALL.len());
        for mode in DefenseMode::ALL {
            let design = registry
                .get(mode.label())
                .unwrap_or_else(|| panic!("missing policy {}", mode.label()));
            assert_eq!(design.config.defense, mode);
        }
        assert_eq!(registry.defenses(), DefenseMode::ALL.to_vec());
    }

    #[test]
    fn register_replaces_by_label() {
        let mut registry = PolicyRegistry::standard();
        let n = registry.len();
        let tweaked = DesignPoint::new(
            "Cassandra",
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_memory_latency(500),
        );
        registry.register(tweaked.clone());
        assert_eq!(registry.len(), n);
        assert_eq!(registry.get("Cassandra"), Some(&tweaked));
    }

    #[test]
    fn register_all_is_idempotent_but_rejects_conflicts() {
        let mut registry = PolicyRegistry::standard();
        let n = registry.len();

        // Re-registering identical design points (an overlapping grid
        // re-submission) is a no-op…
        let added = registry
            .register_all([
                DesignPoint::from_defense(DefenseMode::Cassandra),
                DesignPoint::from_defense(DefenseMode::Fence),
            ])
            .unwrap();
        assert_eq!(added, 0);
        assert_eq!(registry.len(), n);

        // …new labels are added…
        let custom = DesignPoint::from_config(
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_btu_entries(8),
        );
        assert_eq!(registry.register_all([custom.clone()]).unwrap(), 1);
        assert_eq!(registry.len(), n + 1);

        // …and a same-labelled point with a different configuration is a
        // conflict that leaves the registry untouched (atomically: the
        // batch's valid entries are not applied either).
        let conflicting = DesignPoint::new(
            "Cassandra",
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_memory_latency(500),
        );
        let fresh = DesignPoint::from_config(
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_btu_entries(32),
        );
        let err = registry
            .register_all([fresh.clone(), conflicting])
            .unwrap_err();
        assert_eq!(err.label, "Cassandra");
        assert!(err.to_string().contains("different configuration"));
        assert_eq!(registry.len(), n + 1, "conflicting batch left no residue");
        assert!(registry.get(&fresh.label).is_none());
        assert_eq!(
            registry.get("Cassandra"),
            Some(&DesignPoint::from_defense(DefenseMode::Cassandra)),
            "the original registration survives"
        );

        // A batch that collides with itself is also a conflict.
        let err = registry
            .register_all([
                DesignPoint::new("dup", CpuConfig::golden_cove_like()),
                DesignPoint::new(
                    "dup",
                    CpuConfig::golden_cove_like().with_memory_latency(123),
                ),
            ])
            .unwrap_err();
        assert_eq!(err.label, "dup");
        assert!(registry.get("dup").is_none());
    }

    #[test]
    fn grid_sweep_expands_the_axis_product() {
        let grid = GridSweep::over([DefenseMode::Cassandra, DefenseMode::Tournament])
            .miss_penalties([10, 20, 40])
            .redirect_penalties([6, 12]);
        assert_eq!(grid.len(), 12);
        let points = grid.design_points();
        assert_eq!(points.len(), 12);
        // Defense-major, then miss penalty, then redirect penalty.
        assert_eq!(points[0].config.defense, DefenseMode::Cassandra);
        assert_eq!(points[0].config.btu.miss_penalty, 10);
        assert_eq!(points[0].config.mispredict_redirect_penalty, 6);
        assert_eq!(points[1].config.mispredict_redirect_penalty, 12);
        assert_eq!(points[6].config.defense, DefenseMode::Tournament);
        // Baseline values (miss 20, redirect 6) contribute no suffix.
        assert_eq!(points[2].label, "Cassandra");
        assert_eq!(points[11].label, "Tournament+redir12+miss40");
    }

    #[test]
    fn grid_sweep_cells_collapse_by_label_on_expand() {
        // Overriding Cassandra-part's partition count with its own default
        // (2) resolves to the registered baseline config: both cells share
        // one label and the expansion dedupes them.
        let grid = GridSweep::over([DefenseMode::CassandraPartitioned]).btu_partitions([2, 4]);
        assert_eq!(grid.len(), 2);
        let registry = grid.expand();
        assert_eq!(
            registry.labels(),
            ["Cassandra-part", "Cassandra-part+part4"]
        );
        let baseline = registry.get("Cassandra-part").unwrap();
        assert_eq!(
            baseline.config.resolved_policy(),
            DefenseMode::CassandraPartitioned.policy()
        );
    }

    #[test]
    fn empty_grid_expands_to_nothing() {
        let grid = GridSweep::default().tournament_thresholds([1, 2, 3]);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.expand().is_empty());
    }

    #[test]
    fn grid_sweep_round_trips_through_serde() {
        let grid = GridSweep::over([DefenseMode::Tournament])
            .tournament_thresholds([2, 8])
            .btu_partitions([1, 2])
            .btu_entries([8])
            .miss_penalties([40])
            .redirect_penalties([12]);
        let json = serde_json::to_string(&grid).unwrap();
        let back: GridSweep = serde_json::from_str(&json).unwrap();
        assert_eq!(back, grid);
        assert_eq!(back.expand().labels(), grid.expand().labels());
    }

    #[test]
    fn custom_scenarios_extend_the_enumeration() {
        let mut registry = PolicyRegistry::standard();
        let custom = DesignPoint::from_config(
            CpuConfig::golden_cove_like()
                .with_defense(DefenseMode::Cassandra)
                .with_btu_flush_interval(5_000),
        );
        registry.register(custom.clone());
        assert!(registry.labels().contains(&"Cassandra+flush5000"));
        assert_eq!(registry.into_iter().last(), Some(custom));
    }
}
