//! Sparse byte-addressable memory.
//!
//! Memory is organised as 4 KiB pages allocated on demand, which keeps large
//! but sparsely-used address spaces (data, stack, trace pages) cheap. All
//! accesses are little-endian.
//!
//! The page table is a `Vec` sorted by page index rather than a hash map:
//! kernels touch a handful of pages with strong locality, so a last-page
//! hint makes the common same-page access a single bounds check, and the
//! fallback is a binary search over a few cache-resident entries instead of
//! hashing the address on every byte. All multi-byte accessors copy through
//! fixed stack buffers — nothing on the read path allocates.

use crate::instr::MemWidth;
use std::cell::Cell;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Sparse, paged, byte-addressable memory.
///
/// Unwritten locations read as zero.
///
/// # Examples
///
/// ```
/// use cassandra_isa::memory::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read_u8(0x1000), 0x0d); // little endian
/// assert_eq!(mem.read_u64(0x9999), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    /// Allocated pages, sorted by page index.
    pages: Vec<(u64, Box<[u8; PAGE_SIZE as usize]>)>,
    /// Index into `pages` of the most recently touched page. Pure cache:
    /// never observable, hence interior-mutable behind `&self` reads and
    /// excluded from equality.
    hint: Cell<usize>,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.pages == other.pages
    }
}

impl Eq for Memory {}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated pages (for tests and statistics).
    #[inline]
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Index of `page` in the sorted table, trying the last-used hint
    /// before falling back to binary search.
    #[inline]
    fn page_slot(&self, page: u64) -> Option<usize> {
        let hint = self.hint.get();
        if let Some((p, _)) = self.pages.get(hint) {
            if *p == page {
                return Some(hint);
            }
        }
        match self.pages.binary_search_by_key(&page, |(p, _)| *p) {
            Ok(i) => {
                self.hint.set(i);
                Some(i)
            }
            Err(_) => None,
        }
    }

    /// The backing array of `page`, if allocated.
    #[inline]
    fn page(&self, page: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.page_slot(page).map(|i| &*self.pages[i].1)
    }

    /// The backing array of `page`, allocating a zeroed page on first write.
    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let i = match self.page_slot(page) {
            Some(i) => i,
            None => {
                let i = self
                    .pages
                    .binary_search_by_key(&page, |(p, _)| *p)
                    .unwrap_err();
                self.pages
                    .insert(i, (page, Box::new([0u8; PAGE_SIZE as usize])));
                self.hint.set(i);
                i
            }
        };
        &mut self.pages[i].1
    }

    /// Reads a single byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let off = (addr % PAGE_SIZE) as usize;
        self.page(addr / PAGE_SIZE).map_or(0, |p| p[off])
    }

    /// Writes a single byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr / PAGE_SIZE)[off] = value;
    }

    /// Fills `buf` with the bytes starting at `addr`, page by page, without
    /// allocating. Unallocated ranges read as zero.
    pub fn read_into(&self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut buf = buf;
        while !buf.is_empty() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = buf.len().min(PAGE_SIZE as usize - off);
            match self.page(addr / PAGE_SIZE) {
                Some(p) => buf[..n].copy_from_slice(&p[off..off + n]),
                None => buf[..n].fill(0),
            }
            buf = &mut buf[n..];
            addr += n as u64;
        }
    }

    /// Reads `n` bytes starting at `addr` (little-endian order preserved).
    ///
    /// Allocates the returned buffer; hot paths should prefer
    /// [`Memory::read_into`] with a stack buffer.
    pub fn read_bytes(&self, addr: u64, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        self.read_into(addr, &mut buf);
        buf
    }

    /// Writes a byte slice starting at `addr`, page by page.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut bytes = bytes;
        while !bytes.is_empty() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = bytes.len().min(PAGE_SIZE as usize - off);
            self.page_mut(addr / PAGE_SIZE)[off..off + n].copy_from_slice(&bytes[..n]);
            bytes = &bytes[n..];
            addr += n as u64;
        }
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            // Within one page: read straight out of the backing array.
            return match self.page(addr / PAGE_SIZE) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().unwrap()),
                None => 0,
            };
        }
        let mut buf = [0u8; 4];
        self.read_into(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let off = (addr % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            self.page_mut(addr / PAGE_SIZE)[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            // Within one page: read straight out of the backing array.
            return match self.page(addr / PAGE_SIZE) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
                None => 0,
            };
        }
        let mut buf = [0u8; 8];
        self.read_into(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = (addr % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            self.page_mut(addr / PAGE_SIZE)[off..off + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a value of the given width, zero-extended to 64 bits.
    #[inline]
    pub fn read(&self, addr: u64, width: MemWidth) -> u64 {
        match width {
            MemWidth::Byte => u64::from(self.read_u8(addr)),
            MemWidth::Word => u64::from(self.read_u32(addr)),
            MemWidth::Double => self.read_u64(addr),
        }
    }

    /// Writes the low bytes of `value` with the given width.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64, width: MemWidth) {
        match width {
            MemWidth::Byte => self.write_u8(addr, value as u8),
            MemWidth::Word => self.write_u32(addr, value as u32),
            MemWidth::Double => self.write_u64(addr, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(12345), 0);
        assert_eq!(mem.allocated_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = Memory::new();
        mem.write_u64(8, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(8), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(8), 0x08);
        assert_eq!(mem.read_u8(15), 0x01);
        mem.write_u32(100, 0xaabbccdd);
        assert_eq!(mem.read_u32(100), 0xaabbccdd);
        assert_eq!(mem.read(100, MemWidth::Word), 0xaabbccdd);
        mem.write(200, 0x1ff, MemWidth::Byte);
        assert_eq!(mem.read_u8(200), 0xff);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE - 4;
        mem.write_u64(addr, u64::MAX);
        assert_eq!(mem.read_u64(addr), u64::MAX);
        assert_eq!(mem.allocated_pages(), 2);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut mem = Memory::new();
        let data: Vec<u8> = (0..=255u8).collect();
        mem.write_bytes(0x2000, &data);
        assert_eq!(mem.read_bytes(0x2000, 256), data);
    }

    #[test]
    fn width_masks_value() {
        let mut mem = Memory::new();
        mem.write(0, 0xffff_ffff_ffff_ffff, MemWidth::Word);
        assert_eq!(mem.read_u64(0), 0xffff_ffff);
    }

    #[test]
    fn read_into_spans_allocated_and_missing_pages() {
        let mut mem = Memory::new();
        // Allocate only the second of three touched pages.
        mem.write_u8(PAGE_SIZE, 0xaa);
        mem.write_u8(2 * PAGE_SIZE - 1, 0xbb);
        let mut buf = [0xffu8; 3 * PAGE_SIZE as usize];
        mem.read_into(0, &mut buf);
        assert_eq!(buf[0], 0, "missing leading page reads as zero");
        assert_eq!(buf[PAGE_SIZE as usize], 0xaa);
        assert_eq!(buf[2 * PAGE_SIZE as usize - 1], 0xbb);
        assert_eq!(buf[2 * PAGE_SIZE as usize], 0, "missing trailing page");
        assert_eq!(mem.allocated_pages(), 1);
    }

    #[test]
    fn hint_survives_interleaved_pages() {
        let mut mem = Memory::new();
        mem.write_u64(0, 1);
        mem.write_u64(5 * PAGE_SIZE, 2);
        mem.write_u64(3 * PAGE_SIZE, 3);
        // Alternating reads across pages keep hitting the right data even
        // though each read moves the last-page hint.
        for _ in 0..4 {
            assert_eq!(mem.read_u64(0), 1);
            assert_eq!(mem.read_u64(5 * PAGE_SIZE), 2);
            assert_eq!(mem.read_u64(3 * PAGE_SIZE), 3);
        }
        let clone = mem.clone();
        assert_eq!(clone, mem, "equality ignores the hint");
    }
}
