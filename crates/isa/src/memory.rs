//! Sparse byte-addressable memory.
//!
//! Memory is organised as 4 KiB pages allocated on demand, which keeps large
//! but sparsely-used address spaces (data, stack, trace pages) cheap. All
//! accesses are little-endian.

use crate::instr::MemWidth;
use std::collections::HashMap;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Sparse, paged, byte-addressable memory.
///
/// Unwritten locations read as zero.
///
/// # Examples
///
/// ```
/// use cassandra_isa::memory::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read_u8(0x1000), 0x0d); // little endian
/// assert_eq!(mem.read_u64(0x9999), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated pages (for tests and statistics).
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads a single byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        p[off] = value;
    }

    /// Reads `n` bytes starting at `addr` (little-endian order preserved).
    pub fn read_bytes(&self, addr: u64, n: usize) -> Vec<u8> {
        (0..n as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Writes a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut buf = [0u8; 4];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a value of the given width, zero-extended to 64 bits.
    pub fn read(&self, addr: u64, width: MemWidth) -> u64 {
        match width {
            MemWidth::Byte => u64::from(self.read_u8(addr)),
            MemWidth::Word => u64::from(self.read_u32(addr)),
            MemWidth::Double => self.read_u64(addr),
        }
    }

    /// Writes the low bytes of `value` with the given width.
    pub fn write(&mut self, addr: u64, value: u64, width: MemWidth) {
        match width {
            MemWidth::Byte => self.write_u8(addr, value as u8),
            MemWidth::Word => self.write_u32(addr, value as u32),
            MemWidth::Double => self.write_u64(addr, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(12345), 0);
        assert_eq!(mem.allocated_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = Memory::new();
        mem.write_u64(8, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(8), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(8), 0x08);
        assert_eq!(mem.read_u8(15), 0x01);
        mem.write_u32(100, 0xaabbccdd);
        assert_eq!(mem.read_u32(100), 0xaabbccdd);
        assert_eq!(mem.read(100, MemWidth::Word), 0xaabbccdd);
        mem.write(200, 0x1ff, MemWidth::Byte);
        assert_eq!(mem.read_u8(200), 0xff);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE - 4;
        mem.write_u64(addr, u64::MAX);
        assert_eq!(mem.read_u64(addr), u64::MAX);
        assert_eq!(mem.allocated_pages(), 2);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut mem = Memory::new();
        let data: Vec<u8> = (0..=255u8).collect();
        mem.write_bytes(0x2000, &data);
        assert_eq!(mem.read_bytes(0x2000, 256), data);
    }

    #[test]
    fn width_masks_value() {
        let mut mem = Memory::new();
        mem.write(0, 0xffff_ffff_ffff_ffff, MemWidth::Word);
        assert_eq!(mem.read_u64(0), 0xffff_ffff);
    }
}
