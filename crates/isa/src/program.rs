//! Program representation.
//!
//! A [`Program`] is a flat list of instructions plus metadata: labels, an
//! initial data image, *crypto ranges* (the PC ranges covered by the paper's
//! Crypto PC Ranges register) and *secret memory ranges* (ProSpeCT-style
//! annotations used by the defense models and the constant-time checker).

use crate::error::IsaError;
use crate::instr::{BranchKind, Instr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// Byte size of one instruction; instruction index `i` lives at byte address
/// `i * INSTR_BYTES` for instruction-cache modelling purposes.
pub const INSTR_BYTES: u64 = 4;

/// Default initial stack pointer value used by the executor and the timing
/// model. The stack grows downwards from this address.
pub const STACK_TOP: u64 = 0x8000_0000;

/// Metadata describing one static branch of a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticBranch {
    /// Instruction index of the branch.
    pub pc: usize,
    /// Classification of the branch.
    pub kind: BranchKind,
    /// Whether the branch lies inside a crypto range.
    pub is_crypto: bool,
}

/// A region of the initial data image.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataRegion {
    /// Start byte address.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
    /// Human-readable name (symbol) of the region.
    pub name: String,
}

/// A complete program: text, labels, data image and security annotations.
///
/// Programs are immutable once built; use [`crate::builder::ProgramBuilder`]
/// to construct them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports and statistics).
    pub name: String,
    /// The instructions. The entry point is instruction 0.
    pub instrs: Vec<Instr>,
    /// Label name → instruction index.
    pub labels: BTreeMap<String, usize>,
    /// Initial data image.
    pub data: Vec<DataRegion>,
    /// Instruction-index ranges that belong to cryptographic code.
    pub crypto_ranges: Vec<Range<usize>>,
    /// Byte-address ranges of memory that hold secrets (ProSpeCT annotations).
    pub secret_ranges: Vec<Range<u64>>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, if in range.
    pub fn instr(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// The byte address of instruction `pc` (for instruction-cache modelling).
    pub fn byte_addr(pc: usize) -> u64 {
        pc as u64 * INSTR_BYTES
    }

    /// Looks up a label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Whether instruction index `pc` lies inside a crypto range.
    pub fn is_crypto_pc(&self, pc: usize) -> bool {
        self.crypto_ranges.iter().any(|r| r.contains(&pc))
    }

    /// Whether byte address `addr` lies inside a secret memory range.
    pub fn is_secret_addr(&self, addr: u64) -> bool {
        self.secret_ranges.iter().any(|r| r.contains(&addr))
    }

    /// All static control-flow instructions in the program, in PC order.
    pub fn static_branches(&self) -> Vec<StaticBranch> {
        self.instrs
            .iter()
            .enumerate()
            .filter_map(|(pc, i)| {
                i.branch_kind().map(|kind| StaticBranch {
                    pc,
                    kind,
                    is_crypto: self.is_crypto_pc(pc),
                })
            })
            .collect()
    }

    /// Static branches inside crypto ranges only.
    pub fn crypto_branches(&self) -> Vec<StaticBranch> {
        self.static_branches()
            .into_iter()
            .filter(|b| b.is_crypto)
            .collect()
    }

    /// Validates structural invariants: non-empty text, all branch/jump/call
    /// targets inside the text, labels inside the text, and crypto ranges
    /// within bounds.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidProgram`] describing the first violation.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.instrs.is_empty() {
            return Err(IsaError::InvalidProgram(
                "program has no instructions".into(),
            ));
        }
        let len = self.instrs.len();
        for (pc, instr) in self.instrs.iter().enumerate() {
            let target = match instr {
                Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                    Some(*target)
                }
                _ => None,
            };
            if let Some(t) = target {
                if t >= len {
                    return Err(IsaError::InvalidProgram(format!(
                        "instruction {pc} targets {t}, beyond program length {len}"
                    )));
                }
            }
        }
        for (name, idx) in &self.labels {
            if *idx > len {
                return Err(IsaError::InvalidProgram(format!(
                    "label `{name}` points at {idx}, beyond program length {len}"
                )));
            }
        }
        for r in &self.crypto_ranges {
            if r.start > r.end || r.end > len {
                return Err(IsaError::InvalidProgram(format!(
                    "crypto range {r:?} outside program of length {len}"
                )));
            }
        }
        for r in &self.secret_ranges {
            if r.start > r.end {
                return Err(IsaError::InvalidProgram(format!(
                    "secret range {r:?} is inverted"
                )));
            }
        }
        Ok(())
    }

    /// A formatted disassembly listing, mostly for debugging and examples.
    pub fn disassemble(&self) -> String {
        let mut by_pc: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, pc) in &self.labels {
            by_pc.entry(*pc).or_default().push(name);
        }
        let mut out = String::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(names) = by_pc.get(&pc) {
                for n in names {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            let tag = if self.is_crypto_pc(pc) { "κ" } else { " " };
            out.push_str(&format!("  {pc:>6} {tag} {instr}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program `{}` ({} instructions, {} crypto ranges, {} data regions)",
            self.name,
            self.instrs.len(),
            self.crypto_ranges.len(),
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::BranchCond;
    use crate::reg::{A0, A1, ZERO};

    fn small_program() -> Program {
        let mut b = ProgramBuilder::new("small");
        b.li(A0, 3);
        b.label("loop");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn labels_and_lookup() {
        let p = small_program();
        assert_eq!(p.label("loop"), Some(1));
        assert_eq!(p.label("nope"), None);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn static_branch_listing() {
        let p = small_program();
        let branches = p.static_branches();
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].pc, 2);
        assert_eq!(branches[0].kind, BranchKind::CondDirect);
        assert!(!branches[0].is_crypto);
    }

    #[test]
    fn crypto_range_marking() {
        let mut b = ProgramBuilder::new("tagged");
        b.begin_crypto();
        b.li(A0, 1);
        b.label("l");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "l");
        b.end_crypto();
        b.halt();
        let p = b.build().unwrap();
        assert!(p.is_crypto_pc(0));
        assert!(p.is_crypto_pc(2));
        assert!(!p.is_crypto_pc(3));
        assert_eq!(p.crypto_branches().len(), 1);
    }

    #[test]
    fn validate_rejects_bad_targets() {
        let p = Program {
            name: "bad".into(),
            instrs: vec![Instr::Branch {
                cond: BranchCond::Eq,
                rs1: A0,
                rs2: A1,
                target: 10,
            }],
            labels: BTreeMap::new(),
            data: vec![],
            crypto_ranges: vec![],
            secret_ranges: vec![],
        };
        assert!(matches!(p.validate(), Err(IsaError::InvalidProgram(_))));
    }

    #[test]
    fn validate_rejects_empty() {
        let p = Program {
            name: "empty".into(),
            instrs: vec![],
            labels: BTreeMap::new(),
            data: vec![],
            crypto_ranges: vec![],
            secret_ranges: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn byte_addresses() {
        assert_eq!(Program::byte_addr(0), 0);
        assert_eq!(Program::byte_addr(10), 40);
    }

    #[test]
    fn disassembly_contains_labels() {
        let p = small_program();
        let d = p.disassemble();
        assert!(d.contains("loop:"));
        assert!(d.contains("bne"));
    }

    #[test]
    fn secret_addr_check() {
        let mut b = ProgramBuilder::new("secret");
        b.halt();
        b.mark_secret_region(0x1000..0x1100);
        let p = b.build().unwrap();
        assert!(p.is_secret_addr(0x1000));
        assert!(p.is_secret_addr(0x10ff));
        assert!(!p.is_secret_addr(0x1100));
    }
}
