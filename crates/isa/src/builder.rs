//! Assembler-style program builder.
//!
//! [`ProgramBuilder`] offers one method per instruction (plus a few
//! pseudo-instructions), label management with forward references, data
//! allocation and security annotations (crypto PC ranges, secret memory
//! ranges). The kernels in `cassandra-kernels` are written exclusively
//! through this interface.

use crate::error::IsaError;
use crate::instr::{AluOp, BranchCond, Instr, MemWidth};
use crate::program::{DataRegion, Program};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::ops::Range;

/// Base address of the builder-managed data segment.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Pending control-flow target: either an already-resolved instruction index
/// or a label to be resolved at build time.
#[derive(Debug, Clone)]
enum Target {
    Label(String),
}

#[derive(Debug, Clone)]
enum Fixup {
    Branch { index: usize, target: Target },
    Jump { index: usize, target: Target },
    Call { index: usize, target: Target },
}

/// Incremental builder for [`Program`] values.
///
/// # Examples
///
/// ```
/// use cassandra_isa::builder::ProgramBuilder;
/// use cassandra_isa::reg::{A0, A1, ZERO};
///
/// # fn main() -> Result<(), cassandra_isa::error::IsaError> {
/// let mut b = ProgramBuilder::new("double");
/// let input = b.alloc_u64s("input", &[21]);
/// b.li(A1, input);
/// b.ld(A0, A1, 0);
/// b.add(A0, A0, A0);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<Fixup>,
    data: Vec<DataRegion>,
    data_cursor: u64,
    crypto_ranges: Vec<Range<usize>>,
    crypto_open: Option<usize>,
    secret_ranges: Vec<Range<u64>>,
}

impl ProgramBuilder {
    /// Creates a new builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: BTreeMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            data_cursor: DATA_BASE,
            crypto_ranges: Vec::new(),
            crypto_open: None,
            secret_ranges: Vec::new(),
        }
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    // ----------------------------------------------------------------- labels

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label has already been defined; label names must be
    /// unique within a program.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.here());
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Convenience alias of [`Self::label`] for function entry points.
    pub fn func(&mut self, name: impl Into<String>) {
        self.label(name);
    }

    // ------------------------------------------------------------------- data

    /// Allocates a named data region with the given initial bytes and returns
    /// its base address.
    pub fn alloc_bytes(&mut self, name: impl Into<String>, bytes: &[u8]) -> u64 {
        let addr = self.data_cursor;
        // Keep regions 64-byte aligned so kernels can assume cache-line
        // alignment of their tables.
        let len = bytes.len() as u64;
        self.data_cursor += len.div_ceil(64) * 64 + 64;
        self.data.push(DataRegion {
            addr,
            bytes: bytes.to_vec(),
            name: name.into(),
        });
        addr
    }

    /// Allocates a zero-initialised region of `len` bytes.
    pub fn alloc_zeros(&mut self, name: impl Into<String>, len: usize) -> u64 {
        self.alloc_bytes(name, &vec![0u8; len])
    }

    /// Allocates a region initialised from 64-bit little-endian words.
    pub fn alloc_u64s(&mut self, name: impl Into<String>, words: &[u64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.alloc_bytes(name, &bytes)
    }

    /// Allocates a region initialised from 32-bit little-endian words.
    pub fn alloc_u32s(&mut self, name: impl Into<String>, words: &[u32]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.alloc_bytes(name, &bytes)
    }

    /// Allocates a data region and marks it as secret (ProSpeCT-style
    /// annotation). Returns the base address.
    pub fn alloc_secret_bytes(&mut self, name: impl Into<String>, bytes: &[u8]) -> u64 {
        let addr = self.alloc_bytes(name, bytes);
        self.secret_ranges.push(addr..addr + bytes.len() as u64);
        addr
    }

    /// Allocates a secret region initialised from 64-bit words.
    pub fn alloc_secret_u64s(&mut self, name: impl Into<String>, words: &[u64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.alloc_secret_bytes(name, &bytes)
    }

    /// Allocates a secret region initialised from 32-bit words.
    pub fn alloc_secret_u32s(&mut self, name: impl Into<String>, words: &[u32]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.alloc_secret_bytes(name, &bytes)
    }

    /// Marks an arbitrary address range as secret.
    pub fn mark_secret_region(&mut self, range: Range<u64>) {
        self.secret_ranges.push(range);
    }

    // --------------------------------------------------------- crypto regions

    /// Starts a crypto PC range at the current position.
    ///
    /// # Panics
    ///
    /// Panics if a crypto range is already open.
    pub fn begin_crypto(&mut self) {
        assert!(self.crypto_open.is_none(), "crypto range already open");
        self.crypto_open = Some(self.here());
    }

    /// Ends the currently open crypto PC range.
    ///
    /// # Panics
    ///
    /// Panics if no crypto range is open.
    pub fn end_crypto(&mut self) {
        let start = self.crypto_open.take().expect("no crypto range open");
        self.crypto_ranges.push(start..self.here());
    }

    // ----------------------------------------------------------- raw emission

    /// Emits a raw instruction and returns its index.
    pub fn emit(&mut self, instr: Instr) -> usize {
        let idx = self.here();
        self.instrs.push(instr);
        idx
    }

    // --------------------------------------------------------------- ALU ops

    fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op, rd, rs1, rs2 });
    }

    fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluImm { op, rd, rs1, imm });
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sll, rd, rs1, rs2);
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Srl, rd, rs1, rs2);
    }
    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sra, rd, rs1, rs2);
    }
    /// `rd = rotl(rs1, rs2)`
    pub fn rotl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Rotl, rd, rs1, rs2);
    }
    /// `rd = rotr(rs1, rs2)`
    pub fn rotr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Rotr, rd, rs1, rs2);
    }
    /// `rd = low64(rs1 * rs2)`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }
    /// `rd = high64(rs1 * rs2)` (unsigned)
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mulhu, rd, rs1, rs2);
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed)
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Slt, rd, rs1, rs2);
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sltu, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Add, rd, rs1, imm);
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::And, rd, rs1, imm);
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Or, rd, rs1, imm);
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Xor, rd, rs1, imm);
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Sll, rd, rs1, imm);
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Srl, rd, rs1, imm);
    }
    /// `rd = rs1 >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Sra, rd, rs1, imm);
    }
    /// `rd = rotl(rs1, imm)`
    pub fn rotli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Rotl, rd, rs1, imm);
    }
    /// `rd = rotr(rs1, imm)`
    pub fn rotri(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Rotr, rd, rs1, imm);
    }
    /// `rd = rs1 * imm`
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Mul, rd, rs1, imm);
    }
    /// `rd = (rs1 < imm) ? 1 : 0` (unsigned)
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Sltu, rd, rs1, imm);
    }
    /// `rd = (rs1 < imm) ? 1 : 0` (signed)
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Slt, rd, rs1, imm);
    }

    /// Loads a 64-bit immediate.
    pub fn li(&mut self, rd: Reg, imm: u64) {
        self.emit(Instr::LoadImm { rd, imm });
    }

    /// Register move (`rd = rs1`), encoded as `addi rd, rs1, 0`.
    pub fn mv(&mut self, rd: Reg, rs1: Reg) {
        self.addi(rd, rs1, 0);
    }

    /// Declassification marker (`rd = rs1`, clears taint).
    pub fn declassify(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::Declassify { rd, rs1 });
    }

    // ------------------------------------------------------------ memory ops

    /// Loads a 64-bit double word: `rd = mem64[base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Load {
            rd,
            base,
            offset,
            width: MemWidth::Double,
        });
    }

    /// Loads a zero-extended 32-bit word.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Load {
            rd,
            base,
            offset,
            width: MemWidth::Word,
        });
    }

    /// Loads a zero-extended byte.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Load {
            rd,
            base,
            offset,
            width: MemWidth::Byte,
        });
    }

    /// Stores a 64-bit double word.
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Store {
            src,
            base,
            offset,
            width: MemWidth::Double,
        });
    }

    /// Stores the low 32 bits.
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Store {
            src,
            base,
            offset,
            width: MemWidth::Word,
        });
    }

    /// Stores the low byte.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Store {
            src,
            base,
            offset,
            width: MemWidth::Byte,
        });
    }

    // ------------------------------------------------------------ control flow

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) {
        let index = self.emit(Instr::Branch {
            cond,
            rs1,
            rs2,
            target: usize::MAX,
        });
        self.fixups.push(Fixup::Branch {
            index,
            target: Target::Label(label.to_string()),
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }
    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }
    /// Branch if less than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }
    /// Branch if greater or equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }
    /// Branch if less than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }
    /// Branch if greater or equal (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Geu, rs1, rs2, label);
    }

    /// Unconditional direct jump to a label.
    pub fn j(&mut self, label: &str) {
        let index = self.emit(Instr::Jump { target: usize::MAX });
        self.fixups.push(Fixup::Jump {
            index,
            target: Target::Label(label.to_string()),
        });
    }

    /// Indirect jump through a register holding an instruction index.
    pub fn jr(&mut self, rs1: Reg) {
        self.emit(Instr::JumpIndirect { rs1 });
    }

    /// Direct call to a label.
    pub fn call(&mut self, label: &str) {
        let index = self.emit(Instr::Call { target: usize::MAX });
        self.fixups.push(Fixup::Call {
            index,
            target: Target::Label(label.to_string()),
        });
    }

    /// Indirect call through a register holding an instruction index.
    pub fn callr(&mut self, rs1: Reg) {
        self.emit(Instr::CallIndirect { rs1 });
    }

    /// Return from the current call.
    pub fn ret(&mut self) {
        self.emit(Instr::Ret);
    }

    /// No operation.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Halts the program.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Loads the instruction index of a label into a register, for use with
    /// [`Self::jr`] / [`Self::callr`]. Resolved at build time.
    pub fn li_label(&mut self, rd: Reg, label: &str) {
        let index = self.emit(Instr::LoadImm { rd, imm: u64::MAX });
        // Re-use the jump fixup machinery via a dedicated variant would be
        // cleaner, but a small trick keeps the enum compact: record it as a
        // jump fixup and patch the LoadImm at build time.
        self.fixups.push(Fixup::Jump {
            index,
            target: Target::Label(label.to_string()),
        });
    }

    // ----------------------------------------------------------------- build

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] if a referenced label was never
    /// defined, or [`IsaError::InvalidProgram`] if validation fails (see
    /// [`Program::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if a crypto range was left open (builder misuse).
    pub fn build(mut self) -> Result<Program, IsaError> {
        assert!(
            self.crypto_open.is_none(),
            "crypto range opened with begin_crypto() but never closed"
        );
        let labels = self.labels.clone();
        let resolve = |t: &Target| -> Result<usize, IsaError> {
            match t {
                Target::Label(name) => labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| IsaError::UndefinedLabel(name.clone())),
            }
        };
        for fixup in &self.fixups {
            match fixup {
                Fixup::Branch { index, target } => {
                    let t = resolve(target)?;
                    if let Instr::Branch { target, .. } = &mut self.instrs[*index] {
                        *target = t;
                    }
                }
                Fixup::Jump { index, target } => {
                    let t = resolve(target)?;
                    match &mut self.instrs[*index] {
                        Instr::Jump { target } => *target = t,
                        Instr::LoadImm { imm, .. } => *imm = t as u64,
                        other => unreachable!("jump fixup on non-jump instruction {other}"),
                    }
                }
                Fixup::Call { index, target } => {
                    let t = resolve(target)?;
                    if let Instr::Call { target, .. } = &mut self.instrs[*index] {
                        *target = t;
                    }
                }
            }
        }
        let program = Program {
            name: self.name,
            instrs: self.instrs,
            labels: self.labels,
            data: self.data,
            crypto_ranges: self.crypto_ranges,
            secret_ranges: self.secret_ranges,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::reg::{A0, A1, A2, ZERO};

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new("fb");
        b.li(A0, 0);
        b.j("end"); // forward reference
        b.label("mid");
        b.li(A0, 99);
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.label("end"), Some(3));
        let mut e = Executor::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.reg(A0), 0, "jump must skip the mid block");
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new("bad");
        b.j("nowhere");
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new("dup");
        b.label("x");
        b.label("x");
    }

    #[test]
    fn data_allocation_is_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new("data");
        let a = b.alloc_bytes("a", &[1, 2, 3]);
        let c = b.alloc_u64s("c", &[10, 20]);
        let s = b.alloc_secret_bytes("s", &[9; 32]);
        assert_eq!(a % 64, 0);
        assert_eq!(c % 64, 0);
        assert!(c > a);
        assert!(s > c);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data.len(), 3);
        assert!(p.is_secret_addr(s));
        assert!(!p.is_secret_addr(a));
    }

    #[test]
    fn call_and_ret_roundtrip() {
        let mut b = ProgramBuilder::new("callret");
        b.li(A0, 1);
        b.call("inc");
        b.call("inc");
        b.halt();
        b.func("inc");
        b.addi(A0, A0, 1);
        b.ret();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.reg(A0), 3);
    }

    #[test]
    fn indirect_jump_via_li_label() {
        let mut b = ProgramBuilder::new("indirect");
        b.li(A0, 0);
        b.li_label(A1, "target");
        b.jr(A1);
        b.li(A0, 111); // skipped
        b.label("target");
        b.addi(A0, A0, 5);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.reg(A0), 5);
    }

    #[test]
    fn loop_with_memory() {
        let mut b = ProgramBuilder::new("memloop");
        let arr = b.alloc_u64s("arr", &[1, 2, 3, 4, 5]);
        b.li(A1, arr);
        b.li(A2, 5);
        b.li(A0, 0);
        b.label("loop");
        b.ld(crate::reg::T0, A1, 0);
        b.add(A0, A0, crate::reg::T0);
        b.addi(A1, A1, 8);
        b.addi(A2, A2, -1);
        b.bne(A2, ZERO, "loop");
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(1000).unwrap();
        assert_eq!(e.reg(A0), 15);
    }
}
