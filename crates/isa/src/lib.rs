//! # cassandra-isa
//!
//! A small RISC-like instruction set, an assembler-style program builder and a
//! functional (architectural) executor.
//!
//! This crate is the software substrate of the Cassandra reproduction: the
//! constant-time cryptographic kernels in `cassandra-kernels` are written
//! against this ISA, branch traces are collected by instrumenting the
//! [`exec::Executor`], and the cycle-level model in `cassandra-cpu` consumes
//! the same [`program::Program`] representation.
//!
//! ## Design notes
//!
//! * 32 general purpose 64-bit registers; `x0` is hard-wired to zero and `x2`
//!   is the stack pointer used by `call`/`ret`.
//! * Instruction addresses are instruction indices; the byte address of
//!   instruction `i` is `i * 4` (see [`program::INSTR_BYTES`]).
//! * `call` pushes the return address onto the in-memory stack and `ret` pops
//!   it, making returns genuine indirect control transfers (the paper's RSB
//!   speculation primitive).
//! * Programs carry *crypto ranges* (the paper's Crypto PC Ranges register)
//!   and *secret memory ranges* (ProSpeCT-style annotations).
//!
//! ## Example
//!
//! ```
//! use cassandra_isa::builder::ProgramBuilder;
//! use cassandra_isa::exec::Executor;
//! use cassandra_isa::reg::{A0, A1, ZERO};
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let mut b = ProgramBuilder::new("sum_to_n");
//! b.li(A0, 0); // accumulator
//! b.li(A1, 5); // counter
//! b.label("loop");
//! b.add(A0, A0, A1);
//! b.addi(A1, A1, -1);
//! b.bne(A1, ZERO, "loop");
//! b.halt();
//! let program = b.build()?;
//!
//! let mut exec = Executor::new(&program);
//! exec.run(10_000)?;
//! assert_eq!(exec.reg(A0), 15);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod error;
pub mod exec;
pub mod instr;
pub mod memory;
pub mod observe;
pub mod program;
pub mod reg;

pub use builder::ProgramBuilder;
pub use error::IsaError;
pub use exec::Executor;
pub use instr::{AluOp, BranchCond, BranchKind, Instr, MemWidth};
pub use program::Program;
pub use reg::Reg;
