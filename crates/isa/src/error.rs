//! Error types for the ISA crate.

use std::fmt;

/// Errors produced while building or executing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// The program counter left the program text.
    PcOutOfRange {
        /// The faulting program counter (instruction index).
        pc: usize,
        /// Number of instructions in the program.
        len: usize,
    },
    /// The executor exceeded its step budget without halting.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A return was executed with an empty call stack.
    ReturnWithoutCall {
        /// The faulting program counter.
        pc: usize,
    },
    /// A memory access fell outside the configured memory bounds.
    MemoryOutOfBounds {
        /// The faulting byte address.
        addr: u64,
    },
    /// The program is malformed (e.g. empty, or a branch target out of range).
    InvalidProgram(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            IsaError::PcOutOfRange { pc, len } => {
                write!(
                    f,
                    "program counter {pc} out of range (program has {len} instructions)"
                )
            }
            IsaError::StepLimitExceeded { limit } => {
                write!(
                    f,
                    "execution exceeded the step limit of {limit} instructions"
                )
            }
            IsaError::ReturnWithoutCall { pc } => {
                write!(f, "return executed with an empty call stack at pc {pc}")
            }
            IsaError::MemoryOutOfBounds { addr } => {
                write!(
                    f,
                    "memory access at {addr:#x} outside the configured bounds"
                )
            }
            IsaError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            IsaError::UndefinedLabel("loop".into()).to_string(),
            "undefined label `loop`"
        );
        assert!(IsaError::PcOutOfRange { pc: 9, len: 4 }
            .to_string()
            .contains("out of range"));
        assert!(IsaError::StepLimitExceeded { limit: 10 }
            .to_string()
            .contains("step limit"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(IsaError::InvalidProgram("empty".into()));
        assert!(e.to_string().contains("invalid program"));
    }
}
