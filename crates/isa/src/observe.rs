//! Observations and observer hooks.
//!
//! The paper's formal treatment (Appendix A) phrases security in terms of
//! *contract traces*: sequences of control-flow and memory observations
//! produced by a sequential execution under the constant-time leakage model
//! (`⟦·⟧^seq_ct`). This module defines those observation types plus the
//! runtime records the functional executor hands to observers (used for
//! branch-trace collection and for the security checker).

use crate::instr::{BranchKind, MemWidth};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Control-flow observations of the constant-time leakage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CfObs {
    /// The next program counter after a conditional or unconditional branch.
    Pc(usize),
    /// A call and its target.
    Call(usize),
    /// A return and its target.
    Ret(usize),
}

/// Memory observations of the constant-time leakage model (addresses only —
/// values are never part of the leakage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemObs {
    /// A load from the given byte address.
    Load(u64),
    /// A store to the given byte address.
    Store(u64),
}

/// A single observation under the `ct` leakage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Obs {
    /// Control-flow observation.
    Cf(CfObs),
    /// Memory observation.
    Mem(MemObs),
}

/// An observation tagged with the crypto tag of the instruction that produced
/// it (the paper's `τ@t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaggedObs {
    /// The observation.
    pub obs: Obs,
    /// True if the producing instruction lies in a crypto PC range.
    pub crypto: bool,
}

impl fmt::Display for TaggedObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.crypto { "κ" } else { "ε" };
        match self.obs {
            Obs::Cf(CfObs::Pc(t)) => write!(f, "pc {t}@{tag}"),
            Obs::Cf(CfObs::Call(t)) => write!(f, "call {t}@{tag}"),
            Obs::Cf(CfObs::Ret(t)) => write!(f, "ret {t}@{tag}"),
            Obs::Mem(MemObs::Load(a)) => write!(f, "load {a:#x}@{tag}"),
            Obs::Mem(MemObs::Store(a)) => write!(f, "store {a:#x}@{tag}"),
        }
    }
}

/// A contract trace: the sequence of tagged observations of one sequential
/// run (`⟦p⟧(σ)` in the paper).
pub type ContractTrace = Vec<TaggedObs>;

/// The crypto control-flow subtrace `C^seq_ct(p)` of Definition 1: all
/// control-flow observations produced by crypto-tagged instructions, in order.
pub fn crypto_cf_trace(trace: &[TaggedObs]) -> Vec<CfObs> {
    trace
        .iter()
        .filter_map(|t| match t.obs {
            Obs::Cf(cf) if t.crypto => Some(cf),
            _ => None,
        })
        .collect()
}

/// Outcome of one dynamic execution of a branch, as recorded by the
/// trace-collection instrumentation (the paper's "raw trace" element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchOutcome {
    /// Static PC (instruction index) of the branch.
    pub pc: usize,
    /// Branch classification.
    pub kind: BranchKind,
    /// Whether a conditional branch was taken (always `true` for
    /// unconditional control transfers).
    pub taken: bool,
    /// The next PC after this branch (the recorded target; for not-taken
    /// conditional branches this is the fall-through PC, as in the paper).
    pub target: usize,
    /// Whether the branch lies in a crypto PC range.
    pub is_crypto: bool,
}

/// A dynamic data-memory access, as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// PC of the accessing instruction.
    pub pc: usize,
    /// Byte address accessed.
    pub addr: u64,
    /// Access width.
    pub width: MemWidth,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// Whether the accessing instruction lies in a crypto PC range.
    pub is_crypto: bool,
    /// Whether the address lies in a declared secret region.
    pub is_secret: bool,
}

/// Observer hooks invoked by the functional executor.
///
/// All methods have empty default implementations so observers only override
/// what they need.
pub trait Observer {
    /// Called once per executed instruction, before its effects are applied.
    fn on_step(&mut self, _pc: usize, _is_crypto: bool) {}

    /// Called for every executed control-flow instruction with its outcome.
    fn on_branch(&mut self, _outcome: &BranchOutcome) {}

    /// Called for every data-memory access (including the implicit stack
    /// accesses of `call`/`ret`).
    fn on_mem(&mut self, _access: &MemAccess) {}
}

/// An observer that does nothing; useful as a default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// An observer that records the full contract trace under the constant-time
/// leakage model (control flow + memory addresses, tagged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContractObserver {
    /// The accumulated trace.
    pub trace: ContractTrace,
}

impl ContractObserver {
    /// Creates an empty contract observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for ContractObserver {
    fn on_branch(&mut self, outcome: &BranchOutcome) {
        let cf = match outcome.kind {
            BranchKind::Call | BranchKind::CallIndirect => CfObs::Call(outcome.target),
            BranchKind::Return => CfObs::Ret(outcome.target),
            _ => CfObs::Pc(outcome.target),
        };
        self.trace.push(TaggedObs {
            obs: Obs::Cf(cf),
            crypto: outcome.is_crypto,
        });
    }

    fn on_mem(&mut self, access: &MemAccess) {
        let mem = if access.is_store {
            MemObs::Store(access.addr)
        } else {
            MemObs::Load(access.addr)
        };
        self.trace.push(TaggedObs {
            obs: Obs::Mem(mem),
            crypto: access.is_crypto,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_obs_display() {
        let o = TaggedObs {
            obs: Obs::Cf(CfObs::Pc(12)),
            crypto: true,
        };
        assert_eq!(o.to_string(), "pc 12@κ");
        let o = TaggedObs {
            obs: Obs::Mem(MemObs::Load(0x40)),
            crypto: false,
        };
        assert_eq!(o.to_string(), "load 0x40@ε");
    }

    #[test]
    fn crypto_cf_trace_filters() {
        let trace = vec![
            TaggedObs {
                obs: Obs::Cf(CfObs::Pc(1)),
                crypto: true,
            },
            TaggedObs {
                obs: Obs::Mem(MemObs::Load(8)),
                crypto: true,
            },
            TaggedObs {
                obs: Obs::Cf(CfObs::Pc(2)),
                crypto: false,
            },
            TaggedObs {
                obs: Obs::Cf(CfObs::Ret(3)),
                crypto: true,
            },
        ];
        assert_eq!(crypto_cf_trace(&trace), vec![CfObs::Pc(1), CfObs::Ret(3)]);
    }

    #[test]
    fn contract_observer_records_branches_and_mem() {
        let mut obs = ContractObserver::new();
        obs.on_branch(&BranchOutcome {
            pc: 0,
            kind: BranchKind::Call,
            taken: true,
            target: 5,
            is_crypto: true,
        });
        obs.on_mem(&MemAccess {
            pc: 1,
            addr: 0x100,
            width: MemWidth::Double,
            is_store: true,
            is_crypto: false,
            is_secret: false,
        });
        assert_eq!(obs.trace.len(), 2);
        assert_eq!(obs.trace[0].obs, Obs::Cf(CfObs::Call(5)));
        assert_eq!(obs.trace[1].obs, Obs::Mem(MemObs::Store(0x100)));
    }
}
