//! Architectural registers.
//!
//! The ISA exposes 32 general purpose 64-bit registers. Register `x0` reads as
//! zero and ignores writes (as in RISC-V), `x2` is the stack pointer used by
//! `call`/`ret`, and the remaining registers follow a loose RISC-V-like ABI so
//! that kernels written in `cassandra-kernels` read naturally.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// An architectural register identifier (`x0` .. `x31`).
///
/// `Reg` is a thin newtype over the register index; it is `Copy` and cheap to
/// pass by value everywhere.
///
/// # Examples
///
/// ```
/// use cassandra_isa::reg::{Reg, A0, ZERO};
///
/// assert_eq!(A0.index(), 10);
/// assert_eq!(ZERO, Reg::new(0));
/// assert_eq!(format!("{}", A0), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Creates a register from its index without bounds checking against the
    /// architectural register count.
    ///
    /// Returns `None` if the index is out of range (this is the checked,
    /// non-panicking constructor).
    pub fn try_new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the hard-wired zero register `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = ABI_NAMES[self.index()];
        write!(f, "{name}")
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

/// ABI names, indexed by register number.
pub const ABI_NAMES: [&str; NUM_REGS] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// Hard-wired zero register.
pub const ZERO: Reg = Reg(0);
/// Return-address scratch register (not used by `call`/`ret`, which use the stack).
pub const RA: Reg = Reg(1);
/// Stack pointer, used implicitly by `call` and `ret`.
pub const SP: Reg = Reg(2);
/// Global pointer (free for kernel use).
pub const GP: Reg = Reg(3);
/// Thread pointer (free for kernel use).
pub const TP: Reg = Reg(4);
/// Temporary register 0.
pub const T0: Reg = Reg(5);
/// Temporary register 1.
pub const T1: Reg = Reg(6);
/// Temporary register 2.
pub const T2: Reg = Reg(7);
/// Callee-saved register 0.
pub const S0: Reg = Reg(8);
/// Callee-saved register 1.
pub const S1: Reg = Reg(9);
/// Argument/return register 0.
pub const A0: Reg = Reg(10);
/// Argument register 1.
pub const A1: Reg = Reg(11);
/// Argument register 2.
pub const A2: Reg = Reg(12);
/// Argument register 3.
pub const A3: Reg = Reg(13);
/// Argument register 4.
pub const A4: Reg = Reg(14);
/// Argument register 5.
pub const A5: Reg = Reg(15);
/// Argument register 6.
pub const A6: Reg = Reg(16);
/// Argument register 7.
pub const A7: Reg = Reg(17);
/// Callee-saved register 2.
pub const S2: Reg = Reg(18);
/// Callee-saved register 3.
pub const S3: Reg = Reg(19);
/// Callee-saved register 4.
pub const S4: Reg = Reg(20);
/// Callee-saved register 5.
pub const S5: Reg = Reg(21);
/// Callee-saved register 6.
pub const S6: Reg = Reg(22);
/// Callee-saved register 7.
pub const S7: Reg = Reg(23);
/// Callee-saved register 8.
pub const S8: Reg = Reg(24);
/// Callee-saved register 9.
pub const S9: Reg = Reg(25);
/// Callee-saved register 10.
pub const S10: Reg = Reg(26);
/// Callee-saved register 11.
pub const S11: Reg = Reg(27);
/// Temporary register 3.
pub const T3: Reg = Reg(28);
/// Temporary register 4.
pub const T4: Reg = Reg(29);
/// Temporary register 5.
pub const T5: Reg = Reg(30);
/// Temporary register 6.
pub const T6: Reg = Reg(31);

/// All registers in index order, convenient for iteration in tests.
pub fn all_regs() -> impl Iterator<Item = Reg> {
    (0..NUM_REGS as u8).map(Reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_constants() {
        assert_eq!(ZERO.index(), 0);
        assert_eq!(SP.index(), 2);
        assert_eq!(A0.index(), 10);
        assert_eq!(T6.index(), 31);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(ZERO.to_string(), "zero");
        assert_eq!(SP.to_string(), "sp");
        assert_eq!(A3.to_string(), "a3");
        assert_eq!(S11.to_string(), "s11");
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(T6));
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_detection() {
        assert!(ZERO.is_zero());
        assert!(!A0.is_zero());
    }

    #[test]
    fn all_regs_yields_32_unique() {
        let regs: Vec<Reg> = all_regs().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
