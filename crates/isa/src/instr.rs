//! Instruction definitions.
//!
//! The instruction set is deliberately small but covers everything the
//! constant-time kernels and the Spectre gadget programs need: integer ALU
//! operations, loads/stores of several widths, conditional direct branches,
//! unconditional jumps, indirect jumps, calls and returns, plus a
//! `declassify` marker mirroring the paper's Listing 1.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// Rotate left (amount modulo 64).
    Rotl,
    /// Rotate right (amount modulo 64).
    Rotr,
    /// Low 64 bits of the product.
    Mul,
    /// High 64 bits of the unsigned 128-bit product.
    Mulhu,
    /// Set-less-than, signed (`1` if `rs1 < rs2` else `0`).
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit operands.
    ///
    /// All operations are total: shifts and rotates mask the shift amount,
    /// arithmetic wraps. This keeps the functional executor free of
    /// data-dependent faults, as expected from constant-time code.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Rotl => a.rotate_left((b & 63) as u32),
            AluOp::Rotr => a.rotate_right((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
        }
    }

    /// Execution latency of the operation in cycles, used by the timing model.
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul | AluOp::Mulhu => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Rotl => "rotl",
            AluOp::Rotr => "rotr",
            AluOp::Mul => "mul",
            AluOp::Mulhu => "mulhu",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        };
        f.write_str(s)
    }
}

/// Conditions for conditional direct branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

impl BranchCond {
    /// Evaluates the branch condition on two operand values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Self {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Ltu => BranchCond::Geu,
            BranchCond::Geu => BranchCond::Ltu,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        };
        f.write_str(s)
    }
}

/// Access width for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// 1 byte.
    Byte,
    /// 4 bytes, little endian, zero extended.
    Word,
    /// 8 bytes, little endian.
    Double,
}

impl MemWidth {
    /// Number of bytes accessed.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// Classification of control-flow instructions, matching the speculation
/// primitives discussed in the paper (§2.2): the PHT predicts conditional
/// direct branches, the BTB predicts indirect jumps and calls, and the RSB
/// predicts returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch (`beq`, `bne`, ...). Predicted by the PHT.
    CondDirect,
    /// Unconditional direct jump. Always single-target.
    UncondDirect,
    /// Indirect jump through a register. Predicted by the BTB.
    Indirect,
    /// Direct call. Single-target, but pushes a return address.
    Call,
    /// Indirect call through a register. Predicted by the BTB.
    CallIndirect,
    /// Return. Predicted by the RSB.
    Return,
}

impl BranchKind {
    /// Whether the instruction can have more than one dynamic target.
    pub fn is_potentially_multi_target(self) -> bool {
        !matches!(self, BranchKind::UncondDirect | BranchKind::Call)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::CondDirect => "cond-direct",
            BranchKind::UncondDirect => "uncond-direct",
            BranchKind::Indirect => "indirect",
            BranchKind::Call => "call",
            BranchKind::CallIndirect => "call-indirect",
            BranchKind::Return => "return",
        };
        f.write_str(s)
    }
}

/// The source registers read by one instruction, stored inline.
///
/// No instruction reads more than two registers, so the set fits in a fixed
/// two-element array plus a length — [`Instr::sources`] is called once per
/// fetched instruction on the simulator hot loop, and returning a `Vec`
/// there would put a heap allocation on every simulated instruction.
/// Dereferences to `&[Reg]`, so it iterates and indexes like a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceRegs {
    regs: [Reg; 2],
    len: u8,
}

impl SourceRegs {
    const NONE: SourceRegs = SourceRegs {
        regs: [crate::reg::ZERO; 2],
        len: 0,
    };

    #[inline]
    const fn one(r: Reg) -> SourceRegs {
        SourceRegs {
            regs: [r, crate::reg::ZERO],
            len: 1,
        }
    }

    #[inline]
    const fn two(a: Reg, b: Reg) -> SourceRegs {
        SourceRegs {
            regs: [a, b],
            len: 2,
        }
    }

    /// The sources as a slice, in operand order.
    #[inline]
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }
}

impl std::ops::Deref for SourceRegs {
    type Target = [Reg];

    #[inline]
    fn deref(&self) -> &[Reg] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a SourceRegs {
    type Item = &'a Reg;
    type IntoIter = std::slice::Iter<'a, Reg>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A single instruction.
///
/// Control-flow targets are instruction indices into the owning
/// [`crate::program::Program`]. Every variant's payload is plain data, so
/// instructions are `Copy`: the simulator executes fetched instructions by
/// value instead of cloning them out of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand (sign-extended to 64 bits).
        imm: i64,
    },
    /// Load immediate: `rd = imm`.
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Memory load: `rd = mem[rs1 + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Memory store: `mem[base + offset] = src`.
    Store {
        /// Source register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional direct branch to `target` if `cond(rs1, rs2)` holds.
    Branch {
        /// Branch condition.
        cond: BranchCond,
        /// First operand register.
        rs1: Reg,
        /// Second operand register.
        rs2: Reg,
        /// Target instruction index when taken.
        target: usize,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump: `pc = rs1` (value interpreted as an instruction index).
    JumpIndirect {
        /// Register holding the target instruction index.
        rs1: Reg,
    },
    /// Direct call: pushes the return address on the stack and jumps.
    Call {
        /// Target instruction index of the callee.
        target: usize,
    },
    /// Indirect call through a register.
    CallIndirect {
        /// Register holding the callee instruction index.
        rs1: Reg,
    },
    /// Return: pops the return address from the stack and jumps to it.
    Ret,
    /// Declassification marker: `rd = rs1`, clearing any secret taint.
    ///
    /// Mirrors `declassify` in the paper's Listing 1; architecturally a move.
    Declassify {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
    },
    /// No operation.
    Nop,
    /// Stops the program.
    Halt,
}

impl Instr {
    /// Returns the branch kind if this is a control-flow instruction.
    #[inline]
    pub fn branch_kind(&self) -> Option<BranchKind> {
        match self {
            Instr::Branch { .. } => Some(BranchKind::CondDirect),
            Instr::Jump { .. } => Some(BranchKind::UncondDirect),
            Instr::JumpIndirect { .. } => Some(BranchKind::Indirect),
            Instr::Call { .. } => Some(BranchKind::Call),
            Instr::CallIndirect { .. } => Some(BranchKind::CallIndirect),
            Instr::Ret => Some(BranchKind::Return),
            _ => None,
        }
    }

    /// True for any control-flow instruction.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.branch_kind().is_some()
    }

    /// True for loads.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// True for stores. `call` also writes memory (the return address) but is
    /// not reported here; the timing model special-cases it.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// True for instructions that access data memory, including the implicit
    /// stack accesses of `call` and `ret`.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Call { .. }
                | Instr::CallIndirect { .. }
                | Instr::Ret
        )
    }

    /// Source registers read by the instruction (excluding the implicit stack
    /// pointer of `call`/`ret`, which is reported separately by the timing
    /// model). Returned inline — no allocation.
    #[inline]
    pub fn sources(&self) -> SourceRegs {
        match *self {
            Instr::Alu { rs1, rs2, .. } => SourceRegs::two(rs1, rs2),
            Instr::AluImm { rs1, .. } => SourceRegs::one(rs1),
            Instr::LoadImm { .. } => SourceRegs::NONE,
            Instr::Load { base, .. } => SourceRegs::one(base),
            Instr::Store { src, base, .. } => SourceRegs::two(src, base),
            Instr::Branch { rs1, rs2, .. } => SourceRegs::two(rs1, rs2),
            Instr::Jump { .. } => SourceRegs::NONE,
            Instr::JumpIndirect { rs1 } => SourceRegs::one(rs1),
            Instr::Call { .. } => SourceRegs::NONE,
            Instr::CallIndirect { rs1 } => SourceRegs::one(rs1),
            Instr::Ret => SourceRegs::NONE,
            Instr::Declassify { rs1, .. } => SourceRegs::one(rs1),
            Instr::Nop | Instr::Halt => SourceRegs::NONE,
        }
    }

    /// Destination register written by the instruction, if any.
    #[inline]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::LoadImm { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Declassify { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Execution latency in cycles used by the timing model (cache misses add
    /// to this for memory operations).
    #[inline]
    pub fn base_latency(&self) -> u64 {
        match self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => op.latency(),
            Instr::Load { .. } => 1,
            Instr::Store { .. } => 1,
            Instr::Branch { .. } => 1,
            Instr::Jump { .. } | Instr::JumpIndirect { .. } => 1,
            Instr::Call { .. } | Instr::CallIndirect { .. } | Instr::Ret => 1,
            Instr::LoadImm { .. } | Instr::Declassify { .. } | Instr::Nop => 1,
            Instr::Halt => 1,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instr::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Instr::LoadImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Load {
                rd,
                base,
                offset,
                width,
            } => write!(f, "ld{:?} {rd}, {offset}({base})", width),
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => write!(f, "st{:?} {src}, {offset}({base})", width),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{cond} {rs1}, {rs2}, @{target}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::JumpIndirect { rs1 } => write!(f, "jr {rs1}"),
            Instr::Call { target } => write!(f, "call @{target}"),
            Instr::CallIndirect { rs1 } => write!(f, "callr {rs1}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Declassify { rd, rs1 } => write!(f, "declassify {rd}, {rs1}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, A1, A2};

    #[test]
    fn alu_ops_basic() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX);
        assert_eq!(AluOp::Xor.apply(0b1010, 0b0110), 0b1100);
        assert_eq!(AluOp::And.apply(0b1010, 0b0110), 0b0010);
        assert_eq!(AluOp::Or.apply(0b1010, 0b0110), 0b1110);
        assert_eq!(AluOp::Sll.apply(1, 8), 256);
        assert_eq!(AluOp::Srl.apply(256, 8), 1);
        assert_eq!(AluOp::Sra.apply((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Rotl.apply(0x8000_0000_0000_0001, 1), 3);
        assert_eq!(AluOp::Rotr.apply(3, 1), 0x8000_0000_0000_0001);
        assert_eq!(AluOp::Mul.apply(1 << 40, 1 << 30), 0, "2^70 mod 2^64");
        assert_eq!(AluOp::Mulhu.apply(1 << 40, 1 << 30), 1 << 6);
        assert_eq!(AluOp::Slt.apply((-1i64) as u64, 1), 1);
        assert_eq!(AluOp::Sltu.apply((-1i64) as u64, 1), 0);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
        assert_eq!(AluOp::Srl.apply(2, 65), 1);
    }

    #[test]
    fn branch_cond_eval_and_negate() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BranchCond::Ge.eval(0, 0));
        assert!(BranchCond::Geu.eval(u64::MAX, 1));
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 0)] {
                assert_ne!(cond.eval(a, b), cond.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn branch_kind_classification() {
        let b = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: A0,
            rs2: A1,
            target: 3,
        };
        assert_eq!(b.branch_kind(), Some(BranchKind::CondDirect));
        assert_eq!(Instr::Ret.branch_kind(), Some(BranchKind::Return));
        assert_eq!(
            Instr::Call { target: 0 }.branch_kind(),
            Some(BranchKind::Call)
        );
        assert_eq!(
            Instr::Jump { target: 0 }.branch_kind(),
            Some(BranchKind::UncondDirect)
        );
        assert_eq!(
            Instr::Alu {
                op: AluOp::Add,
                rd: A0,
                rs1: A1,
                rs2: A2
            }
            .branch_kind(),
            None
        );
        assert!(!BranchKind::UncondDirect.is_potentially_multi_target());
        assert!(BranchKind::Return.is_potentially_multi_target());
    }

    #[test]
    fn sources_and_dest() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: A0,
            rs1: A1,
            rs2: A2,
        };
        assert_eq!(i.sources().as_slice(), &[A1, A2]);
        assert_eq!(i.dest(), Some(A0));
        let s = Instr::Store {
            src: A0,
            base: A1,
            offset: 8,
            width: MemWidth::Double,
        };
        assert_eq!(s.sources().as_slice(), &[A0, A1]);
        assert_eq!(s.dest(), None);
        assert!(s.is_store() && s.is_mem() && !s.is_load());
    }

    #[test]
    fn latencies() {
        assert_eq!(AluOp::Mul.latency(), 3);
        assert_eq!(AluOp::Add.latency(), 1);
        let i = Instr::AluImm {
            op: AluOp::Mulhu,
            rd: A0,
            rs1: A1,
            imm: 3,
        };
        assert_eq!(i.base_latency(), 3);
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Double.bytes(), 8);
    }

    #[test]
    fn display_is_nonempty() {
        let instrs = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::Jump { target: 7 },
            Instr::LoadImm { rd: A0, imm: 42 },
        ];
        for i in instrs {
            assert!(!i.to_string().is_empty());
        }
    }
}
