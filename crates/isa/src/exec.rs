//! Functional (architectural) executor.
//!
//! The executor implements the sequential execution model of the ISA: one
//! instruction at a time, in program order, with no speculation. It is used
//! for three purposes:
//!
//! 1. as the golden reference for kernel correctness tests,
//! 2. as the instrumentation vehicle for branch-trace collection
//!    (`cassandra-trace`), standing in for Intel Pin / gem5 trace capture,
//! 3. to produce the contract traces `⟦p⟧^seq_ct(σ)` consumed by the security
//!    checker in `cassandra-core`.

use crate::error::IsaError;
use crate::instr::{BranchKind, Instr, MemWidth};
use crate::memory::Memory;
use crate::observe::{BranchOutcome, MemAccess, NullObserver, Observer};
use crate::program::{Program, STACK_TOP};
use crate::reg::{Reg, NUM_REGS, SP};

/// Default step budget used by [`Executor::run`]'s callers in this workspace.
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// Result of executing a single instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction executed and the program continues.
    Continue,
    /// A `halt` instruction was executed.
    Halted,
}

/// The architectural state and sequential execution engine.
///
/// # Examples
///
/// ```
/// use cassandra_isa::builder::ProgramBuilder;
/// use cassandra_isa::exec::Executor;
/// use cassandra_isa::reg::A0;
///
/// # fn main() -> Result<(), cassandra_isa::error::IsaError> {
/// let mut b = ProgramBuilder::new("answer");
/// b.li(A0, 42);
/// b.halt();
/// let p = b.build()?;
/// let mut exec = Executor::new(&p);
/// exec.run(10)?;
/// assert_eq!(exec.reg(A0), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    pc: usize,
    memory: Memory,
    halted: bool,
    steps: u64,
    call_depth: usize,
}

impl<'p> Executor<'p> {
    /// Creates an executor with the program's initial data image loaded and
    /// the stack pointer set to [`STACK_TOP`].
    pub fn new(program: &'p Program) -> Self {
        let mut memory = Memory::new();
        for region in &program.data {
            memory.write_bytes(region.addr, &region.bytes);
        }
        let mut regs = [0u64; NUM_REGS];
        regs[SP.index()] = STACK_TOP;
        Executor {
            program,
            regs,
            pc: 0,
            memory,
            halted: false,
            steps: 0,
            call_depth: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether a `halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Reads a register (the zero register always reads 0).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to the zero register are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Shared access to data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to data memory (useful for injecting inputs in tests).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Runs until `halt` or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns an error if the program runs off the end of the text, exceeds
    /// the step budget, or executes `ret` with an empty call stack.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, IsaError> {
        self.run_with_observer(max_steps, &mut NullObserver)
    }

    /// Runs with an observer receiving branch and memory events.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_with_observer<O: Observer>(
        &mut self,
        max_steps: u64,
        observer: &mut O,
    ) -> Result<u64, IsaError> {
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= max_steps {
                return Err(IsaError::StepLimitExceeded { limit: max_steps });
            }
            self.step(observer)?;
        }
        Ok(self.steps - start)
    }

    /// Executes a single instruction, invoking the observer hooks.
    ///
    /// # Errors
    ///
    /// Returns an error for PC out of range or return-stack underflow.
    pub fn step<O: Observer>(&mut self, observer: &mut O) -> Result<StepOutcome, IsaError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let instr = *self.program.instr(pc).ok_or(IsaError::PcOutOfRange {
            pc,
            len: self.program.len(),
        })?;
        let is_crypto = self.program.is_crypto_pc(pc);
        observer.on_step(pc, is_crypto);
        self.steps += 1;

        let mut next_pc = pc + 1;
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
            }
            Instr::LoadImm { rd, imm } => {
                self.set_reg(rd, imm);
            }
            Instr::Declassify { rd, rs1 } => {
                let v = self.reg(rs1);
                self.set_reg(rd, v);
            }
            Instr::Load {
                rd,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let v = self.memory.read(addr, width);
                self.set_reg(rd, v);
                observer.on_mem(&MemAccess {
                    pc,
                    addr,
                    width,
                    is_store: false,
                    is_crypto,
                    is_secret: self.program.is_secret_addr(addr),
                });
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let v = self.reg(src);
                self.memory.write(addr, v, width);
                observer.on_mem(&MemAccess {
                    pc,
                    addr,
                    width,
                    is_store: true,
                    is_crypto,
                    is_secret: self.program.is_secret_addr(addr),
                });
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                next_pc = if taken { target } else { pc + 1 };
                observer.on_branch(&BranchOutcome {
                    pc,
                    kind: BranchKind::CondDirect,
                    taken,
                    target: next_pc,
                    is_crypto,
                });
            }
            Instr::Jump { target } => {
                next_pc = target;
                observer.on_branch(&BranchOutcome {
                    pc,
                    kind: BranchKind::UncondDirect,
                    taken: true,
                    target: next_pc,
                    is_crypto,
                });
            }
            Instr::JumpIndirect { rs1 } => {
                next_pc = self.reg(rs1) as usize;
                observer.on_branch(&BranchOutcome {
                    pc,
                    kind: BranchKind::Indirect,
                    taken: true,
                    target: next_pc,
                    is_crypto,
                });
            }
            Instr::Call { target } => {
                next_pc = target;
                self.push_return_addr(pc, pc + 1, is_crypto, observer);
                observer.on_branch(&BranchOutcome {
                    pc,
                    kind: BranchKind::Call,
                    taken: true,
                    target: next_pc,
                    is_crypto,
                });
            }
            Instr::CallIndirect { rs1 } => {
                next_pc = self.reg(rs1) as usize;
                self.push_return_addr(pc, pc + 1, is_crypto, observer);
                observer.on_branch(&BranchOutcome {
                    pc,
                    kind: BranchKind::CallIndirect,
                    taken: true,
                    target: next_pc,
                    is_crypto,
                });
            }
            Instr::Ret => {
                if self.call_depth == 0 {
                    return Err(IsaError::ReturnWithoutCall { pc });
                }
                self.call_depth -= 1;
                let sp = self.reg(SP);
                let ret = self.memory.read_u64(sp);
                self.set_reg(SP, sp.wrapping_add(8));
                observer.on_mem(&MemAccess {
                    pc,
                    addr: sp,
                    width: MemWidth::Double,
                    is_store: false,
                    is_crypto,
                    is_secret: self.program.is_secret_addr(sp),
                });
                next_pc = ret as usize;
                observer.on_branch(&BranchOutcome {
                    pc,
                    kind: BranchKind::Return,
                    taken: true,
                    target: next_pc,
                    is_crypto,
                });
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                return Ok(StepOutcome::Halted);
            }
        }
        self.pc = next_pc;
        Ok(StepOutcome::Continue)
    }

    fn push_return_addr<O: Observer>(
        &mut self,
        pc: usize,
        ret_addr: usize,
        is_crypto: bool,
        observer: &mut O,
    ) {
        let sp = self.reg(SP).wrapping_sub(8);
        self.set_reg(SP, sp);
        self.memory.write_u64(sp, ret_addr as u64);
        self.call_depth += 1;
        observer.on_mem(&MemAccess {
            pc,
            addr: sp,
            width: MemWidth::Double,
            is_store: true,
            is_crypto,
            is_secret: self.program.is_secret_addr(sp),
        });
    }
}

/// Runs a program to completion and returns the contract trace under the
/// constant-time leakage model (`⟦p⟧^seq_ct(σ)`).
///
/// # Errors
///
/// Propagates any executor error (step budget, PC out of range, ...).
pub fn contract_trace(
    program: &Program,
    max_steps: u64,
) -> Result<crate::observe::ContractTrace, IsaError> {
    let mut exec = Executor::new(program);
    let mut obs = crate::observe::ContractObserver::new();
    exec.run_with_observer(max_steps, &mut obs)?;
    Ok(obs.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::observe::{ContractObserver, Obs};
    use crate::reg::{A0, A1, A2, T0, ZERO};

    #[test]
    fn zero_register_is_immutable() {
        let mut b = ProgramBuilder::new("zero");
        b.li(ZERO, 55);
        b.addi(A0, ZERO, 7);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(10).unwrap();
        assert_eq!(e.reg(ZERO), 0);
        assert_eq!(e.reg(A0), 7);
    }

    #[test]
    fn step_limit_enforced() {
        let mut b = ProgramBuilder::new("spin");
        b.label("l");
        b.j("l");
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run(100), Err(IsaError::StepLimitExceeded { limit: 100 }));
    }

    #[test]
    fn return_without_call_errors() {
        let mut b = ProgramBuilder::new("badret");
        b.ret();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run(10), Err(IsaError::ReturnWithoutCall { pc: 0 }));
    }

    #[test]
    fn pc_out_of_range_errors() {
        let mut b = ProgramBuilder::new("falloff");
        b.nop();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert!(matches!(e.run(10), Err(IsaError::PcOutOfRange { .. })));
    }

    #[test]
    fn nested_calls_preserve_return_addresses() {
        let mut b = ProgramBuilder::new("nested");
        b.li(A0, 0);
        b.call("outer");
        b.halt();
        b.func("outer");
        b.addi(A0, A0, 1);
        b.call("inner");
        b.addi(A0, A0, 100);
        b.ret();
        b.func("inner");
        b.addi(A0, A0, 10);
        b.ret();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.reg(A0), 111);
    }

    #[test]
    fn data_image_is_loaded() {
        let mut b = ProgramBuilder::new("data");
        let addr = b.alloc_u64s("tab", &[7, 8, 9]);
        b.li(A1, addr);
        b.ld(A0, A1, 16);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(10).unwrap();
        assert_eq!(e.reg(A0), 9);
    }

    #[test]
    fn contract_trace_contains_cf_and_mem() {
        let mut b = ProgramBuilder::new("ct");
        let addr = b.alloc_u64s("x", &[1]);
        b.begin_crypto();
        b.li(A1, addr);
        b.ld(A0, A1, 0);
        b.li(A2, 2);
        b.label("loop");
        b.addi(A2, A2, -1);
        b.bne(A2, ZERO, "loop");
        b.end_crypto();
        b.halt();
        let p = b.build().unwrap();
        let trace = contract_trace(&p, 1000).unwrap();
        let cf: Vec<_> = trace
            .iter()
            .filter(|t| matches!(t.obs, Obs::Cf(_)))
            .collect();
        let mem: Vec<_> = trace
            .iter()
            .filter(|t| matches!(t.obs, Obs::Mem(_)))
            .collect();
        assert_eq!(cf.len(), 2, "two dynamic executions of the loop branch");
        assert_eq!(mem.len(), 1, "one load");
        assert!(trace.iter().all(|t| t.crypto));
    }

    #[test]
    fn contract_trace_is_secret_independent_for_ct_code() {
        // A constant-time conditional select: both secret values lead to the
        // same observations.
        let build = |secret: u64| {
            let mut b = ProgramBuilder::new("ctsel");
            let s = b.alloc_secret_u64s("secret", &[secret]);
            b.begin_crypto();
            b.li(A1, s);
            b.ld(A0, A1, 0);
            // mask = 0 - (secret & 1); result = (x & mask) | (y & !mask)
            b.andi(T0, A0, 1);
            b.sub(T0, ZERO, T0);
            b.li(A2, 0xAAAA);
            b.and(A2, A2, T0);
            b.end_crypto();
            b.halt();
            b.build().unwrap()
        };
        let t0 = contract_trace(&build(0), 1000).unwrap();
        let t1 = contract_trace(&build(1), 1000).unwrap();
        assert_eq!(t0, t1);
    }

    #[test]
    fn observer_sees_stack_traffic_for_calls() {
        let mut b = ProgramBuilder::new("stack");
        b.call("f");
        b.halt();
        b.func("f");
        b.ret();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let mut obs = ContractObserver::new();
        e.run_with_observer(100, &mut obs).unwrap();
        let stores = obs
            .trace
            .iter()
            .filter(|t| matches!(t.obs, Obs::Mem(crate::observe::MemObs::Store(_))))
            .count();
        let loads = obs
            .trace
            .iter()
            .filter(|t| matches!(t.obs, Obs::Mem(crate::observe::MemObs::Load(_))))
            .count();
        assert_eq!(stores, 1, "call pushes the return address");
        assert_eq!(loads, 1, "ret pops the return address");
    }

    #[test]
    fn word_and_byte_accesses() {
        let mut b = ProgramBuilder::new("widths");
        let addr = b.alloc_u32s("w", &[0xdead_beef, 0x1234_5678]);
        b.li(A1, addr);
        b.lw(A0, A1, 4);
        b.lb(A2, A1, 3);
        b.sw(A0, A1, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.run(10).unwrap();
        assert_eq!(e.reg(A0), 0x1234_5678);
        assert_eq!(e.reg(A2), 0xde);
        assert_eq!(e.memory().read_u32(addr), 0x1234_5678);
    }
}
