//! Figure 8 — SpectreGuard-style synthetic mixes: ProSpeCT vs
//! Cassandra+ProSpeCT across sandbox/crypto fractions, for a chacha20-like
//! primitive (public stack) and a curve25519-like primitive (secret stack).

use cassandra_core::eval::Evaluator;
use cassandra_core::experiments::figure8_with;
use cassandra_core::registry::{ExperimentRegistry, Fig8Experiment};
use cassandra_core::report;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut registry = ExperimentRegistry::standard();
    registry.register(Fig8Experiment { scale: 20 });
    let mut session = Evaluator::new();
    let run = registry
        .run("fig8", &mut session)
        .expect("figure 8")
        .expect("fig8 is registered");
    println!("\n=== {} (scale 20) ===", run.title);
    println!("{}", report::render_text(&run.output));

    c.bench_function("fig8/synthetic_mixes_scale4_cold", |b| {
        b.iter(|| figure8_with(&mut Evaluator::new(), 4).expect("figure 8"))
    });
    let mut warm = Evaluator::new();
    figure8_with(&mut warm, 4).expect("warm-up");
    c.bench_function("fig8/synthetic_mixes_scale4_cached", |b| {
        b.iter(|| figure8_with(&mut warm, 4).expect("figure 8"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
