//! Figure 8 — SpectreGuard-style synthetic mixes: ProSpeCT vs
//! Cassandra+ProSpeCT across sandbox/crypto fractions, for a chacha20-like
//! primitive (public stack) and a curve25519-like primitive (secret stack).

use cassandra_core::experiments::figure8;
use cassandra_core::report::format_fig8;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let points = figure8(20).expect("figure 8");
    println!("\n=== Figure 8: synthetic benchmarks (scale 20) ===");
    println!("{}", format_fig8(&points));

    c.bench_function("fig8/synthetic_mixes_scale4", |b| {
        b.iter(|| figure8(4).expect("figure 8"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
