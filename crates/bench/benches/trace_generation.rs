//! §7.5 — runtime of the upfront trace-generation procedure (steps A–E of
//! Algorithm 2), plus micro-benchmarks of the k-mers compression itself.

use cassandra_core::experiments::trace_generation_timing;
use cassandra_core::report::format_trace_gen;
use cassandra_kernels::suite;
use cassandra_trace::kmers::{compress, KmersConfig};
use cassandra_trace::vanilla::VanillaTrace;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = trace_generation_timing(&suite::full_suite()).expect("trace generation timing");
    println!("\n=== §7.5: trace generation runtime (full suite) ===");
    println!("{}", format_trace_gen(&rows));

    // Micro-benchmark: compress a large, loop-structured vanilla trace
    // (100k dynamic executions of a nested-loop branch).
    let mut targets = Vec::new();
    for _ in 0..2_000 {
        targets.extend(std::iter::repeat(10usize).take(49));
        targets.push(60);
    }
    let vanilla = VanillaTrace::from_targets(&targets);
    c.bench_function("trace_generation/kmers_compress_100k_executions", |b| {
        b.iter(|| compress(&vanilla, &KmersConfig::default()))
    });

    let workload = suite::chacha20_workload(256);
    c.bench_function("trace_generation/algorithm2_chacha20", |b| {
        b.iter(|| {
            cassandra_trace::genproc::generate_traces(
                &workload.kernel.program,
                None,
                workload.kernel.step_limit,
            )
            .expect("generation")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
