//! §7.5 — runtime of the upfront trace-generation procedure (steps A–E of
//! Algorithm 2), plus micro-benchmarks of the k-mers compression itself and
//! of the session cache (a cache hit should be orders of magnitude cheaper
//! than a fresh analysis).

use cassandra_core::eval::Evaluator;
use cassandra_core::registry::ExperimentRegistry;
use cassandra_core::report;
use cassandra_kernels::suite;
use cassandra_trace::kmers::{compress, KmersConfig};
use cassandra_trace::vanilla::VanillaTrace;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut session = Evaluator::builder().workloads(suite::full_suite()).build();
    let run = ExperimentRegistry::standard()
        .run("tracegen", &mut session)
        .expect("trace generation timing")
        .expect("tracegen is registered");
    println!("\n=== {} (full suite) ===", run.title);
    println!("{}", report::render_text(&run.output));

    // Micro-benchmark: compress a large, loop-structured vanilla trace
    // (100k dynamic executions of a nested-loop branch).
    let mut targets = Vec::new();
    for _ in 0..2_000 {
        targets.extend(std::iter::repeat_n(10usize, 49));
        targets.push(60);
    }
    let vanilla = VanillaTrace::from_targets(&targets);
    c.bench_function("trace_generation/kmers_compress_100k_executions", |b| {
        b.iter(|| compress(&vanilla, &KmersConfig::default()))
    });

    let workload = suite::chacha20_workload(256);
    c.bench_function("trace_generation/algorithm2_chacha20", |b| {
        b.iter(|| {
            cassandra_trace::genproc::generate_traces(
                &workload.kernel.program,
                None,
                workload.kernel.step_limit,
            )
            .expect("generation")
        })
    });
    c.bench_function("trace_generation/session_analysis_chacha20_cold", |b| {
        b.iter(|| Evaluator::new().analysis(&workload).expect("generation"))
    });
    let mut warm = Evaluator::new();
    warm.analysis(&workload).expect("warm-up");
    c.bench_function(
        "trace_generation/session_analysis_chacha20_cache_hit",
        |b| b.iter(|| warm.analysis(&workload).expect("cache hit")),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
