//! Table 1 — branch analysis of cryptographic programs.
//!
//! Prints the full per-program table (vanilla / k-mers trace sizes and
//! compression rates) for the 21-workload suite, and benchmarks the analysis
//! pipeline itself on a representative subset.

use cassandra_core::experiments::{quick_workloads, table1};
use cassandra_core::report::format_table1;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Regenerate and print the full table once.
    let full = table1(&suite::full_suite()).expect("table 1 analysis");
    println!("\n=== Table 1: branch analysis (full suite) ===");
    println!("{}", format_table1(&full));

    let workloads = quick_workloads();
    c.bench_function("table1/branch_analysis_quick_suite", |b| {
        b.iter(|| table1(&workloads).expect("analysis"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
