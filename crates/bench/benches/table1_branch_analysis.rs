//! Table 1 — branch analysis of cryptographic programs.
//!
//! Prints the full per-program table (vanilla / k-mers trace sizes and
//! compression rates) for the 21-workload suite via the experiment registry,
//! and benchmarks the analysis pipeline itself on a representative subset —
//! both cold (one-shot evaluator per iteration) and warm (session cache).

use cassandra_core::eval::Evaluator;
use cassandra_core::experiments::{quick_workloads, table1_with};
use cassandra_core::registry::ExperimentRegistry;
use cassandra_core::report;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Regenerate and print the full table once, through the registry.
    let mut session = Evaluator::builder().workloads(suite::full_suite()).build();
    let run = ExperimentRegistry::standard()
        .run("table1", &mut session)
        .expect("table 1 analysis")
        .expect("table1 is registered");
    println!("\n=== {} (full suite) ===", run.title);
    println!("{}", report::render_text(&run.output));

    let workloads = quick_workloads();
    c.bench_function("table1/branch_analysis_quick_suite_cold", |b| {
        b.iter(|| table1_with(&mut Evaluator::new(), &workloads).expect("analysis"))
    });
    let mut warm = Evaluator::new();
    table1_with(&mut warm, &workloads).expect("warm-up analysis");
    c.bench_function("table1/branch_analysis_quick_suite_cached", |b| {
        b.iter(|| table1_with(&mut warm, &workloads).expect("analysis"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
