//! Figure 7 — execution time of the crypto benchmark suite under the four
//! designs (UnsafeBaseline, Cassandra, Cassandra+STL, SPT), normalised to the
//! unsafe baseline.
//!
//! Prints the full per-workload series and the geomean line, and benchmarks a
//! single representative workload/design pair.

use cassandra_core::experiments::{figure7, FIG7_DESIGNS};
use cassandra_core::report::format_fig7;
use cassandra_core::{analyze_workload, simulate_workload};
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let result = figure7(&suite::full_suite(), &FIG7_DESIGNS).expect("figure 7");
    println!("\n=== Figure 7: normalized execution time (full suite) ===");
    println!("{}", format_fig7(&result));

    let workload = suite::sha256_workload(192);
    let analysis = analyze_workload(&workload).expect("analysis");
    let base_cfg = CpuConfig::golden_cove_like();
    c.bench_function("fig7/simulate_sha256_baseline", |b| {
        b.iter(|| simulate_workload(&workload, &analysis, &base_cfg).expect("sim"))
    });
    let cass_cfg = base_cfg.with_defense(DefenseMode::Cassandra);
    c.bench_function("fig7/simulate_sha256_cassandra", |b| {
        b.iter(|| simulate_workload(&workload, &analysis, &cass_cfg).expect("sim"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
