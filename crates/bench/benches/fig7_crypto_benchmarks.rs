//! Figure 7 — execution time of the crypto benchmark suite under the four
//! designs (UnsafeBaseline, Cassandra, Cassandra+STL, SPT), normalised to the
//! unsafe baseline.
//!
//! Prints the full per-workload series via the experiment registry, and
//! benchmarks a single representative workload/design pair through a warm
//! evaluation session (the analysis comes from the session cache, so the
//! numbers isolate the simulation itself).

use cassandra_core::eval::Evaluator;
use cassandra_core::registry::ExperimentRegistry;
use cassandra_core::report;
use cassandra_cpu::config::{CpuConfig, DefenseMode};
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut session = Evaluator::builder().workloads(suite::full_suite()).build();
    let run = ExperimentRegistry::standard()
        .run("fig7", &mut session)
        .expect("figure 7")
        .expect("fig7 is registered");
    println!("\n=== {} (full suite) ===", run.title);
    println!("{}", report::render_text(&run.output));

    let workload = suite::sha256_workload(192);
    let mut base_cfg = CpuConfig::golden_cove_like();
    base_cfg.max_instructions = base_cfg.max_instructions.max(workload.kernel.step_limit);
    let mut warm = Evaluator::new();
    let analysis = warm.analysis(&workload).expect("analysis");
    c.bench_function("fig7/simulate_sha256_baseline", |b| {
        b.iter(|| {
            Evaluator::simulate_program(&workload.kernel.program, Some(&analysis), &base_cfg)
                .expect("sim")
        })
    });
    let cass_cfg = base_cfg.with_defense(DefenseMode::Cassandra);
    c.bench_function("fig7/simulate_sha256_cassandra", |b| {
        b.iter(|| {
            Evaluator::simulate_program(&workload.kernel.program, Some(&analysis), &cass_cfg)
                .expect("sim")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
