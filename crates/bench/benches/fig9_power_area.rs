//! Figure 9 — power and area of Cassandra relative to the unsafe baseline
//! (McPAT/CACTI-style analytic model driven by simulation statistics).

use cassandra_core::experiments::{figure9, quick_workloads};
use cassandra_core::report::format_fig9;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let result = figure9(&suite::full_suite()).expect("figure 9");
    println!("\n=== Figure 9: power and area (full suite) ===");
    println!("{}", format_fig9(&result));

    let workloads = quick_workloads();
    c.bench_function("fig9/power_area_quick_suite", |b| {
        b.iter(|| figure9(&workloads).expect("figure 9"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
