//! Figure 9 — power and area of Cassandra relative to the unsafe baseline
//! (McPAT/CACTI-style analytic model driven by simulation statistics).

use cassandra_core::eval::Evaluator;
use cassandra_core::experiments::{figure9_with, quick_workloads};
use cassandra_core::registry::ExperimentRegistry;
use cassandra_core::report;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut session = Evaluator::builder().workloads(suite::full_suite()).build();
    let run = ExperimentRegistry::standard()
        .run("fig9", &mut session)
        .expect("figure 9")
        .expect("fig9 is registered");
    println!("\n=== {} (full suite) ===", run.title);
    println!("{}", report::render_text(&run.output));

    let workloads = quick_workloads();
    let mut warm = Evaluator::new();
    figure9_with(&mut warm, &workloads).expect("warm-up");
    c.bench_function("fig9/power_area_quick_suite_cached", |b| {
        b.iter(|| figure9_with(&mut warm, &workloads).expect("figure 9"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
