//! Discussion Q4 — the cost of flushing the BTU periodically (modelling
//! context switches between crypto applications at a 250 Hz timer).

use cassandra_core::experiments::{q4_btu_flush, quick_workloads};
use cassandra_core::report::format_q4;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

/// Committed instructions between flushes. At a few GHz and IPC of a few, a
/// 250 Hz timer corresponds to millions of instructions; our kernels are
/// SimPoint-sized, so a proportionally smaller interval is used to exercise
/// several flushes per run.
const FLUSH_INTERVAL: u64 = 50_000;

fn bench(c: &mut Criterion) {
    let result = q4_btu_flush(&suite::full_suite(), FLUSH_INTERVAL).expect("q4");
    println!("\n=== Q4: periodic BTU flush (full suite) ===");
    println!("{}", format_q4(&result));

    let workloads = quick_workloads();
    c.bench_function("q4/btu_flush_quick_suite", |b| {
        b.iter(|| q4_btu_flush(&workloads, 50_000).expect("q4"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
