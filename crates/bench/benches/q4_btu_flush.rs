//! Discussion Q4 — the cost of flushing the BTU periodically (modelling
//! context switches between crypto applications at a 250 Hz timer).

use cassandra_core::eval::Evaluator;
use cassandra_core::experiments::{q4_with, quick_workloads};
use cassandra_core::registry::{ExperimentRegistry, Q4Experiment};
use cassandra_core::report;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

/// Committed instructions between flushes. At a few GHz and IPC of a few, a
/// 250 Hz timer corresponds to millions of instructions; our kernels are
/// SimPoint-sized, so a proportionally smaller interval is used to exercise
/// several flushes per run.
const FLUSH_INTERVAL: u64 = 50_000;

fn bench(c: &mut Criterion) {
    let mut registry = ExperimentRegistry::standard();
    registry.register(Q4Experiment {
        flush_interval: FLUSH_INTERVAL,
        ..Q4Experiment::default()
    });
    let mut session = Evaluator::builder().workloads(suite::full_suite()).build();
    let run = registry
        .run("q4", &mut session)
        .expect("q4")
        .expect("q4 is registered");
    println!("\n=== {} (full suite) ===", run.title);
    println!("{}", report::render_text(&run.output));

    let workloads = quick_workloads();
    let mut warm = Evaluator::new();
    q4_with(&mut warm, &workloads, FLUSH_INTERVAL, 2).expect("warm-up");
    c.bench_function("q4/btu_flush_quick_suite_cached", |b| {
        b.iter(|| q4_with(&mut warm, &workloads, FLUSH_INTERVAL, 2).expect("q4"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
