//! Discussion Q3 — restricted frontends (Cassandra-lite, Fence,
//! Cassandra-noTC) versus full Cassandra.

use cassandra_core::eval::Evaluator;
use cassandra_core::experiments::{q3_with, quick_workloads, Q3_VARIANTS};
use cassandra_core::registry::{ExperimentOutput, ExperimentRegistry};
use cassandra_core::report;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut session = Evaluator::builder().workloads(suite::full_suite()).build();
    let run = ExperimentRegistry::standard()
        .run("q3", &mut session)
        .expect("q3")
        .expect("q3 is registered");
    println!("\n=== {} (full suite) ===", run.title);
    println!("{}", report::render_text(&run.output));
    if let ExperimentOutput::Q3(rows) = &run.output {
        // Average slowdown per (variant, workload group) — whatever variant
        // list the registry's default enumerates, not a hand-listed one.
        let mut by_key: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for r in rows {
            by_key
                .entry(format!("{} on {}", r.design, r.group))
                .or_default()
                .push(r.slowdown_pct);
        }
        for (key, slowdowns) in by_key {
            let avg = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
            println!("average slowdown of {key}: {avg:+.2}%");
        }
    }

    let workloads = quick_workloads();
    let mut warm = Evaluator::new();
    q3_with(&mut warm, &workloads, &Q3_VARIANTS).expect("warm-up");
    c.bench_function("q3/restricted_frontends_quick_suite_cached", |b| {
        b.iter(|| q3_with(&mut warm, &workloads, &Q3_VARIANTS).expect("q3"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
