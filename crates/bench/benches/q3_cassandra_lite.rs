//! Discussion Q3 — Cassandra-lite (single-target hints only, no BTU) versus
//! full Cassandra.

use cassandra_core::experiments::{q3_cassandra_lite, quick_workloads};
use cassandra_core::report::format_q3;
use cassandra_kernels::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = q3_cassandra_lite(&suite::full_suite()).expect("q3");
    println!("\n=== Q3: Cassandra-lite vs Cassandra (full suite) ===");
    println!("{}", format_q3(&rows));
    let mut by_group: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for r in &rows {
        by_group.entry(r.group.to_string()).or_default().push(r.slowdown_pct);
    }
    for (group, slowdowns) in by_group {
        let avg = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        println!("average Cassandra-lite slowdown in {group}: {avg:+.2}%");
    }

    let workloads = quick_workloads();
    c.bench_function("q3/cassandra_lite_quick_suite", |b| {
        b.iter(|| q3_cassandra_lite(&workloads).expect("q3"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
