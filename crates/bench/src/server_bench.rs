//! The wire-throughput `server` suite: end-to-end cells/sec through a
//! running evaluation server, measured at several concurrent multiplexed
//! client counts.
//!
//! Where the `smoke`/`paper` suites time the bare simulator, this suite
//! times the whole serving stack — TCP framing, request pipelining, the
//! shared worker pool and the sharded analysis store — by driving a
//! loopback server with N clients, each multiplexing several id-tagged
//! sweeps on ONE connection (protocol v3). The metric is wire cells/sec:
//! `EvalRecord` lines received across all clients divided by the
//! wall-clock window from the synchronized start to the last client's
//! final `Done`.
//!
//! Before/after runs are **same-window interleaved** like the simulator
//! suites: `measure_server_suite` alternates rounds against the "before"
//! server (an externally started pre-PR binary, via `--before-addr`) and
//! the in-process "after" server, so machine-load noise hits both sides
//! alike. Analyses are warmed on each server before its clock starts: the
//! suite measures serving throughput, not Algorithm 2.

use crate::{guarded_speedup, per_second, suite_workloads, REPRESENTATIVE_POLICIES};
use cassandra_server::{serve, Client, EvalService, Request, Response, ServerHandle, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Client counts the committed trajectory reports, lowest first.
pub const SERVER_SUITE_CLIENTS: &[usize] = &[1, 4, 8];

/// Tagged sweeps each client keeps in flight on its one connection.
pub const SERVER_SWEEPS_PER_CLIENT: usize = 2;

/// Worker threads for the benched servers — pinned to the pre-PR server's
/// fixed default so before/after compare serving architecture, not pool
/// size.
pub const SERVER_BENCH_THREADS: usize = 4;

/// The kernel specs behind the smoke workload set, submitted to every
/// benched server.
const SERVER_SUITE_KERNELS: &[(&str, u64)] = &[
    ("chacha20", 64),
    ("sha256", 96),
    ("poly1305", 64),
    ("des", 4),
];

/// Wire throughput at one concurrent-client count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerThroughput {
    /// Concurrent clients, each multiplexing
    /// [`SERVER_SWEEPS_PER_CLIENT`] tagged sweeps on one connection.
    pub clients: usize,
    /// Total `EvalRecord` lines received across all clients.
    pub cells: u64,
    /// Wall-clock seconds from the synchronized start to the last `Done`.
    pub wall_seconds: f64,
    /// Wire cells per second — the server-throughput metric.
    pub cells_per_sec: f64,
}

/// One timed pass of the server suite across every client count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerMeasurement {
    /// Always `server`.
    pub suite: String,
    /// Workload names every sweep covers.
    pub workloads: Vec<String>,
    /// Policy labels every sweep covers.
    pub policies: Vec<String>,
    /// Tagged sweeps each client pipelines.
    pub sweeps_per_client: usize,
    /// One entry per client count, lowest first.
    pub runs: Vec<ServerThroughput>,
}

impl ServerMeasurement {
    /// The run at exactly `clients` concurrent clients.
    pub fn run_at(&self, clients: usize) -> Option<&ServerThroughput> {
        self.runs.iter().find(|r| r.clients == clients)
    }

    /// The run with the most concurrent clients.
    pub fn max_clients_run(&self) -> Option<&ServerThroughput> {
        self.runs.iter().max_by_key(|r| r.clients)
    }
}

/// Before/after server-suite trajectory committed in `BENCH_<pr>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSuiteTrajectory {
    /// Measured against the pre-PR server binary.
    pub before: ServerMeasurement,
    /// Measured against the in-process (post-PR) server.
    pub after: ServerMeasurement,
    /// `after / before` wire cells/sec at one client.
    pub speedup_single_client: f64,
    /// `after / before` wire cells/sec at the highest client count.
    pub speedup_max_clients: f64,
}

/// The sweep every bench client sends: all submitted workloads across the
/// representative policy set.
fn sweep_request() -> Request {
    Request::Sweep {
        workloads: Vec::new(),
        policies: REPRESENTATIVE_POLICIES
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
    }
}

/// Submits the suite's workloads to the server at `addr` and runs one
/// untimed warm-up sweep so every analysis is cached before the clock
/// starts.
///
/// # Errors
///
/// Propagates socket errors; fails if the server rejects a request.
pub fn prepare_server_session(addr: SocketAddr) -> io::Result<()> {
    let mut client = Client::connect(addr)?;
    for (family, size) in SERVER_SUITE_KERNELS {
        let responses = client.request(&Request::Submit {
            spec: WorkloadSpec::Kernel {
                family: (*family).to_string(),
                size: *size,
                name: None,
            },
        })?;
        if !matches!(responses.last(), Some(Response::Submitted { .. })) {
            return Err(io::Error::other(format!(
                "warm-up Submit of {family}({size}) failed: {responses:?}"
            )));
        }
    }
    let responses = client.request(&sweep_request())?;
    if !matches!(responses.last(), Some(Response::Done(_))) {
        return Err(io::Error::other(format!(
            "warm-up sweep failed: {:?}",
            responses.last()
        )));
    }
    Ok(())
}

/// One timed round: `clients` threads connect, synchronize on a barrier,
/// each pipelines [`SERVER_SWEEPS_PER_CLIENT`] tagged sweeps on its one
/// connection and drains the multiplexed streams; the wall clock covers
/// the barrier release to the last client's final `Done`.
///
/// # Panics
///
/// Panics if a client errors or a stream ends without `Done` — a bench
/// run against a broken server has no meaningful result.
pub fn measure_server_round(addr: SocketAddr, clients: usize) -> ServerThroughput {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || -> io::Result<u64> {
            let mut client = Client::connect(addr)?;
            let ids: Vec<String> = (0..SERVER_SWEEPS_PER_CLIENT)
                .map(|s| format!("bench-{c}-{s}"))
                .collect();
            barrier.wait();
            for id in &ids {
                client.send_tagged(id, &sweep_request())?;
            }
            let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
            let streams = client.collect_multiplexed(&id_refs)?;
            let mut cells = 0u64;
            for (id, stream) in &streams {
                assert!(
                    matches!(stream.last(), Some(Response::Done(_))),
                    "bench stream {id} ended with {:?}",
                    stream.last()
                );
                cells += stream
                    .iter()
                    .filter(|r| matches!(r, Response::Record(_)))
                    .count() as u64;
            }
            Ok(cells)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let cells: u64 = handles
        .into_iter()
        .map(|h| {
            h.join()
                .expect("bench client thread panicked")
                .expect("bench client failed")
        })
        .sum();
    let wall = start.elapsed().as_secs_f64().max(f64::EPSILON);
    ServerThroughput {
        clients,
        cells,
        wall_seconds: wall,
        cells_per_sec: per_second(cells as f64, wall),
    }
}

fn empty_measurement() -> ServerMeasurement {
    ServerMeasurement {
        suite: "server".to_string(),
        workloads: suite_workloads("smoke")
            .iter()
            .map(|w| w.name.clone())
            .collect(),
        policies: REPRESENTATIVE_POLICIES
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        sweeps_per_client: SERVER_SWEEPS_PER_CLIENT,
        runs: Vec::new(),
    }
}

fn keep_best(measurement: &mut ServerMeasurement, run: ServerThroughput) {
    match measurement
        .runs
        .iter_mut()
        .find(|r| r.clients == run.clients)
    {
        Some(best) if best.cells_per_sec >= run.cells_per_sec => {}
        Some(best) => *best = run,
        None => {
            measurement.runs.push(run);
            measurement.runs.sort_by_key(|r| r.clients);
        }
    }
}

/// Measures the server suite against an in-process post-PR server and —
/// when `before_addr` names an externally started pre-PR server —
/// interleaves before/after rounds in the same wall-clock window,
/// best-of-`repeats` per client count per side. Returns `(after,
/// before)`.
///
/// # Panics
///
/// Panics if a server cannot be driven; see [`measure_server_round`].
pub fn measure_server_suite(
    before_addr: Option<SocketAddr>,
    clients: &[usize],
    repeats: u32,
) -> (ServerMeasurement, Option<ServerMeasurement>) {
    let handle: ServerHandle = serve("127.0.0.1:0", EvalService::new(), SERVER_BENCH_THREADS)
        .expect("bind the in-process bench server");
    prepare_server_session(handle.addr()).expect("warm the in-process bench server");
    if let Some(addr) = before_addr {
        prepare_server_session(addr).expect("warm the before server");
    }

    let mut after = empty_measurement();
    let mut before = before_addr.map(|_| empty_measurement());
    for _ in 0..repeats.max(1) {
        for &count in clients {
            // Alternate sides inside the window so load noise is shared.
            if let (Some(addr), Some(before)) = (before_addr, before.as_mut()) {
                keep_best(before, measure_server_round(addr, count));
            }
            keep_best(&mut after, measure_server_round(handle.addr(), count));
        }
    }
    handle.shutdown();
    handle.join();
    (after, before)
}

/// Builds the committed trajectory from a before/after measurement pair.
pub fn server_trajectory(
    before: ServerMeasurement,
    after: ServerMeasurement,
) -> ServerSuiteTrajectory {
    let rate = |run: Option<&ServerThroughput>| run.map_or(0.0, |r| r.cells_per_sec);
    let single = guarded_speedup(rate(after.run_at(1)), rate(before.run_at(1)));
    let max = guarded_speedup(
        rate(after.max_clients_run()),
        rate(before.max_clients_run()),
    );
    ServerSuiteTrajectory {
        before,
        after,
        speedup_single_client: single,
        speedup_max_clients: max,
    }
}

/// Structural validation of a server-suite trajectory; returns every
/// violation found (empty means valid). Called from
/// [`crate::validate_trajectory`] when the optional `server` field is
/// present.
pub fn validate_server_trajectory(t: &ServerSuiteTrajectory) -> Vec<String> {
    let mut problems = Vec::new();
    for (phase, m) in [("before", &t.before), ("after", &t.after)] {
        if m.suite != "server" {
            problems.push(format!(
                "server.{phase}.suite is `{}`, expected `server`",
                m.suite
            ));
        }
        if m.runs.is_empty() || m.workloads.is_empty() || m.policies.is_empty() {
            problems.push(format!("server.{phase} has no runs"));
        }
        for run in &m.runs {
            if run.clients == 0 || run.cells == 0 {
                problems.push(format!("server.{phase} run has no clients or cells"));
            }
            if !(run.cells_per_sec.is_finite() && run.cells_per_sec > 0.0) {
                problems.push(format!(
                    "server.{phase}@{} cells_per_sec is not positive",
                    run.clients
                ));
            }
            if !(run.wall_seconds.is_finite() && run.wall_seconds > 0.0) {
                problems.push(format!(
                    "server.{phase}@{} wall_seconds is not positive",
                    run.clients
                ));
            }
        }
    }
    let before_counts: Vec<usize> = t.before.runs.iter().map(|r| r.clients).collect();
    let after_counts: Vec<usize> = t.after.runs.iter().map(|r| r.clients).collect();
    if before_counts != after_counts {
        problems.push(format!(
            "server before/after client counts differ: {before_counts:?} vs {after_counts:?}"
        ));
    }
    for (name, speedup) in [
        ("single_client", t.speedup_single_client),
        ("max_clients", t.speedup_max_clients),
    ] {
        if !(speedup.is_finite() && speedup > 0.0) {
            problems.push(format!("server.speedup_{name} is not positive"));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One client, one round, against an in-process server: the suite's
    /// cell arithmetic holds (workloads × policies × sweeps per client).
    #[test]
    fn one_round_counts_every_wire_cell() {
        let handle = serve("127.0.0.1:0", EvalService::new(), SERVER_BENCH_THREADS).expect("bind");
        prepare_server_session(handle.addr()).expect("warm");
        let run = measure_server_round(handle.addr(), 1);
        assert_eq!(run.clients, 1);
        let expected = (SERVER_SUITE_KERNELS.len()
            * REPRESENTATIVE_POLICIES.len()
            * SERVER_SWEEPS_PER_CLIENT) as u64;
        assert_eq!(run.cells, expected);
        assert!(run.cells_per_sec > 0.0 && run.cells_per_sec.is_finite());
    }

    #[test]
    fn suite_measures_each_client_count_and_round_trips_as_json() {
        let (after, before) = measure_server_suite(None, &[1, 2], 1);
        assert!(before.is_none());
        assert_eq!(after.suite, "server");
        assert_eq!(
            after.runs.iter().map(|r| r.clients).collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(after.run_at(1).unwrap().clients, 1);
        assert_eq!(after.max_clients_run().unwrap().clients, 2);

        let text = serde_json::to_string(&after).unwrap();
        let back: ServerMeasurement = serde_json::from_str(&text).unwrap();
        assert_eq!(back, after);

        // A self-trajectory validates and reports a ×1 speedup.
        let t = server_trajectory(after.clone(), after);
        assert!(validate_server_trajectory(&t).is_empty());
        assert!((t.speedup_single_client - 1.0).abs() < 1e-9);
        assert!((t.speedup_max_clients - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_flags_broken_server_trajectories() {
        let (after, _) = measure_server_suite(None, &[1], 1);
        let mut bad = server_trajectory(after.clone(), after);
        bad.before.suite = "nonsense".to_string();
        bad.after.runs[0].cells_per_sec = f64::NAN;
        bad.speedup_max_clients = 0.0;
        let problems = validate_server_trajectory(&bad);
        assert!(problems.iter().any(|p| p.contains("suite")));
        assert!(problems.iter().any(|p| p.contains("cells_per_sec")));
        assert!(problems.iter().any(|p| p.contains("speedup_max_clients")));
    }
}
