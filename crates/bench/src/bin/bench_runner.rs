//! `bench-runner` — the simulator-throughput CLI behind `BENCH_<pr>.json`.
//!
//! Three subcommands:
//!
//! * `run --suite smoke|paper [--out FILE]` — time the suite across the
//!   representative policies and emit one `Measurement` as JSON (stdout or
//!   `FILE`). Used to capture a PR's "before" numbers from its base commit.
//! * `emit --pr N --before-smoke FILE --before-paper FILE --out FILE` —
//!   re-run both suites now (the "after" numbers), merge them with the
//!   given "before" measurements and write the full trajectory document.
//! * `check --against FILE [--suite smoke] [--max-regression 0.25]` —
//!   validate the committed trajectory's schema, re-run the suite and fail
//!   (exit 1) if current throughput regressed more than the allowed
//!   fraction below the committed `after` cells/sec. This is the CI gate.
//! * `frontier --suite smoke|paper [--out FILE]` — time the exhaustive and
//!   the successive-halving frontier search over the standard grid and emit
//!   both `FrontierThroughput` reports as JSON. Informational (not part of
//!   the committed trajectory schema); the summary prints the full-suite
//!   cells the halving saved.
//! * `server [--clients 1,4,8] [--repeat N] [--before-addr HOST:PORT]
//!   [--out FILE]` — time end-to-end wire throughput against an in-process
//!   server at each client count; with `--before-addr` (an externally
//!   started pre-PR server binary) the rounds interleave before/after in
//!   the same wall-clock window and the output is a full
//!   `ServerSuiteTrajectory`, which `emit --server FILE` merges into the
//!   trajectory document. `check --suite server` re-drives the in-process
//!   server and gates on the committed after wire cells/sec at the highest
//!   client count.

use cassandra_bench::{
    guarded_speedup, measure_frontier, measure_server_suite, measure_suite_best,
    validate_trajectory, BenchTrajectory, Measurement, ServerMeasurement, ServerSuiteTrajectory,
    SuiteTrajectory, REPRESENTATIVE_POLICIES, SERVER_SUITE_CLIENTS, TRAJECTORY_SCHEMA,
};
use std::process::ExitCode;

/// Best-of-N runs used everywhere a suite is timed (see
/// [`measure_suite_best`]); before/after and gate comparisons all use the
/// same procedure.
const DEFAULT_REPEATS: u32 = 3;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         bench-runner run --suite smoke|paper [--repeat N] [--out FILE]\n  \
         bench-runner emit --pr N --before-smoke FILE --before-paper FILE \
         [--server FILE] --out FILE\n  \
         bench-runner check --against FILE [--suite smoke|paper|server] \
         [--max-regression 0.25]\n  \
         bench-runner frontier --suite smoke|paper [--out FILE]\n  \
         bench-runner server [--clients 1,4,8] [--repeat N] \
         [--before-addr HOST:PORT] [--out FILE]"
    );
    std::process::exit(2);
}

/// Pulls the value of `flag` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        eprintln!("missing value for {flag}");
        usage();
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

fn read_measurement(path: &str) -> Measurement {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read measurement `{path}`: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse measurement `{path}`: {e}"))
}

fn write_or_print(out: Option<&str>, text: &str) {
    match out {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
}

fn summarize(m: &Measurement) {
    eprintln!(
        "{}: {} cells in {:.3}s — {:.1} cells/s, {:.3e} sim cycles/s",
        m.suite, m.cells, m.wall_seconds, m.cells_per_sec, m.sim_cycles_per_sec
    );
    for p in &m.policies {
        eprintln!(
            "  {:<16} {:>8.1} cells/s  {:>12.3e} sim cycles/s",
            p.policy, p.cells_per_sec, p.sim_cycles_per_sec
        );
    }
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let suite = take_flag(&mut args, "--suite").unwrap_or_else(|| usage());
    let out = take_flag(&mut args, "--out");
    let repeats: u32 = take_flag(&mut args, "--repeat")
        .map(|v| v.parse().expect("--repeat takes a number"))
        .unwrap_or(DEFAULT_REPEATS);
    if !args.is_empty() {
        usage();
    }
    let m = measure_suite_best(&suite, repeats);
    summarize(&m);
    let text = serde_json::to_string(&m).expect("serializable measurement");
    write_or_print(out.as_deref(), &text);
    ExitCode::SUCCESS
}

fn cmd_emit(mut args: Vec<String>) -> ExitCode {
    let pr: u32 = take_flag(&mut args, "--pr")
        .unwrap_or_else(|| usage())
        .parse()
        .expect("--pr takes a number");
    let before_smoke =
        read_measurement(&take_flag(&mut args, "--before-smoke").unwrap_or_else(|| usage()));
    let before_paper =
        read_measurement(&take_flag(&mut args, "--before-paper").unwrap_or_else(|| usage()));
    let server: Option<ServerSuiteTrajectory> = take_flag(&mut args, "--server").map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read server trajectory `{path}`: {e}"));
        serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse server trajectory `{path}`: {e}"))
    });
    let out = take_flag(&mut args, "--out").unwrap_or_else(|| usage());
    if !args.is_empty() {
        usage();
    }

    let after_smoke = measure_suite_best("smoke", DEFAULT_REPEATS);
    summarize(&after_smoke);
    let after_paper = measure_suite_best("paper", DEFAULT_REPEATS);
    summarize(&after_paper);

    let trajectory = BenchTrajectory {
        schema: TRAJECTORY_SCHEMA.to_string(),
        pr,
        policies: REPRESENTATIVE_POLICIES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        smoke: SuiteTrajectory {
            speedup_cells_per_sec: guarded_speedup(
                after_smoke.cells_per_sec,
                before_smoke.cells_per_sec,
            ),
            before: before_smoke,
            after: after_smoke,
        },
        paper: SuiteTrajectory {
            speedup_cells_per_sec: guarded_speedup(
                after_paper.cells_per_sec,
                before_paper.cells_per_sec,
            ),
            before: before_paper,
            after: after_paper,
        },
        server,
    };
    let problems = validate_trajectory(&trajectory);
    assert!(
        problems.is_empty(),
        "emitted trajectory invalid: {problems:?}"
    );
    eprintln!(
        "speedup: smoke ×{:.2}, paper ×{:.2}",
        trajectory.smoke.speedup_cells_per_sec, trajectory.paper.speedup_cells_per_sec
    );
    if let Some(server) = &trajectory.server {
        eprintln!(
            "server wire speedup: ×{:.2} single client, ×{:.2} at {} clients",
            server.speedup_single_client,
            server.speedup_max_clients,
            server.after.max_clients_run().map_or(0, |r| r.clients)
        );
    }
    let text = serde_json::to_string(&trajectory).expect("serializable trajectory");
    write_or_print(Some(&out), &text);
    ExitCode::SUCCESS
}

fn cmd_check(mut args: Vec<String>) -> ExitCode {
    let against = take_flag(&mut args, "--against").unwrap_or_else(|| usage());
    let suite = take_flag(&mut args, "--suite").unwrap_or_else(|| "smoke".to_string());
    let max_regression: f64 = take_flag(&mut args, "--max-regression")
        .unwrap_or_else(|| "0.25".to_string())
        .parse()
        .expect("--max-regression takes a fraction");
    if !args.is_empty() {
        usage();
    }

    let text = std::fs::read_to_string(&against)
        .unwrap_or_else(|e| panic!("cannot read trajectory `{against}`: {e}"));
    let trajectory: BenchTrajectory = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse trajectory `{against}`: {e}"));
    let problems = validate_trajectory(&trajectory);
    if !problems.is_empty() {
        eprintln!("{against} failed schema validation:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!("{against}: schema valid (PR {})", trajectory.pr);

    if suite == "server" {
        return check_server(&trajectory, &against, max_regression);
    }
    let committed = match suite.as_str() {
        "smoke" => &trajectory.smoke.after,
        "paper" => &trajectory.paper.after,
        other => panic!("unknown suite `{other}`"),
    };
    let current = measure_suite_best(&suite, DEFAULT_REPEATS);
    summarize(&current);
    let floor = committed.cells_per_sec * (1.0 - max_regression);
    eprintln!(
        "committed after: {:.1} cells/s, floor ({:.0}% regression allowed): {:.1}, current: {:.1}",
        committed.cells_per_sec,
        max_regression * 100.0,
        floor,
        current.cells_per_sec
    );
    if current.cells_per_sec < floor {
        eprintln!("FAIL: throughput regressed more than the allowed fraction");
        return ExitCode::FAILURE;
    }
    eprintln!("OK: throughput within budget");
    ExitCode::SUCCESS
}

/// The `check --suite server` gate: re-drive an in-process server at the
/// committed client counts and fail if wire cells/sec at the highest
/// count fell more than the allowed fraction below the committed `after`.
fn check_server(trajectory: &BenchTrajectory, against: &str, max_regression: f64) -> ExitCode {
    let Some(server) = &trajectory.server else {
        eprintln!("{against} has no server suite to check against");
        return ExitCode::FAILURE;
    };
    let counts: Vec<usize> = server.after.runs.iter().map(|r| r.clients).collect();
    let (current, _) = measure_server_suite(None, &counts, DEFAULT_REPEATS);
    summarize_server(&current);
    let committed = server
        .after
        .max_clients_run()
        .expect("validated trajectory has runs");
    let measured = current.max_clients_run().expect("measured suite has runs");
    let floor = committed.cells_per_sec * (1.0 - max_regression);
    eprintln!(
        "committed after @{} clients: {:.1} wire cells/s, floor ({:.0}% regression \
         allowed): {:.1}, current: {:.1}",
        committed.clients,
        committed.cells_per_sec,
        max_regression * 100.0,
        floor,
        measured.cells_per_sec
    );
    if measured.cells_per_sec < floor {
        eprintln!("FAIL: wire throughput regressed more than the allowed fraction");
        return ExitCode::FAILURE;
    }
    eprintln!("OK: wire throughput within budget");
    ExitCode::SUCCESS
}

fn summarize_server(m: &ServerMeasurement) {
    for run in &m.runs {
        eprintln!(
            "server @{} clients: {} wire cells in {:.3}s — {:.1} cells/s",
            run.clients, run.cells, run.wall_seconds, run.cells_per_sec
        );
    }
}

/// `server`: time the wire suite. With `--before-addr`, interleave rounds
/// against the externally started pre-PR server and emit a full
/// `ServerSuiteTrajectory`; without it, emit the after-side
/// `ServerMeasurement` only.
fn cmd_server(mut args: Vec<String>) -> ExitCode {
    let clients: Vec<usize> = take_flag(&mut args, "--clients")
        .map(|list| {
            list.split(',')
                .map(|n| n.trim().parse().expect("--clients takes numbers"))
                .collect()
        })
        .unwrap_or_else(|| SERVER_SUITE_CLIENTS.to_vec());
    let repeats: u32 = take_flag(&mut args, "--repeat")
        .map(|v| v.parse().expect("--repeat takes a number"))
        .unwrap_or(DEFAULT_REPEATS);
    let before_addr = take_flag(&mut args, "--before-addr").map(|addr| {
        std::net::ToSocketAddrs::to_socket_addrs(&addr)
            .unwrap_or_else(|e| panic!("cannot resolve --before-addr `{addr}`: {e}"))
            .next()
            .unwrap_or_else(|| panic!("--before-addr `{addr}` resolved to nothing"))
    });
    let out = take_flag(&mut args, "--out");
    if !args.is_empty() {
        usage();
    }

    let (after, before) = measure_server_suite(before_addr, &clients, repeats);
    summarize_server(&after);
    let text = match before {
        Some(before) => {
            let trajectory = cassandra_bench::server_trajectory(before, after);
            eprintln!(
                "server wire speedup: ×{:.2} single client, ×{:.2} at {} clients",
                trajectory.speedup_single_client,
                trajectory.speedup_max_clients,
                trajectory.after.max_clients_run().map_or(0, |r| r.clients)
            );
            let problems = cassandra_bench::validate_server_trajectory(&trajectory);
            assert!(
                problems.is_empty(),
                "emitted server trajectory invalid: {problems:?}"
            );
            serde_json::to_string(&trajectory).expect("serializable trajectory")
        }
        None => serde_json::to_string(&after).expect("serializable measurement"),
    };
    write_or_print(out.as_deref(), &text);
    ExitCode::SUCCESS
}

fn cmd_frontier(mut args: Vec<String>) -> ExitCode {
    let suite = take_flag(&mut args, "--suite").unwrap_or_else(|| usage());
    let out = take_flag(&mut args, "--out");
    if !args.is_empty() {
        usage();
    }
    let exhaustive = measure_frontier(&suite, false);
    let adaptive = measure_frontier(&suite, true);
    for report in [&exhaustive, &adaptive] {
        eprintln!(
            "{} frontier ({}): {} sims in {:.3}s — {:.1} sims/s, {}/{} full-suite cells, \
             {} Pareto points",
            report.suite,
            if report.adaptive {
                "successive halving"
            } else {
                "exhaustive"
            },
            report.simulations,
            report.wall_seconds,
            report.sims_per_sec,
            report.cells_simulated_full,
            report.grid_cells,
            report.frontier_points
        );
    }
    eprintln!(
        "halving saved {} full-suite cells ({} -> {})",
        exhaustive.cells_simulated_full - adaptive.cells_simulated_full,
        exhaustive.cells_simulated_full,
        adaptive.cells_simulated_full
    );
    let text = serde_json::to_string(&[&exhaustive, &adaptive]).expect("serializable reports");
    write_or_print(out.as_deref(), &text);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "emit" => cmd_emit(args),
        "check" => cmd_check(args),
        "frontier" => cmd_frontier(args),
        "server" => cmd_server(args),
        _ => usage(),
    }
}
