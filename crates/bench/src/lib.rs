//! The throughput bench harness behind `bench-runner` and the committed
//! `BENCH_*.json` perf trajectory.
//!
//! The criterion benches under `benches/` regenerate the paper's tables and
//! figures; this library measures something different — **simulator
//! throughput**: how many (workload × policy) sweep cells per second and how
//! many simulated cycles per second the core sustains. Every downstream
//! layer (grid sweeps, the evaluation service, frontier search) multiplies
//! the cost of one `Simulator` tick loop, so this number is the repo's
//! primary performance metric and is tracked PR-over-PR in `BENCH_<pr>.json`
//! at the repository root.
//!
//! Three suites are defined:
//!
//! * `smoke` — the four quick workloads the integration tests share; fast
//!   enough for CI to run on every push and compare against the committed
//!   baseline;
//! * `paper` — the full 21-workload evaluation suite of Table 1 / Fig. 7;
//! * `server` — end-to-end **wire** cells/sec through a running
//!   evaluation server at 1/4/8 concurrent multiplexed clients (see
//!   [`server_bench`]); optional in the trajectory document, present from
//!   `BENCH_10.json` on.
//!
//! Both run across the same representative policy set (one per frontend
//! family: the unsafe baseline, the fence lower bound, the two speculative
//! defenses SPT/ProSpeCT, full Cassandra, Cassandra-lite and the
//! tournament hybrid). Analyses are warmed before the clock starts: the
//! bench times *simulation* throughput, not Algorithm-2 trace generation.

use cassandra_core::eval::{CancelToken, DesignPoint, Evaluator};
use cassandra_core::frontier::{frontier_with, standard_grid, AdaptiveSearch};
use cassandra_core::policies::PolicyRegistry;
use cassandra_kernels::suite;
use cassandra_kernels::workload::Workload;
use serde::{Deserialize, Serialize};
use std::time::Instant;

pub mod server_bench;

pub use server_bench::{
    measure_server_round, measure_server_suite, prepare_server_session, server_trajectory,
    validate_server_trajectory, ServerMeasurement, ServerSuiteTrajectory, ServerThroughput,
    SERVER_BENCH_THREADS, SERVER_SUITE_CLIENTS, SERVER_SWEEPS_PER_CLIENT,
};

/// Schema identifier written into every trajectory file.
pub const TRAJECTORY_SCHEMA: &str = "cassandra-bench-trajectory/v1";

/// The representative policy labels benched by both suites: one per
/// frontend family, in reporting order.
pub const REPRESENTATIVE_POLICIES: &[&str] = &[
    "UnsafeBaseline",
    "Fence",
    "SPT",
    "ProSpeCT",
    "Cassandra",
    "Cassandra-lite",
    "Tournament",
];

/// Throughput of one policy across the suite's workloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyThroughput {
    /// The policy label (a `PolicyRegistry::standard()` design point).
    pub policy: String,
    /// Number of (workload × policy) cells simulated — the workload count.
    pub cells: u64,
    /// Wall-clock seconds for all cells of this policy.
    pub wall_seconds: f64,
    /// Cells per second — the sweep-throughput metric.
    pub cells_per_sec: f64,
    /// Total simulated cycles across the cells.
    pub simulated_cycles: u64,
    /// Simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
}

/// One timed run of a suite across the representative policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Suite name (`smoke` or `paper`).
    pub suite: String,
    /// Workload names, in run order.
    pub workloads: Vec<String>,
    /// Total cells (workloads × policies).
    pub cells: u64,
    /// Total wall-clock seconds (simulation only; analyses pre-warmed).
    pub wall_seconds: f64,
    /// Aggregate cells per second.
    pub cells_per_sec: f64,
    /// Total simulated cycles.
    pub simulated_cycles: u64,
    /// Aggregate simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// Per-policy breakdown.
    pub policies: Vec<PolicyThroughput>,
}

/// Before/after trajectory of one suite within a PR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteTrajectory {
    /// Measured on the PR's base (pre-optimization) simulator.
    pub before: Measurement,
    /// Measured on the PR's final simulator.
    pub after: Measurement,
    /// `after.cells_per_sec / before.cells_per_sec`.
    pub speedup_cells_per_sec: f64,
}

/// The committed `BENCH_<pr>.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchTrajectory {
    /// Always [`TRAJECTORY_SCHEMA`].
    pub schema: String,
    /// The PR number the trajectory belongs to.
    pub pr: u32,
    /// The benched policy labels.
    pub policies: Vec<String>,
    /// The CI-tracked fast suite.
    pub smoke: SuiteTrajectory,
    /// The full paper suite.
    pub paper: SuiteTrajectory,
    /// The wire-throughput server suite — absent from trajectories
    /// committed before PR 10 (the field deserializes as `None` there and
    /// is omitted on serialize while `None`).
    #[serde(skip_if_default)]
    pub server: Option<ServerSuiteTrajectory>,
}

/// The workloads of a named suite.
///
/// # Panics
///
/// Panics on an unknown suite name (the CLI validates first).
pub fn suite_workloads(suite_name: &str) -> Vec<Workload> {
    match suite_name {
        "smoke" => vec![
            suite::chacha20_workload(64),
            suite::sha256_workload(96),
            suite::poly1305_workload(64),
            suite::des_workload(4),
        ],
        "paper" => suite::full_suite(),
        other => panic!("unknown bench suite `{other}` (expected `smoke` or `paper`)"),
    }
}

/// The representative design points, resolved from the standard registry.
pub fn representative_designs() -> Vec<DesignPoint> {
    let registry = PolicyRegistry::standard();
    REPRESENTATIVE_POLICIES
        .iter()
        .map(|label| {
            registry
                .get(label)
                .unwrap_or_else(|| panic!("policy `{label}` missing from the standard registry"))
                .clone()
        })
        .collect()
}

/// `count / wall_seconds` with the denominator clamped away from zero.
///
/// Coarse clocks can report a zero-second wall for a trivially short suite,
/// and a raw division would put `inf` into the committed trajectory — which
/// the bundled JSON writer serializes as `null`, so the file would no longer
/// re-read as a `BenchTrajectory` under `bench-runner check`. A `NaN` wall
/// clamps too (`f64::max` discards a `NaN` operand), so the result is always
/// finite for finite `count`.
pub fn per_second(count: f64, wall_seconds: f64) -> f64 {
    count / wall_seconds.max(f64::EPSILON)
}

/// The throughput ratio `after / before`, guarded against degenerate
/// baselines.
///
/// The measured path can only produce large-but-finite rates (walls are
/// clamped via [`per_second`]), but `emit` also compares against numbers
/// re-read from a baseline file, which a truncated or hand-edited JSON can
/// leave zero, negative or non-finite. Dividing by those would persist
/// `inf`/`NaN`; instead any such pair yields `0.0`, which
/// [`validate_trajectory`] rejects as "not positive" — the failure is loud
/// at emit/check time rather than silently committed.
pub fn guarded_speedup(after_cells_per_sec: f64, before_cells_per_sec: f64) -> f64 {
    let defined = after_cells_per_sec.is_finite()
        && before_cells_per_sec.is_finite()
        && after_cells_per_sec > 0.0
        && before_cells_per_sec > 0.0;
    if defined {
        after_cells_per_sec / before_cells_per_sec
    } else {
        0.0
    }
}

/// Runs `suite_name` across the representative policies and returns the
/// timed measurement. Analyses are generated (and cached) before timing
/// starts, so the wall clock covers simulation only.
///
/// # Panics
///
/// Panics if a workload fails to analyze or simulate — a bench run on a
/// broken simulator has no meaningful result.
pub fn measure_suite(suite_name: &str) -> Measurement {
    let workloads = suite_workloads(suite_name);
    let designs = representative_designs();
    let mut session = Evaluator::new();
    for w in &workloads {
        session
            .analysis(w)
            .unwrap_or_else(|e| panic!("{}: analysis failed: {e:?}", w.name));
    }

    let mut policies = Vec::with_capacity(designs.len());
    let mut total_wall = 0.0f64;
    let mut total_cycles = 0u64;
    for design in &designs {
        let start = Instant::now();
        let mut cycles = 0u64;
        for w in &workloads {
            let outcome = session
                .simulate_cached(w, &design.config)
                .unwrap_or_else(|e| panic!("{} under {}: {e:?}", w.name, design.label));
            cycles += outcome.stats.cycles;
        }
        let wall = start.elapsed().as_secs_f64().max(f64::EPSILON);
        total_wall += wall;
        total_cycles += cycles;
        policies.push(PolicyThroughput {
            policy: design.label.clone(),
            cells: workloads.len() as u64,
            wall_seconds: wall,
            cells_per_sec: per_second(workloads.len() as f64, wall),
            simulated_cycles: cycles,
            sim_cycles_per_sec: per_second(cycles as f64, wall),
        });
    }

    let cells = (workloads.len() * designs.len()) as u64;
    Measurement {
        suite: suite_name.to_string(),
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        cells,
        wall_seconds: total_wall,
        cells_per_sec: per_second(cells as f64, total_wall),
        simulated_cycles: total_cycles,
        sim_cycles_per_sec: per_second(total_cycles as f64, total_wall),
        policies,
    }
}

/// Best-of-`repeats` [`measure_suite`]: returns the run with the highest
/// aggregate cells/sec. Short suites (smoke is tens of milliseconds) are
/// noisy under machine load; the regression gate and the committed numbers
/// both use the best of a few runs so the comparison measures the
/// simulator, not the scheduler.
pub fn measure_suite_best(suite_name: &str, repeats: u32) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats.max(1) {
        let m = measure_suite(suite_name);
        if best
            .as_ref()
            .is_none_or(|b| m.cells_per_sec > b.cells_per_sec)
        {
            best = Some(m);
        }
    }
    best.expect("at least one run")
}

/// Throughput of one frontier search over a suite: how many simulation
/// cells per second the search sustains, and how many full-suite cells the
/// adaptive strategy saved. Reported by `bench-runner frontier`; not part
/// of the committed [`BenchTrajectory`] schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierThroughput {
    /// Suite name (`smoke` or `paper`).
    pub suite: String,
    /// True for the successive-halving search, false for exhaustive.
    pub adaptive: bool,
    /// Distinct grid cells scored.
    pub grid_cells: usize,
    /// Cells simulated on the full workload group.
    pub cells_simulated_full: usize,
    /// Total workload simulations performed (baseline runs included).
    pub simulations: usize,
    /// Pareto points found.
    pub frontier_points: usize,
    /// Wall-clock seconds for the search (analyses pre-warmed).
    pub wall_seconds: f64,
    /// Simulations per second — the frontier-throughput metric.
    pub sims_per_sec: f64,
}

/// Times one frontier search (exhaustive or successive-halving) over the
/// standard grid and `suite_name`'s workloads. Analyses and the security
/// probes' gadget analyses are warmed by an untimed first run, so the wall
/// clock measures search throughput, not Algorithm 2.
///
/// # Panics
///
/// Panics if the search fails — a bench run on a broken engine has no
/// meaningful result.
pub fn measure_frontier(suite_name: &str, adaptive: bool) -> FrontierThroughput {
    let workloads = suite_workloads(suite_name);
    let grid = standard_grid();
    let search = adaptive.then(AdaptiveSearch::default);
    let cancel = CancelToken::new();
    let mut session = Evaluator::new();
    // Warm analyses (workloads + the security probes' gadget matrix).
    frontier_with(&mut session, &workloads, &grid, search, &cancel, |_| {})
        .unwrap_or_else(|e| panic!("frontier warm-up failed: {e:?}"))
        .expect("not cancelled");
    let mut counted = 0usize;
    let start = Instant::now();
    let result = frontier_with(&mut session, &workloads, &grid, search, &cancel, |_| {
        counted += 1;
    })
    .unwrap_or_else(|e| panic!("frontier search failed: {e:?}"))
    .expect("not cancelled");
    let wall = start.elapsed().as_secs_f64().max(f64::EPSILON);
    FrontierThroughput {
        suite: suite_name.to_string(),
        adaptive,
        grid_cells: result.cells_total,
        cells_simulated_full: result.cells_simulated_full,
        simulations: counted,
        frontier_points: result.frontier.len(),
        wall_seconds: wall,
        sims_per_sec: per_second(counted as f64, wall),
    }
}

/// Structural validation of a trajectory document: schema tag, policy list,
/// suite naming and strictly positive throughput numbers. Returns every
/// violation found (empty means valid).
pub fn validate_trajectory(t: &BenchTrajectory) -> Vec<String> {
    let mut problems = Vec::new();
    if t.schema != TRAJECTORY_SCHEMA {
        problems.push(format!(
            "schema is `{}`, expected `{TRAJECTORY_SCHEMA}`",
            t.schema
        ));
    }
    if t.policies.is_empty() {
        problems.push("empty policy list".to_string());
    }
    for (name, suite) in [("smoke", &t.smoke), ("paper", &t.paper)] {
        for (phase, m) in [("before", &suite.before), ("after", &suite.after)] {
            if m.suite != name {
                problems.push(format!(
                    "{name}.{phase}.suite is `{}`, expected `{name}`",
                    m.suite
                ));
            }
            if m.cells == 0 || m.workloads.is_empty() {
                problems.push(format!("{name}.{phase} has no cells"));
            }
            if !(m.cells_per_sec.is_finite() && m.cells_per_sec > 0.0) {
                problems.push(format!("{name}.{phase}.cells_per_sec is not positive"));
            }
            if !(m.wall_seconds.is_finite() && m.wall_seconds > 0.0) {
                problems.push(format!("{name}.{phase}.wall_seconds is not positive"));
            }
            if m.policies.len() != t.policies.len() {
                problems.push(format!(
                    "{name}.{phase} covers {} policies, trajectory lists {}",
                    m.policies.len(),
                    t.policies.len()
                ));
            }
        }
        if !(suite.speedup_cells_per_sec.is_finite() && suite.speedup_cells_per_sec > 0.0) {
            problems.push(format!("{name}.speedup_cells_per_sec is not positive"));
        }
    }
    if let Some(server) = &t.server {
        problems.extend(validate_server_trajectory(server));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_policies_resolve_in_the_standard_registry() {
        let designs = representative_designs();
        assert_eq!(designs.len(), REPRESENTATIVE_POLICIES.len());
        for (design, label) in designs.iter().zip(REPRESENTATIVE_POLICIES) {
            assert_eq!(design.label, *label);
        }
    }

    #[test]
    fn smoke_suite_measures_every_cell() {
        let m = measure_suite("smoke");
        assert_eq!(m.suite, "smoke");
        assert_eq!(m.workloads.len(), 4);
        assert_eq!(m.cells, 4 * REPRESENTATIVE_POLICIES.len() as u64);
        assert!(m.cells_per_sec > 0.0);
        assert!(m.simulated_cycles > 0);
        assert_eq!(m.policies.len(), REPRESENTATIVE_POLICIES.len());
        // A measurement round-trips through the JSON it is persisted as.
        let text = serde_json::to_string(&m).unwrap();
        let back: Measurement = serde_json::from_str(&text).unwrap();
        assert_eq!(back.cells, m.cells);
        assert_eq!(back.policies.len(), m.policies.len());
    }

    #[test]
    fn degenerate_wall_clocks_stay_finite_and_round_trip_as_json() {
        // A zero-second wall (coarse clock, trivially short suite) must not
        // put inf into the measurement...
        let rate = per_second(4.0, 0.0);
        assert!(rate.is_finite() && rate > 0.0, "rate = {rate}");
        // ...and neither must a NaN wall (f64::max discards the NaN).
        assert!(per_second(4.0, f64::NAN).is_finite());

        let m = Measurement {
            suite: "smoke".to_string(),
            workloads: vec!["w".to_string()],
            cells: 4,
            wall_seconds: 0.0_f64.max(f64::EPSILON),
            cells_per_sec: rate,
            simulated_cycles: 9,
            sim_cycles_per_sec: per_second(9.0, 0.0),
            policies: Vec::new(),
        };
        // The persisted JSON carries real numbers (the bundled writer emits
        // `null` for non-finite floats, which would not re-read as f64)...
        let text = serde_json::to_string(&m).unwrap();
        assert!(
            !text.contains("null"),
            "degenerate measurement leaked a non-finite number: {text}"
        );
        // ...and the document round-trips to an equal, usable value.
        let back: Measurement = serde_json::from_str(&text).unwrap();
        assert_eq!(back.cells, m.cells);
        assert!(back.cells_per_sec.is_finite() && back.cells_per_sec > 0.0);
        assert!(back.sim_cycles_per_sec.is_finite());
    }

    #[test]
    fn frontier_bench_counts_simulations_and_pareto_points() {
        let exhaustive = measure_frontier("smoke", false);
        assert_eq!(exhaustive.suite, "smoke");
        assert!(!exhaustive.adaptive);
        assert_eq!(exhaustive.cells_simulated_full, exhaustive.grid_cells);
        assert!(exhaustive.frontier_points > 0);
        assert!(exhaustive.sims_per_sec > 0.0 && exhaustive.sims_per_sec.is_finite());

        let adaptive = measure_frontier("smoke", true);
        assert!(adaptive.adaptive);
        assert!(
            adaptive.cells_simulated_full < exhaustive.cells_simulated_full,
            "halving must save full-suite cells"
        );
        assert!(adaptive.simulations < exhaustive.simulations);

        // The report round-trips through its persisted JSON form.
        let text = serde_json::to_string(&adaptive).unwrap();
        let back: FrontierThroughput = serde_json::from_str(&text).unwrap();
        assert_eq!(back.simulations, adaptive.simulations);
        assert_eq!(back.frontier_points, adaptive.frontier_points);
    }

    #[test]
    fn speedup_is_guarded_against_degenerate_baselines() {
        assert_eq!(guarded_speedup(3.0, 1.5), 2.0);
        for (after, before) in [
            (5.0, 0.0),
            (5.0, -1.0),
            (5.0, f64::NAN),
            (5.0, f64::INFINITY),
            (f64::NAN, 5.0),
            (f64::INFINITY, 5.0),
            (0.0, 5.0),
        ] {
            let s = guarded_speedup(after, before);
            assert_eq!(s, 0.0, "speedup({after}, {before}) = {s}");
        }
    }

    #[test]
    fn validation_flags_a_broken_trajectory() {
        let m = measure_suite("smoke");
        let good = BenchTrajectory {
            schema: TRAJECTORY_SCHEMA.to_string(),
            pr: 7,
            policies: REPRESENTATIVE_POLICIES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            smoke: SuiteTrajectory {
                before: m.clone(),
                after: m.clone(),
                speedup_cells_per_sec: 1.0,
            },
            paper: SuiteTrajectory {
                before: {
                    let mut p = m.clone();
                    p.suite = "paper".to_string();
                    p
                },
                after: {
                    let mut p = m.clone();
                    p.suite = "paper".to_string();
                    p
                },
                speedup_cells_per_sec: 1.0,
            },
            server: None,
        };
        assert!(validate_trajectory(&good).is_empty());

        // Pre-PR-10 trajectory files have no `server` key: the field must
        // deserialize as `None` and stay omitted on re-serialize.
        let text = serde_json::to_string(&good).unwrap();
        assert!(!text.contains("\"server\""), "None must be omitted: {text}");
        let back: BenchTrajectory = serde_json::from_str(&text).unwrap();
        assert!(back.server.is_none());

        let mut bad = good.clone();
        bad.schema = "nonsense".to_string();
        bad.smoke.after.cells_per_sec = f64::NAN;
        // A degenerate baseline flows through the guard as 0.0, which
        // validation must reject rather than pass as a "finite" speedup.
        bad.paper.speedup_cells_per_sec = guarded_speedup(m.cells_per_sec, 0.0);
        let problems = validate_trajectory(&bad);
        assert!(problems.iter().any(|p| p.contains("schema")));
        assert!(problems.iter().any(|p| p.contains("cells_per_sec")));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("paper.speedup_cells_per_sec")),
            "guarded speedup sentinel not flagged: {problems:?}"
        );
    }
}
