//! A cursor over an encoded branch trace.
//!
//! The cursor tracks the position of the next branch execution inside the
//! (pattern set, trace elements) representation and yields target PCs one
//! execution at a time, wrapping around at the End-of-Trace marker exactly as
//! the hardware rotates / re-streams the trace (§5.3).

use crate::encode::EncodedBranchTrace;
use serde::{Deserialize, Serialize};

/// A position inside an encoded trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePosition {
    /// Index of the current trace element.
    pub trace_index: usize,
    /// How many iterations of the current pattern have completed.
    pub pattern_iteration: u64,
    /// Index of the current pattern element within the pattern.
    pub element_index: usize,
    /// How many repetitions of the current pattern element have been
    /// consumed.
    pub repetition: u64,
}

/// A cursor yielding branch targets from an encoded trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCursor {
    position: TracePosition,
}

impl TraceCursor {
    /// A cursor at the start of the trace.
    pub fn new() -> Self {
        TraceCursor {
            position: TracePosition::default(),
        }
    }

    /// The current position (used for checkpointing / statistics).
    #[inline]
    pub fn position(&self) -> TracePosition {
        self.position
    }

    /// Restores a previously saved position.
    #[inline]
    pub fn restore(&mut self, position: TracePosition) {
        self.position = position;
    }

    /// Returns the target PC of the next branch execution and advances the
    /// cursor. Returns `None` only for traces with no elements.
    #[inline]
    pub fn next_target(&mut self, trace: &EncodedBranchTrace) -> Option<usize> {
        if trace.trace.is_empty() {
            return None;
        }
        let pos = &mut self.position;
        // Normalise: the trace index always points at a valid element.
        if pos.trace_index >= trace.trace.len() {
            *pos = TracePosition::default();
        }
        let te = &trace.trace[pos.trace_index];
        let pattern = &trace.patterns
            [te.pattern_index as usize..(te.pattern_index as usize + te.pattern_size as usize)];
        if pattern.is_empty() {
            return None;
        }
        let element = &pattern[pos.element_index.min(pattern.len() - 1)];
        let target = element.target(trace.pc);

        // Advance within the element / pattern / trace element / trace.
        pos.repetition += 1;
        if pos.repetition >= u64::from(element.repetitions) {
            pos.repetition = 0;
            pos.element_index += 1;
            if pos.element_index >= pattern.len() {
                pos.element_index = 0;
                pos.pattern_iteration += 1;
                if pos.pattern_iteration >= u64::from(te.trace_counter) {
                    pos.pattern_iteration = 0;
                    pos.trace_index += 1;
                    if pos.trace_index >= trace.trace.len() {
                        // End of trace: restart from the beginning (the
                        // End-of-Trace rotation of §5.2).
                        pos.trace_index = 0;
                    }
                }
            }
        }
        Some(target)
    }
}

impl Default for TraceCursor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_trace::kmers::{compress, KmersConfig};
    use cassandra_trace::vanilla::VanillaTrace;

    fn encode(pc: usize, targets: &[usize]) -> EncodedBranchTrace {
        let vanilla = VanillaTrace::from_targets(targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        EncodedBranchTrace::from_kmers(pc, &kmers, true)
    }

    #[test]
    fn cursor_replays_the_sequential_trace() {
        let targets = vec![1, 1, 1, 5, 1, 1, 1, 5, 1, 1, 1, 5];
        let enc = encode(4, &targets);
        let mut cursor = TraceCursor::new();
        let replay: Vec<usize> = (0..targets.len())
            .map(|_| cursor.next_target(&enc).unwrap())
            .collect();
        assert_eq!(replay, targets);
    }

    #[test]
    fn cursor_wraps_at_end_of_trace() {
        let targets = vec![1, 1, 9];
        let enc = encode(8, &targets);
        let mut cursor = TraceCursor::new();
        let mut replay = Vec::new();
        for _ in 0..9 {
            replay.push(cursor.next_target(&enc).unwrap());
        }
        assert_eq!(replay, vec![1, 1, 9, 1, 1, 9, 1, 1, 9]);
    }

    #[test]
    fn positions_checkpoint_and_restore() {
        let targets = vec![1, 1, 1, 1, 7];
        let enc = encode(6, &targets);
        let mut cursor = TraceCursor::new();
        cursor.next_target(&enc);
        cursor.next_target(&enc);
        let checkpoint = cursor.position();
        let after_two: Vec<usize> = (0..3).map(|_| cursor.next_target(&enc).unwrap()).collect();
        cursor.restore(checkpoint);
        let replayed: Vec<usize> = (0..3).map(|_| cursor.next_target(&enc).unwrap()).collect();
        assert_eq!(after_two, replayed);
    }

    #[test]
    fn empty_trace_yields_none() {
        let enc = EncodedBranchTrace::default();
        let mut cursor = TraceCursor::new();
        assert_eq!(cursor.next_target(&enc), None);
    }
}
