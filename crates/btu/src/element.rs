//! The BTU element formats of the paper's Figure 4.
//!
//! * A **pattern element** is a 12-bit signed target offset plus an 8-bit
//!   repetition count (20 bits).
//! * A **trace element** selects a slice of the pattern set (4-bit index,
//!   4-bit size), carries the total number of branch executions covered by
//!   one iteration of the pattern (16-bit pattern counter) and how many times
//!   the pattern repeats before advancing (8-bit trace counter): 32 bits.
//! * A **checkpoint element** records the committed position within the
//!   trace so evictions, interrupts and squashes can restore it.

use serde::{Deserialize, Serialize};

/// Number of elements per Pattern Table / Trace Cache entry.
pub const ELEMENTS_PER_ENTRY: usize = 16;
/// Bits of one pattern element (12-bit offset + 8-bit repetitions).
pub const PATTERN_ELEMENT_BITS: usize = 20;
/// Bits of one trace element (4 + 4 + 16 + 8).
pub const TRACE_ELEMENT_BITS: usize = 32;
/// Bits of one checkpoint element (12 + 8 + 16 + 8 + 16).
pub const CHECKPOINT_ELEMENT_BITS: usize = 60;
/// Maximum repetition count representable by one pattern element.
pub const MAX_PATTERN_REPS: u64 = u8::MAX as u64;
/// Maximum trace-counter value of one trace element.
pub const MAX_TRACE_COUNTER: u64 = u8::MAX as u64;

/// One pattern element: a branch-relative target offset and its repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatternElement {
    /// Signed difference between the target PC and the branch PC (the
    /// paper's 12-bit δ).
    pub target_offset: i32,
    /// Number of consecutive repetitions of this target (8-bit).
    pub repetitions: u8,
}

impl PatternElement {
    /// Recovers the absolute target PC for a branch at `branch_pc`.
    pub fn target(&self, branch_pc: usize) -> usize {
        (branch_pc as i64 + i64::from(self.target_offset)) as usize
    }

    /// True if the offset fits the 12-bit signed field of Figure 4(a).
    pub fn offset_fits_hardware(&self) -> bool {
        (-2048..=2047).contains(&self.target_offset)
    }
}

/// One trace element referencing a pattern from the pattern set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceElement {
    /// Index of the pattern's first element in the pattern set (4-bit).
    pub pattern_index: u8,
    /// Number of pattern elements forming the pattern (4-bit).
    pub pattern_size: u8,
    /// Total branch executions covered by one iteration of the pattern
    /// (sum of the repetitions of its elements, 16-bit).
    pub pattern_counter: u16,
    /// Number of times the pattern repeats before advancing to the next
    /// trace element (8-bit).
    pub trace_counter: u8,
    /// End-of-Trace marker (§5.2): when the last element carries it, the
    /// trace restarts from the beginning.
    pub end_of_trace: bool,
}

impl TraceElement {
    /// Total branch executions this trace element covers.
    pub fn executions(&self) -> u64 {
        u64::from(self.pattern_counter) * u64::from(self.trace_counter)
    }
}

/// The committed position of a branch inside its trace (Figure 4(c)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointElement {
    /// Index of the trace element the execution must resume from.
    pub trace_index: u32,
    /// Remaining pattern-counter value of that element.
    pub latest_pattern_counter: u16,
    /// Remaining trace-counter value of that element.
    pub latest_trace_counter: u8,
    /// The element's original pattern counter (to refresh rotated entries).
    pub original_pattern_counter: u16,
    /// The element's original trace counter.
    pub original_trace_counter: u8,
}

/// Storage accounting for one BTU entry (pattern + trace + checkpoint), in
/// bits. Used by the power/area model.
pub fn entry_storage_bits() -> usize {
    ELEMENTS_PER_ENTRY * PATTERN_ELEMENT_BITS
        + ELEMENTS_PER_ENTRY * TRACE_ELEMENT_BITS
        + CHECKPOINT_ELEMENT_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_element_target_roundtrip() {
        let e = PatternElement {
            target_offset: -3,
            repetitions: 7,
        };
        assert_eq!(e.target(10), 7);
        assert!(e.offset_fits_hardware());
        let far = PatternElement {
            target_offset: 5000,
            repetitions: 1,
        };
        assert!(!far.offset_fits_hardware());
    }

    #[test]
    fn trace_element_execution_count() {
        let t = TraceElement {
            pattern_index: 0,
            pattern_size: 2,
            pattern_counter: 5,
            trace_counter: 3,
            end_of_trace: false,
        };
        assert_eq!(t.executions(), 15);
    }

    #[test]
    fn entry_storage_matches_paper_budget() {
        // 16 entries of (16 patterns + 16 trace elements + checkpoint) should
        // be in the vicinity of the paper's 1.74 KiB BTU.
        let total_bits = 16 * entry_storage_bits();
        let kib = total_bits as f64 / 8.0 / 1024.0;
        assert!(kib > 1.0 && kib < 2.5, "BTU storage is {kib:.2} KiB");
    }
}
