//! # cassandra-btu
//!
//! The Branch Trace Unit (BTU) of the Cassandra microarchitecture (§5 of the
//! paper): the element encodings of Figure 4, the conversion from compressed
//! k-mers traces to Pattern Table / Trace Cache contents, and the runtime
//! unit with its fetch, commit, squash, eviction and flush flows.
//!
//! The BTU answers one question for the frontend: *given that a crypto branch
//! at PC `p` is being fetched, what is the next PC according to the recorded
//! sequential trace?* It never consults the branch predictor, and it tracks
//! two positions per branch — the speculative fetch position and the
//! committed position (checkpointed in the Checkpoint Table) — so that
//! squashes caused by non-crypto mispredictions or interrupts can be rolled
//! back precisely.
//!
//! ```
//! use cassandra_btu::encode::EncodedTraces;
//! use cassandra_btu::unit::{BranchTraceUnit, BtuConfig};
//! use cassandra_isa::builder::ProgramBuilder;
//! use cassandra_isa::reg::{A0, ZERO};
//! use cassandra_trace::genproc::generate_traces;
//!
//! # fn main() -> Result<(), cassandra_isa::error::IsaError> {
//! let mut b = ProgramBuilder::new("loop");
//! b.begin_crypto();
//! b.li(A0, 3);
//! b.label("l");
//! b.addi(A0, A0, -1);
//! b.bne(A0, ZERO, "l");
//! b.end_crypto();
//! b.halt();
//! let program = b.build()?;
//! let bundle = generate_traces(&program, None, 10_000)?;
//! let encoded = EncodedTraces::from_bundle(&program, &bundle);
//! let mut btu = BranchTraceUnit::new(BtuConfig::default(), encoded);
//!
//! // The loop branch at pc 2 is taken twice (target 1) and then falls through.
//! assert_eq!(btu.fetch_lookup(2).next_pc, Some(1));
//! btu.commit_branch(2);
//! assert_eq!(btu.fetch_lookup(2).next_pc, Some(1));
//! btu.commit_branch(2);
//! assert_eq!(btu.fetch_lookup(2).next_pc, Some(3));
//! # Ok(())
//! # }
//! ```

pub mod cursor;
pub mod element;
pub mod encode;
pub mod unit;

pub use element::{CheckpointElement, PatternElement, TraceElement};
pub use encode::{EncodedBranchTrace, EncodedTraces};
pub use unit::{BranchTraceUnit, BtuConfig, BtuLookup, BtuStats};
