//! Conversion from compressed k-mers traces to the BTU's hardware
//! representation (pattern set + trace elements, §5.2).

use crate::element::{PatternElement, TraceElement, MAX_PATTERN_REPS, MAX_TRACE_COUNTER};
use cassandra_isa::program::Program;
use cassandra_trace::genproc::TraceBundle;
use cassandra_trace::hints::{BranchHint, BranchHints};
use cassandra_trace::kmers::KmersTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The encoded trace of one multi-target branch, as stored in the trace data
/// pages and loaded into the BTU on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedBranchTrace {
    /// The branch PC.
    pub pc: usize,
    /// The pattern set (Pattern Table contents for this branch).
    pub patterns: Vec<PatternElement>,
    /// The trace elements (Trace Cache contents, possibly longer than one
    /// entry — the hardware streams them in 16-element windows).
    pub trace: Vec<TraceElement>,
    /// True if the whole trace fits one Trace Cache entry (short-trace mark).
    pub short_trace: bool,
}

impl EncodedBranchTrace {
    /// Builds the encoded form of a branch's compressed trace.
    pub fn from_kmers(pc: usize, kmers: &KmersTrace, short_trace: bool) -> Self {
        let mut patterns: Vec<PatternElement> = Vec::new();
        // Symbol → (first element index, element count, total executions).
        let mut placement: BTreeMap<u32, (usize, usize, u64)> = BTreeMap::new();
        for (&symbol, elements) in &kmers.patterns.patterns {
            let start = patterns.len();
            let mut executions = 0u64;
            for e in elements {
                executions += e.count;
                let mut remaining = e.count;
                // Split repetitions that exceed the 8-bit field, as in §5.2.
                while remaining > MAX_PATTERN_REPS {
                    patterns.push(PatternElement {
                        target_offset: e.target as i32 - pc as i32,
                        repetitions: MAX_PATTERN_REPS as u8,
                    });
                    remaining -= MAX_PATTERN_REPS;
                }
                patterns.push(PatternElement {
                    target_offset: e.target as i32 - pc as i32,
                    repetitions: remaining as u8,
                });
            }
            placement.insert(symbol, (start, patterns.len() - start, executions));
        }

        let mut trace: Vec<TraceElement> = Vec::new();
        for run in &kmers.runs {
            let (start, size, executions) = placement[&run.symbol];
            let mut remaining = run.repeat;
            while remaining > 0 {
                let chunk = remaining.min(MAX_TRACE_COUNTER);
                trace.push(TraceElement {
                    pattern_index: start.min(u8::MAX as usize) as u8,
                    pattern_size: size.min(u8::MAX as usize) as u8,
                    pattern_counter: executions.min(u64::from(u16::MAX)) as u16,
                    trace_counter: chunk as u8,
                    end_of_trace: false,
                });
                remaining -= chunk;
            }
        }
        if let Some(last) = trace.last_mut() {
            last.end_of_trace = true;
        }
        EncodedBranchTrace {
            pc,
            patterns,
            trace,
            short_trace,
        }
    }

    /// Total number of stored elements (pattern + trace), the quantity the
    /// paper's Table 1 reports per branch.
    pub fn stored_elements(&self) -> usize {
        self.patterns.len() + self.trace.len()
    }

    /// Expands the encoded trace back into the sequence of target PCs for one
    /// full pass over the trace (until the End-of-Trace marker).
    pub fn expand_targets(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for te in &self.trace {
            let slice = &self.patterns
                [te.pattern_index as usize..(te.pattern_index + te.pattern_size) as usize];
            for _ in 0..te.trace_counter {
                for pe in slice {
                    for _ in 0..pe.repetitions {
                        out.push(pe.target(self.pc));
                    }
                }
            }
        }
        out
    }
}

/// The encoded traces and hints of a whole program ("trace data pages" plus
/// the hint information embedded in the binary).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedTraces {
    /// Encoded traces of multi-target branches, keyed by branch PC.
    pub traces: BTreeMap<usize, EncodedBranchTrace>,
    /// Per-branch hints for all analyzed crypto branches.
    pub hints: BranchHints,
}

impl EncodedTraces {
    /// Encodes every analyzed branch of a [`TraceBundle`].
    pub fn from_bundle(_program: &Program, bundle: &TraceBundle) -> Self {
        let mut traces = BTreeMap::new();
        for (pc, data) in &bundle.branches {
            let short = matches!(
                bundle.hints.hint(*pc),
                Some(BranchHint::MultiTarget { short_trace: true })
            );
            traces.insert(*pc, EncodedBranchTrace::from_kmers(*pc, &data.kmers, short));
        }
        EncodedTraces {
            traces,
            hints: bundle.hints.clone(),
        }
    }

    /// The hint for a branch, if it was analyzed.
    pub fn hint(&self, pc: usize) -> Option<BranchHint> {
        self.hints.hint(pc)
    }

    /// The encoded trace of a branch, if one exists.
    pub fn trace(&self, pc: usize) -> Option<&EncodedBranchTrace> {
        self.traces.get(&pc)
    }

    /// Total storage of the trace data pages in bits (used by the hint/trace
    /// storage statistics).
    pub fn storage_bits(&self) -> usize {
        use crate::element::{PATTERN_ELEMENT_BITS, TRACE_ELEMENT_BITS};
        self.traces
            .values()
            .map(|t| t.patterns.len() * PATTERN_ELEMENT_BITS + t.trace.len() * TRACE_ELEMENT_BITS)
            .sum::<usize>()
            + self.hints.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_trace::kmers::{compress, KmersConfig};
    use cassandra_trace::vanilla::VanillaTrace;

    fn encode_targets(pc: usize, targets: &[usize]) -> EncodedBranchTrace {
        let vanilla = VanillaTrace::from_targets(targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        EncodedBranchTrace::from_kmers(pc, &kmers, true)
    }

    #[test]
    fn loop_trace_roundtrips() {
        // Taken 4 times to pc 1, then falls through to pc 5 (branch at pc 4).
        let targets = vec![1, 1, 1, 1, 5];
        let enc = encode_targets(4, &targets);
        assert_eq!(enc.expand_targets(), targets);
        assert!(enc.trace.last().unwrap().end_of_trace);
    }

    #[test]
    fn nested_loop_trace_roundtrips() {
        // Inner loop of 3 iterations re-entered 4 times: (T T F) × 4.
        let mut targets = Vec::new();
        for _ in 0..4 {
            targets.extend_from_slice(&[10, 10, 20]);
        }
        let enc = encode_targets(19, &targets);
        assert_eq!(enc.expand_targets(), targets);
        assert!(enc.stored_elements() <= 6, "got {}", enc.stored_elements());
    }

    #[test]
    fn large_repetition_counts_are_split() {
        // 600 consecutive taken outcomes exceed the 8-bit repetition field.
        let mut targets = vec![2usize; 600];
        targets.push(9);
        let enc = encode_targets(8, &targets);
        assert!(enc
            .patterns
            .iter()
            .all(|p| u64::from(p.repetitions) <= MAX_PATTERN_REPS));
        assert_eq!(enc.expand_targets(), targets);
    }

    #[test]
    fn negative_offsets_encode_backward_branches() {
        let targets = vec![1, 1, 9];
        let enc = encode_targets(8, &targets);
        assert!(enc.patterns.iter().any(|p| p.target_offset < 0));
        assert_eq!(enc.expand_targets(), targets);
    }

    #[test]
    fn storage_accounting_is_positive() {
        let targets = vec![1, 1, 1, 5];
        let enc = encode_targets(4, &targets);
        assert!(enc.stored_elements() >= 2);
    }
}
