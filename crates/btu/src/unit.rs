//! The runtime Branch Trace Unit: fetch, commit, squash, eviction and flush
//! flows (§5.3 of the paper).

use crate::cursor::TraceCursor;
use crate::element::{entry_storage_bits, ELEMENTS_PER_ENTRY};
use crate::encode::EncodedTraces;
use cassandra_trace::hints::BranchHint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the BTU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtuConfig {
    /// Number of entries in the Pattern Table / Trace Cache / Checkpoint
    /// Table (16 in the paper's Table 3).
    pub entries: usize,
    /// Extra frontend latency (cycles) when a multi-target branch misses in
    /// the Trace Cache and its trace must be fetched from the data pages.
    pub miss_penalty: u64,
}

impl Default for BtuConfig {
    fn default() -> Self {
        BtuConfig {
            entries: 16,
            miss_penalty: 20,
        }
    }
}

/// Statistics kept by the BTU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtuStats {
    /// Total fetch-time lookups.
    pub lookups: u64,
    /// Lookups that hit a resident Trace Cache entry.
    pub hits: u64,
    /// Lookups that missed and had to stream the trace in.
    pub misses: u64,
    /// Entries evicted to make room (checkpoints written back).
    pub evictions: u64,
    /// Lookups answered from the single-target hint (no BTU entry used).
    pub single_target_lookups: u64,
    /// Lookups for branches without replayable traces (fetch must stall).
    pub stall_lookups: u64,
    /// Whole-unit flushes (context switches between crypto applications, Q4).
    pub flushes: u64,
    /// Committed crypto branches.
    pub commits: u64,
    /// Squash recoveries.
    pub squashes: u64,
}

/// The answer of a fetch-time BTU lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtuLookup {
    /// The next PC dictated by the sequential trace, if available.
    pub next_pc: Option<usize>,
    /// True if the branch hit a resident entry (or needed none).
    pub hit: bool,
    /// True if the frontend must stall until the branch resolves (no trace).
    pub needs_stall: bool,
    /// Extra frontend latency in cycles (trace miss streaming).
    pub extra_latency: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct BranchState {
    /// Speculative fetch-side cursor.
    fetch: TraceCursor,
    /// Committed cursor (the Checkpoint Table contents).
    committed: TraceCursor,
}

/// The Branch Trace Unit.
#[derive(Debug, Clone)]
pub struct BranchTraceUnit {
    config: BtuConfig,
    encoded: EncodedTraces,
    /// Per-branch replay state; conceptually the Checkpoint Table backed by
    /// the trace data pages, so it survives evictions and flushes.
    state: BTreeMap<usize, BranchState>,
    /// Branch PCs currently resident in the Trace Cache, most recently used
    /// last.
    resident: Vec<usize>,
    stats: BtuStats,
}

impl BranchTraceUnit {
    /// Creates a BTU for a program's encoded traces.
    pub fn new(config: BtuConfig, encoded: EncodedTraces) -> Self {
        BranchTraceUnit {
            config,
            encoded,
            state: BTreeMap::new(),
            resident: Vec::new(),
            stats: BtuStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> BtuConfig {
        self.config
    }

    /// Re-sizes the Trace Cache, evicting least-recently-used residents if
    /// the new geometry is smaller. `0` models a unit with no Trace Cache at
    /// all: every multi-target lookup streams its trace from the data pages
    /// and pays the miss penalty (the `Cassandra-noTC` scenario).
    pub fn set_trace_cache_entries(&mut self, entries: usize) {
        self.config.entries = entries;
        while self.resident.len() > entries {
            self.resident.remove(0);
            self.stats.evictions += 1;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtuStats {
        self.stats
    }

    /// Total BTU storage in bits (for the area model).
    pub fn storage_bits(&self) -> usize {
        self.config.entries * entry_storage_bits()
    }

    /// Whether the given PC is an analyzed crypto branch the BTU knows about.
    pub fn knows_branch(&self, pc: usize) -> bool {
        self.encoded.hint(pc).is_some()
    }

    /// Fetch flow (§5.3): determines the next PC for a crypto branch being
    /// fetched and advances the speculative trace position.
    pub fn fetch_lookup(&mut self, pc: usize) -> BtuLookup {
        self.stats.lookups += 1;
        match self.encoded.hint(pc) {
            // Single-target branches carry their target in the hint bytes and
            // consume no BTU resources.
            Some(BranchHint::SingleTarget { target }) => {
                self.stats.single_target_lookups += 1;
                BtuLookup {
                    next_pc: Some(target),
                    hit: true,
                    needs_stall: false,
                    extra_latency: 0,
                }
            }
            // No usable trace: the frontend stalls until the branch resolves
            // (footnote 4 / §4.3).
            Some(BranchHint::InputDependent) | Some(BranchHint::NotExecuted) | None => {
                self.stats.stall_lookups += 1;
                BtuLookup {
                    next_pc: None,
                    hit: false,
                    needs_stall: true,
                    extra_latency: 0,
                }
            }
            Some(BranchHint::MultiTarget { .. }) => {
                let (hit, extra_latency) = self.touch_entry(pc);
                let Some(trace) = self.encoded.traces.get(&pc) else {
                    // Hinted as multi-target but the trace is unavailable:
                    // behave like a stall (defensive; not expected).
                    self.stats.stall_lookups += 1;
                    return BtuLookup {
                        next_pc: None,
                        hit: false,
                        needs_stall: true,
                        extra_latency,
                    };
                };
                let state = self.state.entry(pc).or_insert_with(|| BranchState {
                    fetch: TraceCursor::new(),
                    committed: TraceCursor::new(),
                });
                let next_pc = state.fetch.next_target(trace);
                BtuLookup {
                    next_pc,
                    hit,
                    needs_stall: next_pc.is_none(),
                    extra_latency,
                }
            }
        }
    }

    /// Commit flow (§5.3): a crypto branch retired, so the committed position
    /// (Checkpoint Table) advances by one execution.
    pub fn commit_branch(&mut self, pc: usize) {
        if !matches!(self.encoded.hint(pc), Some(BranchHint::MultiTarget { .. })) {
            return;
        }
        self.stats.commits += 1;
        if let (Some(trace), Some(state)) = (self.encoded.traces.get(&pc), self.state.get_mut(&pc))
        {
            let _ = state.committed.next_target(trace);
        }
    }

    /// Squash recovery (§5.3): undo all speculative fetch-side progress, for
    /// every branch, back to the committed checkpoints.
    pub fn squash(&mut self) {
        self.stats.squashes += 1;
        for state in self.state.values_mut() {
            let committed = state.committed.position();
            state.fetch.restore(committed);
        }
    }

    /// Flushes the Trace Cache residency (context switch between two crypto
    /// applications, discussion Q4). Replay positions survive in the
    /// checkpoint data pages, but the next lookups pay the miss latency again.
    pub fn flush(&mut self) {
        self.stats.flushes += 1;
        self.resident.clear();
    }

    /// Marks `pc` resident, evicting the least recently used entry if needed.
    /// Returns `(hit, extra_latency)`.
    fn touch_entry(&mut self, pc: usize) -> (bool, u64) {
        if self.config.entries == 0 {
            // No Trace Cache: nothing is ever resident, every lookup streams.
            self.stats.misses += 1;
            return (false, self.config.miss_penalty);
        }
        if let Some(idx) = self.resident.iter().position(|&p| p == pc) {
            self.resident.remove(idx);
            self.resident.push(pc);
            self.stats.hits += 1;
            return (true, 0);
        }
        self.stats.misses += 1;
        if self.resident.len() >= self.config.entries {
            self.resident.remove(0);
            self.stats.evictions += 1;
        }
        self.resident.push(pc);
        (false, self.config.miss_penalty)
    }

    /// Number of elements per Trace Cache entry (exposed for the CPU model's
    /// prefetch bookkeeping).
    pub fn elements_per_entry(&self) -> usize {
        ELEMENTS_PER_ENTRY
    }

    /// Read-only access to the encoded traces (used by reports).
    pub fn encoded(&self) -> &EncodedTraces {
        &self.encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::program::Program;
    use cassandra_isa::reg::{A0, A1, ZERO};
    use cassandra_trace::genproc::generate_traces;

    fn nested_program() -> Program {
        let mut b = ProgramBuilder::new("nested");
        b.begin_crypto();
        b.li(A0, 3);
        b.label("outer");
        b.li(A1, 2);
        b.label("inner");
        b.addi(A1, A1, -1);
        b.bne(A1, ZERO, "inner");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "outer");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    fn btu_for(program: &Program) -> BranchTraceUnit {
        let bundle = generate_traces(program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(program, &bundle);
        BranchTraceUnit::new(BtuConfig::default(), encoded)
    }

    /// Replays a program's crypto branches through the BTU and checks every
    /// redirection against the functional execution.
    #[test]
    fn btu_replays_exactly_the_sequential_trace() {
        let program = nested_program();
        let raw = cassandra_trace::collect::collect_raw_traces(&program, 100_000).unwrap();
        let mut btu = btu_for(&program);
        // Interleave lookups in program order: walk the recorded outcomes.
        let mut per_branch_expected: Vec<(usize, usize)> = Vec::new();
        for (pc, trace) in &raw {
            for &t in &trace.targets {
                per_branch_expected.push((*pc, t));
            }
        }
        // For each branch, lookups must yield targets in recorded order.
        let mut positions: std::collections::BTreeMap<usize, usize> = Default::default();
        for (pc, expected) in per_branch_expected {
            let lookup = btu.fetch_lookup(pc);
            btu.commit_branch(pc);
            let i = positions.entry(pc).or_insert(0);
            *i += 1;
            assert_eq!(lookup.next_pc, Some(expected), "branch {pc}, execution {i}");
            assert!(!lookup.needs_stall);
        }
    }

    #[test]
    fn squash_rolls_back_uncommitted_lookups() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        let inner_pc = 3;
        // Fetch two outcomes speculatively without committing.
        let first = btu.fetch_lookup(inner_pc).next_pc;
        let _second = btu.fetch_lookup(inner_pc).next_pc;
        btu.squash();
        // After the squash the replay restarts from the committed position.
        assert_eq!(btu.fetch_lookup(inner_pc).next_pc, first);
        assert!(btu.stats().squashes >= 1);
    }

    #[test]
    fn flush_only_costs_a_refill() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        let inner_pc = 3;
        let a = btu.fetch_lookup(inner_pc);
        btu.commit_branch(inner_pc);
        assert_eq!(a.extra_latency, btu.config().miss_penalty, "cold miss");
        btu.flush();
        let b = btu.fetch_lookup(inner_pc);
        // The replay position survives the flush; only the miss latency is
        // paid again.
        assert_eq!(b.extra_latency, btu.config().miss_penalty);
        assert!(b.next_pc.is_some());
        assert_eq!(btu.stats().flushes, 1);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        // A tiny 1-entry BTU with two multi-target branches must evict.
        let program = nested_program();
        let bundle = generate_traces(&program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(&program, &bundle);
        let mut btu = BranchTraceUnit::new(
            BtuConfig {
                entries: 1,
                miss_penalty: 5,
            },
            encoded,
        );
        let inner_pc = 3;
        let outer_pc = 5;
        btu.fetch_lookup(inner_pc);
        btu.fetch_lookup(outer_pc);
        btu.fetch_lookup(inner_pc);
        assert!(btu.stats().evictions >= 1);
        assert_eq!(btu.stats().hits, 0);
    }

    #[test]
    fn one_entry_btu_restores_checkpoints_under_squash_despite_eviction() {
        // A 1-entry Trace Cache thrashed by two multi-target branches must
        // still replay correctly after a squash: the Checkpoint Table state
        // lives in the data pages and survives evictions.
        let program = nested_program();
        let bundle = generate_traces(&program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(&program, &bundle);
        let mut btu = BranchTraceUnit::new(
            BtuConfig {
                entries: 1,
                miss_penalty: 7,
            },
            encoded,
        );
        let inner_pc = 3;
        let outer_pc = 5;

        // Commit the first inner execution, then run ahead speculatively.
        let first = btu.fetch_lookup(inner_pc).next_pc.unwrap();
        btu.commit_branch(inner_pc);
        let second = btu.fetch_lookup(inner_pc).next_pc.unwrap();
        // Touching the outer branch evicts the inner entry (capacity 1).
        let outer = btu.fetch_lookup(outer_pc);
        assert!(btu.stats().evictions >= 1, "the 1-entry cache must evict");
        assert_eq!(outer.extra_latency, 7, "outer is a cold miss");

        // Squash: both fetch cursors roll back to their committed positions.
        btu.squash();
        let replayed = btu.fetch_lookup(inner_pc);
        assert_eq!(
            replayed.next_pc,
            Some(second),
            "inner replay resumes at the committed checkpoint, not at {first}"
        );
        assert_eq!(
            replayed.extra_latency, 7,
            "the evicted entry pays the miss penalty again"
        );
        // The outer branch restarts from its (never-committed) beginning.
        assert_eq!(btu.fetch_lookup(outer_pc).next_pc, outer.next_pc);
    }

    #[test]
    fn zero_entry_trace_cache_always_misses() {
        // entries == 0 models Cassandra-noTC: nothing is ever resident, every
        // multi-target lookup streams its trace and pays the miss penalty.
        let program = nested_program();
        let bundle = generate_traces(&program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(&program, &bundle);
        let mut btu = BranchTraceUnit::new(
            BtuConfig {
                entries: 0,
                miss_penalty: 9,
            },
            encoded,
        );
        let inner_pc = 3;
        for _ in 0..4 {
            let lookup = btu.fetch_lookup(inner_pc);
            assert!(lookup.next_pc.is_some(), "replay still works without a TC");
            assert_eq!(lookup.extra_latency, 9);
            btu.commit_branch(inner_pc);
        }
        assert_eq!(btu.stats().hits, 0);
        assert_eq!(btu.stats().misses, 4);
    }

    #[test]
    fn shrinking_the_trace_cache_evicts_down_to_the_new_geometry() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        btu.fetch_lookup(3);
        btu.fetch_lookup(5);
        let evictions_before = btu.stats().evictions;
        btu.set_trace_cache_entries(0);
        assert_eq!(btu.config().entries, 0);
        assert_eq!(btu.stats().evictions, evictions_before + 2);
        // Subsequent lookups keep replaying, as cold misses.
        let lookup = btu.fetch_lookup(3);
        assert!(lookup.next_pc.is_some());
        assert_eq!(lookup.extra_latency, btu.config().miss_penalty);
    }

    #[test]
    fn unknown_branches_stall() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        let lookup = btu.fetch_lookup(999);
        assert!(lookup.needs_stall);
        assert_eq!(lookup.next_pc, None);
    }

    #[test]
    fn storage_is_about_the_papers_budget() {
        let program = nested_program();
        let btu = btu_for(&program);
        let kib = btu.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kib > 1.0 && kib < 2.5, "{kib:.2} KiB");
    }
}
